"""Population builders: the simulated web the measurements run against.

:func:`build_web_population` assembles the Section 3 / Section 6 world:

1. monthly Tranco-style rankings with churn (Oct 2022-Oct 2024),
2. the stable set (sites ranked every month) split into a Top-5K tier
   and the rest, each with an operator-model robots.txt schedule,
3. publisher data-deal removals and explicit-allow sites (Sections
   3.3-3.4), scaled to the population size,
4. audit attributes (Cloudflare settings, custom UA blocking,
   automation blocking, NoAI meta tags) for the most-recent month's top
   sites -- the Section 6 and meta-tag study population.

Every attribute is sampled deterministically from (seed, domain), so
the same config always yields the same web.
"""

from __future__ import annotations

import multiprocessing
import random

from ..util import seeded_rng
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..net.transport import Network
from ..obs.metrics import shared_registry, snapshot_delta
from ..obs.series import shared_series
from ..obs.series import snapshot_delta as series_delta
from ..proxy.cloudflare import CloudflareSettings
from .events import DATA_DEALS, GPTBOT_ANNOUNCEMENT, MONTHS
from .evolution import EvolutionParams, OperatorModel
from .sharding import (
    partition_domains,
    record_shard_balance,
    resolve_shard_mode,
    shard_count_for,
)
from .site import BlockingConfig, SimSite
from .tranco import RankingModel, stable_sites, stratum_cutoff

__all__ = [
    "PopulationConfig",
    "WebPopulation",
    "build_web_population",
    "stratum_config",
]

_CATEGORIES = [
    ("news", 0.25),
    ("shopping", 0.15),
    ("reference", 0.10),
    ("corporate", 0.20),
    ("blog", 0.28),
    ("misinfo", 0.02),
]


@dataclass
class PopulationConfig:
    """Size and sampling parameters of the simulated web.

    The defaults are a 1:25 scale model of the paper's setting (list of
    4,000 standing in for the Tranco 100k; audit prefix of 1,000 for
    the top 10k).  All reported statistics are rates, so the scale only
    affects absolute counts, which experiment outputs scale back up.
    """

    universe_size: int = 6000
    list_size: int = 4000
    top5k_cut: int = 400
    audit_size: int = 1000
    seed: int = 42
    evolution: EvolutionParams = field(default_factory=EvolutionParams)

    #: Audit-population rates (per the paper's top-10k measurements).
    p_blocks_automation: float = 0.15
    p_waf_blocks_anthropic: float = 0.145
    p_cloudflare: float = 0.20
    p_cf_block_ai: float = 0.057
    p_cf_confound: float = 0.07
    p_cf_definitely_automated: float = 0.10
    rate_meta_noai: float = 17 / 10_000
    rate_meta_noimageai: float = 16 / 10_000
    #: Among non-Cloudflare audit sites: firewall the published IP
    #: ranges of AI crawlers (invisible to the UA-based detector).
    p_ip_blocks_published_ai: float = 0.04
    #: Automation blocking among non-audit stable sites (what excludes
    #: some sites from Common Crawl coverage, Section 3.1 footnote 2).
    p_tail_blocks_automation: float = 0.01

    @property
    def paper_scale(self) -> float:
        """This population's size relative to the paper's 100k list."""
        return self.list_size / 100_000


@dataclass
class WebPopulation:
    """The assembled simulated web."""

    config: PopulationConfig
    rankings: Dict[int, List[str]]
    stable: List[SimSite]
    stable_top5k: List[SimSite]
    audit_sites: List[SimSite]
    by_domain: Dict[str, SimSite]
    deal_domains: Dict[str, List[str]] = field(default_factory=dict)
    explicit_allow_domains: List[str] = field(default_factory=list)

    def stable_other(self) -> List[SimSite]:
        """Stable sites outside the Top-5K tier."""
        return [s for s in self.stable if s.tier != "top5k"]

    def materialize(
        self, network: Network, month: int, sites: Optional[List[SimSite]] = None
    ) -> None:
        """Register handlers for *sites* (default: all stable) at *month*.

        Handlers come from each site's per-robots-state cache (see
        :meth:`SimSite.build_handler`), so repeated materializations --
        across snapshots, runners, and world-store views -- reconstruct
        ``Website``/proxy objects only for states never served before.
        """
        network.month = month
        network.register_many(
            (site.build_handler(month), site.domain)
            for site in (sites if sites is not None else self.stable)
        )


def _pick_category(rng: random.Random) -> str:
    roll = rng.random()
    acc = 0.0
    for name, weight in _CATEGORIES:
        acc += weight
        if roll < acc:
            return name
    return _CATEGORIES[-1][0]


def _sample(rng: random.Random, pool: List[SimSite], count: int) -> List[SimSite]:
    count = min(count, len(pool))
    return rng.sample(pool, count) if count else []


def stratum_config(
    stratum: str, base: Optional[PopulationConfig] = None
) -> PopulationConfig:
    """A :class:`PopulationConfig` scaled to one top-k *stratum*.

    *base* (default: the paper-scale default config) fixes the
    simulation scale and every rate parameter; the stratum only resizes
    the population.  The base config models the paper's top-100k, so
    ``stratum_config("top-100k")`` is the base itself, ``"top-1k"`` is
    a 100x smaller world, and ``"top-1m"`` a 10x larger one -- same
    seed, same rates, same evolution parameters.
    """
    base = base or PopulationConfig()
    list_size = stratum_cutoff(stratum, base.paper_scale)
    factor = list_size / base.list_size
    return replace(
        base,
        universe_size=max(list_size + 1, round(base.universe_size * factor)),
        list_size=list_size,
        top5k_cut=max(1, min(list_size, round(base.top5k_cut * factor))),
        audit_size=max(1, round(base.audit_size * factor)),
    )


#: One unit of shardable site construction: ``(domain, rank, tier)``.
_SiteTask = Tuple[str, int, str]

#: Established by :func:`build_web_population` before a process pool
#: spawns, so fork workers inherit the config and shard partition
#: instead of re-pickling them per call.
_BUILD_CONTEXT: Optional[Tuple[PopulationConfig, List[List[_SiteTask]], bool]] = None


def _build_site(config: PopulationConfig, operator: OperatorModel,
                task: _SiteTask) -> SimSite:
    """Construct and populate one site (pure in ``(seed, domain)``)."""
    domain, rank, tier = task
    rng = seeded_rng(config.seed, "site", domain)
    site = SimSite(
        domain=domain, rank=rank, tier=tier, category=_pick_category(rng)
    )
    operator.populate(site)
    return site


def _build_shard(index: int):
    """Build one shard's sites against the ambient context (worker entry).

    In process mode the worker additionally ships its telemetry
    (metrics and series snapshot deltas) back to the parent: the
    operator model's ``web.robots_changes`` series land in the forked
    child's registry copy, and totals must match serial execution.
    """
    context = _BUILD_CONTEXT
    assert context is not None, "build_web_population must set the context"
    config, parts, ship = context
    registry = shared_registry()
    series = shared_series()
    before = registry.snapshot() if ship else None
    series_before = series.snapshot() if ship else None
    operator = OperatorModel(params=config.evolution, seed=config.seed)
    sites = [_build_site(config, operator, task) for task in parts[index]]
    if not ship:
        return sites, None, None
    delta = snapshot_delta(registry.snapshot(), before)
    sdelta = series_delta(series.snapshot(), series_before)
    return sites, delta, sdelta


def _build_sites(
    config: PopulationConfig,
    tasks: List[_SiteTask],
    shards: Optional[int],
    workers: Optional[int],
    mode: str,
) -> Dict[str, SimSite]:
    """Run the shardable per-site stage, optionally across workers.

    Every sampler involved is keyed ``(seed, domain)``, so the shard
    map and the execution mode only decide *where* each site is built:
    the returned sites are byte-identical for any shard count x worker
    count x serial/thread/process combination.
    """
    global _BUILD_CONTEXT
    n_workers = max(1, workers or 1)
    explicit = shards is not None and shards > 0
    n_shards = shard_count_for(len(tasks), shards) if (explicit or n_workers > 1) else 1
    parts = partition_domains(tasks, n_shards, key=(t[0] for t in tasks))
    if n_shards > 1:
        record_shard_balance(parts, stage="build")
    resolved = resolve_shard_mode(mode, min(n_workers, n_shards))
    _BUILD_CONTEXT = (config, parts, resolved == "process")
    try:
        indices = range(n_shards)
        if resolved == "serial":
            outputs = [_build_shard(i) for i in indices]
        elif resolved == "process":
            context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(
                max_workers=n_workers, mp_context=context
            ) as pool:
                outputs = list(pool.map(_build_shard, indices))
        else:
            with ThreadPoolExecutor(max_workers=n_workers) as pool:
                outputs = list(pool.map(_build_shard, indices))
    finally:
        _BUILD_CONTEXT = None
    registry = shared_registry()
    built: Dict[str, SimSite] = {}
    for sites, delta, sdelta in outputs:
        if delta is not None:
            registry.merge(delta)
        if sdelta is not None:
            shared_series().merge(sdelta)
        for site in sites:
            built[site.domain] = site
    return built


def build_web_population(
    config: Optional[PopulationConfig] = None,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    mode: str = "auto",
) -> WebPopulation:
    """Build the simulated web per *config* (see module docstring).

    Args:
        shards: Partition the per-site construction stage into this
            many deterministic sha256 shards (``None`` = unsharded
            unless *workers* asks for parallelism, in which case a
            size-based default applies).  The shard map never affects
            the built world -- only which worker builds which site.
        workers: Worker pool size for the per-site stage (``None``/
            ``1`` = sequential).  The order-dependent global passes
            (data deals, explicit allows, audit quotas) always run in
            the parent, in canonical rank order.
        mode: "auto" (processes when forking onto multiple cores is
            possible, else threads), "thread", or "process".
    """
    config = config or PopulationConfig()
    model = RankingModel(
        universe_size=config.universe_size,
        list_size=config.list_size,
        seed=config.seed,
    )
    rankings = model.monthly_rankings(MONTHS)
    stable_domains = stable_sites(rankings, config.list_size)
    top5k_domains = set(stable_sites(rankings, config.top5k_cut))

    # -- shardable per-site stage: stable sites plus the audit-tier
    # extras (sites in the final month's top list but not the stable
    # set).  Both are pure per-(seed, domain) constructions; everything
    # order-dependent stays below, in the parent.
    last_month = max(rankings)
    audit_domains = rankings[last_month][: config.audit_size]
    stable_set = set(stable_domains)
    tasks: List[_SiteTask] = [
        (domain, rank, "top5k" if domain in top5k_domains else "other")
        for rank, domain in enumerate(stable_domains)
    ]
    tasks.extend(
        (domain, config.list_size + position, "other")
        for position, domain in enumerate(audit_domains)
        if domain not in stable_set
    )
    built = _build_sites(config, tasks, shards, workers, mode)

    operator = OperatorModel(params=config.evolution, seed=config.seed)
    sites: List[SimSite] = [built[domain] for domain in stable_domains]
    by_domain: Dict[str, SimSite] = {domain: built[domain] for domain in stable_domains}

    rng = seeded_rng(config.seed, "deals")

    # -- publisher data deals (Section 3.3) --------------------------------------
    always_robots = [s for s in sites if not s.missing_months and s.robots_at(0) is not None]
    # Deal/allower counts scale against the sites the analysis will keep
    # (robots.txt present in every snapshot), mirroring the paper's
    # 40,455-site denominator.
    scale = max(len(always_robots) / 40_455, 1e-9)
    news_pool = [s for s in always_robots if s.category == "news" and s.publisher is None]
    deal_domains: Dict[str, List[str]] = {}
    for deal in DATA_DEALS:
        count = max(1, round(deal.n_domains * scale))
        chosen = _sample(rng, [s for s in news_pool if s.publisher is None], count)
        for site in chosen:
            site.publisher = deal.publisher
            operator.apply_deal_removal(site, deal.month, deal.agents_unblocked)
            if deal.adds_explicit_allow:
                operator.apply_explicit_allow(site, deal.month, ("GPTBot",))
        deal_domains[deal.publisher] = [s.domain for s in chosen]

    # -- independent removers (smaller publishers, private deals) ----------------
    n_independent = max(1, round(207 * scale))
    independent_pool = [
        s for s in always_robots if s.publisher is None and s.category in ("news", "blog")
    ]
    for site in _sample(rng, independent_pool, n_independent):
        site.publisher = "(independent)"
        month = rng.randint(17, 24)
        operator.apply_deal_removal(site, month, ("GPTBot",))

    # -- explicit allowers (Section 3.4) -----------------------------------------
    explicit_allow_domains: List[str] = []
    n_persistent = max(1, round(5 * scale))
    n_late = max(1, round(30 * scale))
    allow_pool = [
        s
        for s in always_robots
        if s.publisher is None and s.category in ("misinfo", "shopping", "reference")
    ]
    persistent = _sample(rng, allow_pool, n_persistent)
    for site in persistent:
        operator.apply_explicit_allow(site, GPTBOT_ANNOUNCEMENT + rng.randint(2, 4))
        explicit_allow_domains.append(site.domain)
    remaining = [s for s in allow_pool if s.domain not in set(explicit_allow_domains)]
    for site in _sample(rng, remaining, n_late):
        operator.apply_explicit_allow(site, rng.randint(19, 24))
        explicit_allow_domains.append(site.domain)
    for publisher, domains in deal_domains.items():
        deal = next(d for d in DATA_DEALS if d.publisher == publisher)
        if deal.adds_explicit_allow:
            explicit_allow_domains.extend(domains)

    # -- audit attributes for the most-recent month's top sites ------------------
    audit_sites: List[SimSite] = []
    for domain in audit_domains:
        site = by_domain.get(domain)
        if site is None:
            # Built in the sharded stage alongside the stable sites.
            site = built[domain]
            by_domain[domain] = site
        _assign_audit_attributes(site, config)
        audit_sites.append(site)
    _assign_block_ai_quota(audit_sites, config)

    # Light automation blocking in the non-audit tail (Common Crawl's
    # excluded sites).
    audit_set = set(audit_domains)
    for site in sites:
        if site.domain in audit_set:
            continue
        rng_site = seeded_rng(config.seed, "tailblock", site.domain)
        if rng_site.random() < config.p_tail_blocks_automation:
            site.blocking.blocks_automation = True

    stable_list = [by_domain[d] for d in stable_domains]
    return WebPopulation(
        config=config,
        rankings=rankings,
        stable=stable_list,
        stable_top5k=[s for s in stable_list if s.tier == "top5k"],
        audit_sites=audit_sites,
        by_domain=by_domain,
        deal_domains=deal_domains,
        explicit_allow_domains=explicit_allow_domains,
    )


def _assign_audit_attributes(site: SimSite, config: PopulationConfig) -> None:
    """Sample Section 6 / meta-tag attributes for one audit-tier site."""
    rng = seeded_rng(config.seed, "audit", site.domain)

    blocking = BlockingConfig()
    on_cloudflare = rng.random() < config.p_cloudflare
    final_robots = site.robots_at(24) or ""

    if not on_cloudflare:
        # Independent automation blocking lives on non-Cloudflare sites
        # (Cloudflare zones rely on the managed features); rescale so
        # the *overall* excluded rate still matches the paper's 15%.
        p_auto = config.p_blocks_automation / max(1.0 - config.p_cloudflare, 1e-9)
        blocking.blocks_automation = rng.random() < p_auto

        # Sites that restrict AI crawlers in robots.txt mostly do NOT
        # also UA-block them (only 35 of 1,433 blockers had robots
        # restrictions): suppress custom WAF blocking for adopters.
        robots_mentions_anthropic = any(
            token in final_robots.lower() for token in ("claudebot", "anthropic-ai")
        )
        p_waf = config.p_waf_blocks_anthropic * (
            0.15 if robots_mentions_anthropic else 1.0
        )
        blocking.waf_blocks_anthropic = rng.random() < p_waf
        blocking.ip_blocks_published_ai = (
            rng.random() < config.p_ip_blocks_published_ai
        )

    if on_cloudflare:
        settings = CloudflareSettings()
        # Block AI Bots enablement is assigned by quota afterwards (see
        # _assign_block_ai_quota) so the enabler count and its robots.txt
        # correlation are stable at small audit scales.
        settings.definitely_automated = rng.random() < config.p_cf_definitely_automated
        blocking.cloudflare = settings
        blocking.cf_custom_confound = rng.random() < config.p_cf_confound

    site.blocking = blocking

    p_both = config.rate_meta_noimageai
    p_noai_only = config.rate_meta_noai - p_both
    roll = rng.random()
    if roll < p_both:
        site.meta_noai = True
        site.meta_noimageai = True
    elif roll < p_both + p_noai_only:
        site.meta_noai = True


def _site_has_ai_robots(site: SimSite) -> bool:
    # robots_at is memoized per (site, month), so the final-month text is
    # resolved once per site no matter how many passes scan it.
    text = (site.robots_at(24) or "").lower()
    return any(
        token in text
        for token in ("gptbot", "ccbot", "anthropic-ai", "claudebot", "bytespider")
    )


def _assign_block_ai_quota(audit_sites: List[SimSite], config: PopulationConfig) -> None:
    """Enable Block AI Bots on a fixed share of Cloudflare zones.

    The paper observes 5.7% of determinable Cloudflare sites with the
    feature on, and that enablers restrict AI crawlers in robots.txt at
    twice the rate of other Cloudflare sites (24% vs 12%).  A quota
    with a 1:3 with/without-robots composition reproduces both even
    when the audit tier is small.
    """
    rng = seeded_rng(config.seed, "block-ai-quota")
    cf_sites = [s for s in audit_sites if s.blocking.on_cloudflare]
    determinable = [s for s in cf_sites if not s.blocking.cf_custom_confound]
    target = max(1, round(config.p_cf_block_ai * len(determinable)))
    # One scan of each site's final-month text feeds both partitions.
    has_ai_robots = {s.domain: _site_has_ai_robots(s) for s in determinable}
    with_robots = [s for s in determinable if has_ai_robots[s.domain]]
    without = [s for s in determinable if not has_ai_robots[s.domain]]
    n_with = min(len(with_robots), max(1, round(0.24 * target)))
    chosen = _sample(rng, with_robots, n_with)
    chosen += _sample(rng, without, target - len(chosen))
    for site in chosen:
        site.blocking.cloudflare.block_ai_bots = True
