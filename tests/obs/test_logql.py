"""Deterministic query/aggregation over a committed log store."""

import pytest

from repro.net.logstore import LogSink, LogStore, log_stream
from repro.obs.logql import (
    LogFilter,
    filter_records,
    group_by,
    query,
    timelines,
    top_k,
)


@pytest.fixture()
def store(tmp_path):
    sink = LogSink()
    with log_stream("unit"):
        rows = [
            # host, path, agent, outcome, category, month, status, robots
            ("a.example", "/robots.txt", "GPTBot", "served", "art", 0, 200, True),
            ("a.example", "/one", "GPTBot", "served", "art", 0, 200, False),
            ("a.example", "/one", "GPTBot", "blocked_403", "art", 1, 403, False),
            ("b.example", "/two", "CCBot", "served", "news", 0, 200, False),
            ("b.example", "/two", "CCBot", "served", "news", 1, 200, False),
            ("b.example", "/three", "GPTBot", "challenged", "news", 1, 503, False),
        ]
        for ticks, (host, path, agent, outcome, category, month,
                    status, robots) in enumerate(rows):
            sink.emit(host, path, f"{agent}/1.0", agent, outcome, category,
                      month, status, ticks, robots)
    sink.commit(tmp_path / "logs", n_shards=2)
    with LogStore.open(tmp_path / "logs") as opened:
        yield opened


def test_filter_matches_every_set_field(store):
    records = list(filter_records(store, LogFilter(agent="GPTBot", month=1)))
    assert [(r.host, r.outcome) for r in records] == [
        ("a.example", "blocked_403"), ("b.example", "challenged")
    ]
    assert not list(filter_records(store, LogFilter(agent="GPTBot",
                                                    outcome="served",
                                                    month=1)))


def test_robots_only_filter(store):
    records = list(filter_records(store, LogFilter(robots_only=True)))
    assert [r.path for r in records] == ["/robots.txt"]


def test_query_limit_truncates_in_seq_order(store):
    records = query(store, limit=3)
    assert [r.seq for r in records] == [0, 1, 2]
    assert len(query(store)) == 6


def test_group_by_single_and_multi_dimension(store):
    assert group_by(store, ("agent",)) == {("CCBot",): 2, ("GPTBot",): 4}
    by_agent_month = group_by(store, ("agent", "month"))
    assert by_agent_month == {
        ("CCBot", 0): 1, ("CCBot", 1): 1,
        ("GPTBot", 0): 2, ("GPTBot", 1): 2,
    }
    # Keys iterate sorted (stringified), pinning rendered output.
    assert list(by_agent_month) == sorted(by_agent_month,
                                          key=lambda k: tuple(map(str, k)))


def test_group_by_unknown_dimension_names_the_known_set(store):
    with pytest.raises(KeyError, match="unknown dimension 'nope'"):
        group_by(store, ("nope",))


def test_top_k_ranks_by_count_then_value(store):
    ranked = top_k(store, "path", k=2)
    assert ranked[0] == ("/one", 2)
    assert ranked[1] == ("/two", 2)  # ties break lexicographically
    assert top_k(store, "path", k=0) == []


def test_timelines_shape_and_ordering(store):
    lines = timelines(store)
    assert list(lines) == ["CCBot", "GPTBot"]
    assert lines["GPTBot"] == {0: 2, 1: 2}
    assert list(lines["GPTBot"]) == [0, 1]
    filtered = timelines(store, LogFilter(category="news"))
    assert filtered == {"CCBot": {0: 1, 1: 1}, "GPTBot": {1: 1}}


class TestNativeKeyOrdering:
    """Integer dimensions must sort numerically, not lexicographically."""

    def test_group_by_months_0_through_12(self, tmp_path):
        sink = LogSink()
        with log_stream("months"):
            for month in range(13):
                sink.emit("h.example", "/", "ua", "GPTBot", "served",
                          "art", month, 200, month, False)
        sink.commit(tmp_path / "logs", config_digest="cfg", n_shards=1)
        with LogStore.open(tmp_path / "logs") as store:
            grouped = group_by(store, ("month",))
        # str() sorting would give 0,1,10,11,12,2,...; native ints must
        # come back in numeric order.
        assert [month for (month,) in grouped] == list(range(13))

    def test_group_by_mixed_dimensions_sort_per_position(self, tmp_path):
        sink = LogSink()
        with log_stream("mixed"):
            for month in (2, 10):
                for agent in ("GPTBot", "CCBot"):
                    sink.emit("h.example", "/", "ua", agent, "served",
                              "art", month, 200, 0, False)
        sink.commit(tmp_path / "logs", config_digest="cfg", n_shards=1)
        with LogStore.open(tmp_path / "logs") as store:
            grouped = group_by(store, ("agent", "month"))
        assert list(grouped) == [
            ("CCBot", 2), ("CCBot", 10), ("GPTBot", 2), ("GPTBot", 10),
        ]

    def test_top_k_breaks_ties_on_native_values(self, tmp_path):
        sink = LogSink()
        with log_stream("ties"):
            # months 2 and 10 each appear twice: tied counts must rank
            # 2 ahead of 10 (a str() tie-break would invert them).
            for month in (10, 10, 2, 2, 7, 7, 7):
                sink.emit("h.example", "/", "ua", "GPTBot", "served",
                          "art", month, 200, 0, False)
        sink.commit(tmp_path / "logs", config_digest="cfg", n_shards=1)
        with LogStore.open(tmp_path / "logs") as store:
            ranked = top_k(store, "month", k=3)
        assert ranked == [(7, 3), (2, 2), (10, 2)]
