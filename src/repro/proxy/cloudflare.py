"""Simulation of Cloudflare's bot-blocking features.

Models the observable behavior the Section 6.3 grey-box evaluation
characterizes:

* **Verified bots** -- requests claiming a verified-bot user agent from
  outside the bot's published IP range are blocked as spoofs regardless
  of settings (Appendix C.2's note that "IP address likely plays a role
  in the operation of this setting").
* **Block AI Bots** -- the one-click feature [13]: blocks the seventeen
  UA patterns of Appendix C.3 with a block page.  Verified AI bots that
  Cloudflare chooses not to block (Applebot, OAI-SearchBot, ICC
  Crawler, DuckAssistbot) pass through, matching footnote 8.
* **Definitely Automated** -- the managed ruleset blocking automation
  tools (Appendix C.2) with a challenge page.
* Custom WAF rules and fingerprint-based automation blocking compose
  with the managed features, in that order, like user-configured rules
  do on the real service.

The proxy keeps a ``dashboard`` log of (user agent, disposition) pairs,
standing in for the Cloudflare dashboard the paper uses as ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..agents.catalogs import (
    CLOUDFLARE_AI_BOTS_BLOCKED,
    CLOUDFLARE_DEFINITELY_AUTOMATED,
    CLOUDFLARE_VERIFIED_BOTS,
)
from ..agents.ipranges import ip_in_published_range
from ..agents.useragent import contains_token, matches_any, primary_product
from ..net.http import Request, Response
from ..net.transport import Handler
from .behavioral import BehavioralPolicy
from .reverse_proxy import ACTION_OUTCOMES, ReverseProxy
from .rules import Action, RuleSet

__all__ = ["CloudflareSettings", "CloudflareProxy"]


@dataclass
class CloudflareSettings:
    """Per-zone feature toggles.

    Attributes:
        block_ai_bots: The "Block AI Scrapers and Crawlers" switch.
        definitely_automated: The "Definitely Automated" managed rule.
        plan: Payment tier label; the features behave identically on
            free and paid plans (validated by the paper on both).
    """

    block_ai_bots: bool = False
    definitely_automated: bool = False
    #: Serve AI Labyrinth decoy mazes to matched AI crawlers instead of
    #: a block page [110] -- wastes the crawler's budget on generated
    #: content rather than refusing it.
    ai_labyrinth: bool = False
    plan: str = "free"


class CloudflareProxy(ReverseProxy):
    """A Cloudflare-style zone fronting one origin site.

    >>> from repro.net.server import Website
    >>> zone = CloudflareProxy(Website("e.com"), CloudflareSettings(block_ai_bots=True))
    >>> zone.handle(Request(host="e.com", path="/", headers={"User-Agent": "Bytespider"})).status
    403
    """

    def __init__(
        self,
        origin: Handler,
        settings: Optional[CloudflareSettings] = None,
        custom_rules: Optional[RuleSet] = None,
        behavioral: Optional[BehavioralPolicy] = None,
    ):
        super().__init__(
            origin,
            ruleset=custom_rules,
            service_name="Cloudflare",
            behavioral=behavioral,
        )
        self.settings = settings or CloudflareSettings()
        #: Grey-box ground truth: (user_agent, disposition) per request,
        #: dispositions in {"pass", "block-ai", "managed-challenge",
        #: "spoofed-verified-bot", "custom"} plus "behavioral-<verdict>"
        #: when a behavioral policy gates the request.
        self.dashboard: List[Tuple[str, str]] = []

    # -- managed rule predicates ---------------------------------------------

    def _claims_verified_bot(self, user_agent: str) -> Optional[str]:
        """The verified-bot token the UA claims to be, if any."""
        for token in CLOUDFLARE_VERIFIED_BOTS:
            if contains_token(user_agent, token):
                return token
        return None

    def _is_spoofed_verified_bot(self, request: Request) -> bool:
        token = self._claims_verified_bot(request.user_agent)
        if token is None:
            return False
        return not ip_in_published_range(token, request.client_ip)

    def _matches_block_ai(self, user_agent: str) -> bool:
        return matches_any(user_agent, CLOUDFLARE_AI_BOTS_BLOCKED)

    def _matches_definitely_automated(self, user_agent: str) -> bool:
        return matches_any(user_agent, CLOUDFLARE_DEFINITELY_AUTOMATED)

    # -- request handling ------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Evaluate managed features, then forward to the origin."""
        ua = request.user_agent

        # Behavioral scoring outranks every UA-list feature: it is the
        # layer a UA-rotating crawler cannot talk its way past.
        if self.behavioral is not None:
            gated = self._behavioral_decision(request)
            if gated is not None:
                verdict, response = gated
                self.dashboard.append((ua, f"behavioral-{verdict.verdict}"))
                return response

        custom = self.ruleset.decide(request)
        if custom is not None:
            self.dashboard.append((ua, "custom"))
            response = self._interstitial(custom, request)
            self._record_outcome(request, ACTION_OUTCOMES[custom], response.status)
            self._log(request, response.status, response.content_length)
            return response

        # Verified-bot IP validation is part of the Definitely Automated
        # managed ruleset (Appendix C.2: "IP address likely plays a role
        # in the operation of this setting to block 'fake' verified
        # bots"); with managed rules off, a spoofed UA passes through,
        # which is what lets the paper's grey-box probes -- sent from a
        # non-published IP -- measure the Block AI Bots list at all.
        if self.settings.definitely_automated and self._is_spoofed_verified_bot(request):
            self.dashboard.append((ua, "spoofed-verified-bot"))
            response = self._interstitial(Action.BLOCK, request)
            self._record_outcome(request, "blocked_403", response.status)
            self._log(request, response.status, response.content_length)
            return response

        if self.settings.block_ai_bots and self._matches_block_ai(ua):
            if self.settings.ai_labyrinth:
                self.dashboard.append((ua, "labyrinth"))
                response = self._interstitial(Action.FAKE_CONTENT, request)
                self._record_outcome(request, "decoy", response.status)
            else:
                self.dashboard.append((ua, "block-ai"))
                response = self._interstitial(Action.BLOCK, request)
                self._record_outcome(request, "blocked_403", response.status)
            self._log(request, response.status, response.content_length)
            return response

        if self.settings.definitely_automated and self._matches_definitely_automated(ua):
            self.dashboard.append((ua, "managed-challenge"))
            response = self._interstitial(Action.CHALLENGE, request)
            self._record_outcome(request, "challenged", response.status)
            self._log(request, response.status, response.content_length)
            return response

        self.dashboard.append((ua, "pass"))
        self._forward_clocks()
        response = self.origin.handle(request)
        self._log(request, response.status, response.content_length)
        return response

    # -- grey-box helpers -------------------------------------------------------

    def blocked_dispositions(self) -> List[Tuple[str, str]]:
        """Dashboard rows whose disposition is not "pass"."""
        return [row for row in self.dashboard if row[1] != "pass"]
