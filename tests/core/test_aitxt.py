"""Tests for the ai.txt protocol and the media harvester."""

import pytest

from repro.core.aitxt import (
    AiTxtPolicy,
    MediaCategory,
    build_aitxt,
    category_for_path,
)
from repro.crawlers.trainer import MediaHarvester
from repro.net.server import Website, render_page
from repro.net.transport import Network


class TestCategoryForPath:
    def test_images(self):
        assert category_for_path("/g/piece.PNG") is MediaCategory.IMAGES

    def test_text(self):
        assert category_for_path("/essay.pdf") is MediaCategory.TEXT

    def test_query_string_ignored(self):
        assert category_for_path("/a.jpg?size=big") is MediaCategory.IMAGES

    def test_unknown(self):
        assert category_for_path("/about") is None


class TestAiTxtPolicy:
    def test_disallow_all(self):
        policy = AiTxtPolicy("User-Agent: *\nDisallow: /")
        assert not policy.may_train("/anything.jpg")

    def test_extension_carveout(self):
        policy = AiTxtPolicy("User-Agent: *\nDisallow: /\nAllow: *.jpg")
        assert policy.may_train("/photos/cat.jpg")
        assert not policy.may_train("/essay.txt")

    def test_empty_allows_all(self):
        assert AiTxtPolicy("").may_train("/a.png")

    def test_allowed_categories(self):
        text = build_aitxt({MediaCategory.IMAGES: True}, default_allow=False)
        categories = AiTxtPolicy(text).allowed_categories()
        assert categories[MediaCategory.IMAGES] is True
        assert categories[MediaCategory.TEXT] is False
        assert categories[MediaCategory.AUDIO] is False


class TestBuildAitxt:
    def test_default_deny(self):
        policy = AiTxtPolicy(build_aitxt())
        assert not policy.may_train("/x.jpg")
        assert not policy.may_train("/x.mp3")

    def test_default_allow_with_image_optout(self):
        text = build_aitxt({MediaCategory.IMAGES: False}, default_allow=True)
        policy = AiTxtPolicy(text)
        assert not policy.may_train("/x.webp")
        assert policy.may_train("/doc.pdf")

    def test_roundtrip_every_category(self):
        for category in MediaCategory:
            text = build_aitxt({category: True}, default_allow=False)
            categories = AiTxtPolicy(text).allowed_categories()
            assert categories[category] is True
            for other, allowed in categories.items():
                if other is not category:
                    assert allowed is False, (category, other)


class TestMediaHarvester:
    def _world(self, aitxt=None):
        net = Network()
        site = Website("gallery.example")
        site.add_page("/", render_page("G"))
        site.add_page("/art/piece.png", "PNGDATA", content_type="image/png")
        site.add_page("/essay.txt", "words", content_type="text/plain")
        if aitxt is not None:
            site.add_page("/ai.txt", aitxt, content_type="text/plain")
        net.register(site)
        return net, site

    URLS = [("gallery.example", "/art/piece.png"), ("gallery.example", "/essay.txt")]

    def test_no_aitxt_downloads_everything(self):
        net, _ = self._world(None)
        report = MediaHarvester(net).harvest(self.URLS)
        assert len(report.downloaded) == 2

    def test_aitxt_image_optout_respected(self):
        text = build_aitxt({MediaCategory.IMAGES: False}, default_allow=True)
        net, _ = self._world(text)
        report = MediaHarvester(net).harvest(self.URLS)
        downloaded = {item.path for item in report.downloaded}
        assert downloaded == {"/essay.txt"}
        assert report.skipped[0].reason == "ai.txt disallows training use"

    def test_realtime_policy_change(self):
        # The same URL list yields different harvests after the owner
        # flips ai.txt -- the protocol's real-time property.
        net, site = self._world(build_aitxt(default_allow=True))
        harvester = MediaHarvester(net)
        assert len(harvester.harvest(self.URLS).downloaded) == 2
        site.add_page(
            "/ai.txt", build_aitxt(default_allow=False), content_type="text/plain"
        )
        assert len(harvester.harvest(self.URLS).downloaded) == 0

    def test_disrespectful_trainer_ignores_aitxt(self):
        net, _ = self._world(build_aitxt(default_allow=False))
        report = MediaHarvester(net, respects_aitxt=False).harvest(self.URLS)
        assert len(report.downloaded) == 2
        assert all(item.reason == "protocol ignored" for item in report.downloaded)

    def test_missing_media_reported(self):
        net, _ = self._world(None)
        report = MediaHarvester(net).harvest([("gallery.example", "/nope.png")])
        assert not report.downloaded
        assert "404" in report.skipped[0].reason

    def test_unresolvable_host_reported(self):
        report = MediaHarvester(Network()).harvest([("ghost.example", "/a.png")])
        assert not report.downloaded
