"""Tests for ReverseProxy and CloudflareProxy."""

import pytest

from repro.agents.ipranges import crawler_ip
from repro.agents.useragent import DEFAULT_BROWSER_UA
from repro.net.errors import ConnectionReset
from repro.net.http import Request
from repro.net.server import Website, render_page
from repro.net.transport import Network
from repro.proxy.challenges import PageKind, classify_page
from repro.proxy.cloudflare import CloudflareProxy, CloudflareSettings
from repro.proxy.fingerprint import AUTOMATION_HEADER
from repro.proxy.reverse_proxy import ReverseProxy
from repro.proxy.rules import Action, BlockRule, RuleSet


def origin(host="site.com"):
    site = Website(host)
    site.add_page("/", render_page("Site home", paragraphs=["welcome"]))
    site.set_robots_txt("User-agent: *\nDisallow:")
    return site


def req(ua, ip="198.51.100.1", path="/", host="site.com", **headers):
    merged = {"User-Agent": ua}
    merged.update(headers)
    return Request(host=host, path=path, headers=merged, client_ip=ip)


class TestReverseProxy:
    def test_forwards_when_no_rule_matches(self):
        proxy = ReverseProxy(origin(), RuleSet.blocking_user_agents(["Bytespider"]))
        response = proxy.handle(req(DEFAULT_BROWSER_UA))
        assert response.ok and "welcome" in response.text

    def test_blocks_matching_ua(self):
        proxy = ReverseProxy(origin(), RuleSet.blocking_user_agents(["Bytespider"]))
        response = proxy.handle(req("Bytespider"))
        assert response.status == 403
        assert classify_page(response.text) is PageKind.BLOCK

    def test_blocked_request_never_reaches_origin(self):
        site = origin()
        proxy = ReverseProxy(site, RuleSet.blocking_user_agents(["Bytespider"]))
        proxy.handle(req("Bytespider"))
        assert len(site.access_log) == 0
        assert len(proxy.access_log) == 1

    def test_reset_action_raises(self):
        rules = RuleSet([BlockRule(Action.RESET, ua_patterns=["evil"])])
        proxy = ReverseProxy(origin(), rules)
        with pytest.raises(ConnectionReset):
            proxy.handle(req("evilbot"))

    def test_fake_content_action(self):
        rules = RuleSet([BlockRule(Action.FAKE_CONTENT, ua_patterns=["Bytespider"])])
        proxy = ReverseProxy(origin(), rules)
        response = proxy.handle(req("Bytespider"))
        assert response.ok
        assert classify_page(response.text) is PageKind.LABYRINTH

    def test_block_all_automation(self):
        proxy = ReverseProxy(origin(), block_all_automation=True)
        blocked = proxy.handle(
            req(DEFAULT_BROWSER_UA, **{AUTOMATION_HEADER: "webdriver"})
        )
        assert blocked.status == 403
        assert classify_page(blocked.text) is PageKind.CAPTCHA
        # A clean browser passes.
        assert proxy.handle(req(DEFAULT_BROWSER_UA)).ok

    def test_host_delegates_to_origin(self):
        assert ReverseProxy(origin("x.net")).host == "x.net"

    def test_registers_on_network(self):
        net = Network()
        net.register(ReverseProxy(origin("p.com")))
        assert net.request(Request(host="p.com")).ok


class TestCloudflareVerifiedBots:
    def test_genuine_gptbot_passes_without_block_setting(self):
        zone = CloudflareProxy(origin(), CloudflareSettings())
        response = zone.handle(req("GPTBot/1.1", ip=crawler_ip("GPTBot")))
        assert response.ok

    def test_spoofed_gptbot_blocked_under_definitely_automated(self):
        zone = CloudflareProxy(
            origin(), CloudflareSettings(definitely_automated=True)
        )
        response = zone.handle(req("GPTBot/1.1", ip="192.0.2.50"))
        assert response.status == 403
        assert ("GPTBot/1.1", "spoofed-verified-bot") in zone.dashboard

    def test_spoofed_gptbot_passes_with_managed_rules_off(self):
        # Without Definitely Automated, no IP validation happens; this
        # is what allowed the paper's grey-box probes to work.
        zone = CloudflareProxy(origin(), CloudflareSettings())
        assert zone.handle(req("GPTBot/1.1", ip="192.0.2.50")).ok

    def test_genuine_gptbot_passes_under_definitely_automated(self):
        zone = CloudflareProxy(
            origin(), CloudflareSettings(definitely_automated=True)
        )
        assert zone.handle(req("GPTBot/1.1", ip=crawler_ip("GPTBot"))).ok

    def test_unverified_bot_not_spoof_checked(self):
        # ClaudeBot publishes no IPs, so it cannot be verified and is
        # not IP-checked (though DA would challenge it by UA).
        zone = CloudflareProxy(origin(), CloudflareSettings())
        assert zone.handle(req("ClaudeBot/1.0", ip="192.0.2.50")).ok


class TestCloudflareBlockAIBots:
    def on(self):
        return CloudflareProxy(origin(), CloudflareSettings(block_ai_bots=True))

    def test_blocks_unverified_ai_crawlers(self):
        zone = self.on()
        for ua in ("Bytespider", "ClaudeBot/1.0", "PerplexityBot/1.0", "cohere-ai"):
            response = zone.handle(req(ua))
            assert response.status == 403, ua
            assert classify_page(response.text) is PageKind.BLOCK

    def test_blocks_genuine_verified_ai_bots(self):
        zone = self.on()
        response = zone.handle(req("GPTBot/1.1", ip=crawler_ip("GPTBot")))
        assert response.status == 403
        assert ("GPTBot/1.1", "block-ai") in zone.dashboard

    def test_does_not_block_exempt_verified_bots(self):
        zone = self.on()
        # Applebot and OAI-SearchBot are verified but NOT in the block
        # list (footnote 8).
        assert zone.handle(req("Applebot/0.1", ip=crawler_ip("Applebot"))).ok
        assert zone.handle(
            req("OAI-SearchBot/1.0", ip=crawler_ip("OAI-SearchBot"))
        ).ok

    def test_does_not_block_plain_browsers(self):
        assert self.on().handle(req(DEFAULT_BROWSER_UA)).ok

    def test_googlebot_unaffected(self):
        zone = self.on()
        assert zone.handle(req("Googlebot/2.1", ip=crawler_ip("Googlebot"))).ok

    def test_off_by_default(self):
        zone = CloudflareProxy(origin())
        assert zone.handle(req("Bytespider")).ok


class TestCloudflareDefinitelyAutomated:
    def on(self):
        return CloudflareProxy(
            origin(), CloudflareSettings(definitely_automated=True)
        )

    def test_challenges_automation_tools(self):
        zone = self.on()
        for ua in ("python-requests/2.32", "curl/8.0", "HeadlessChrome", "libwww-perl/6.1"):
            response = zone.handle(req(ua))
            assert response.status == 403, ua
            assert classify_page(response.text) is PageKind.CHALLENGE, ua

    def test_challenges_listed_ai_agents(self):
        response = self.on().handle(req("anthropic-ai"))
        assert response.status == 403

    def test_browser_passes(self):
        assert self.on().handle(req(DEFAULT_BROWSER_UA)).ok


class TestCloudflareComposition:
    def test_custom_rules_run_first(self):
        custom = RuleSet([BlockRule(Action.CHALLENGE, ua_patterns=["oddball"])])
        zone = CloudflareProxy(origin(), CloudflareSettings(), custom_rules=custom)
        response = zone.handle(req("oddball/1.0"))
        assert response.status == 403
        assert zone.dashboard[-1][1] == "custom"

    def test_dashboard_records_passes(self):
        zone = CloudflareProxy(origin())
        zone.handle(req(DEFAULT_BROWSER_UA))
        assert zone.dashboard == [(DEFAULT_BROWSER_UA, "pass")]
        assert zone.blocked_dispositions() == []

    def test_both_settings_block_page_beats_challenge(self):
        zone = CloudflareProxy(
            origin(),
            CloudflareSettings(block_ai_bots=True, definitely_automated=True),
        )
        # Bytespider is in both lists; Block AI Bots takes precedence.
        response = zone.handle(req("Bytespider"))
        assert classify_page(response.text) is PageKind.BLOCK


class TestLabyrinthTrap:
    """Cloudflare-AI-Labyrinth-style decoy content for misbehaving bots."""

    def _trapped_world(self):
        from repro.crawlers.engine import Crawler
        from repro.crawlers.profiles import CrawlerProfile

        net = Network()
        site = origin("trap.com")
        site.add_page("/real", "<p>real content</p>")
        site.set_robots_txt("User-agent: *\nDisallow: /\n")
        rules = RuleSet([BlockRule(Action.FAKE_CONTENT, ua_patterns=["Bytespider"])])
        proxy = ReverseProxy(site, rules, service_name="Labyrinth")
        net.register(proxy, host="trap.com")
        return net, site, proxy

    def test_decoy_pages_link_onward(self):
        net, _, proxy = self._trapped_world()
        response = proxy.handle(req("Bytespider", host="trap.com", path="/archive/5"))
        assert response.ok
        assert "/archive/6" in response.text and "/archive/7" in response.text

    def test_defiant_crawler_wanders_the_maze(self):
        from repro.crawlers.engine import Crawler
        from repro.crawlers.profiles import CrawlerProfile

        net, site, _ = self._trapped_world()
        crawler = Crawler(CrawlerProfile.defiant("Bytespider", "Bytespider"), net)
        result = crawler.crawl("trap.com", max_pages=20)
        # The crawl budget is fully consumed by generated pages...
        assert len(result.content_fetches) == 20
        # ...and not one request reached the origin.
        assert len(site.access_log) == 0

    def test_decoy_is_deterministic_per_path(self):
        net, _, proxy = self._trapped_world()
        a = proxy.handle(req("Bytespider", host="trap.com", path="/archive/3"))
        b = proxy.handle(req("Bytespider", host="trap.com", path="/archive/3"))
        assert a.body == b.body

    def test_browser_unaffected(self):
        net, site, proxy = self._trapped_world()
        response = proxy.handle(req(DEFAULT_BROWSER_UA, host="trap.com", path="/"))
        assert response.ok
        assert "Site home" in response.text


class TestCloudflareAiLabyrinth:
    def _zone(self):
        return CloudflareProxy(
            origin(),
            CloudflareSettings(block_ai_bots=True, ai_labyrinth=True),
        )

    def test_matched_crawler_gets_decoy_not_block(self):
        zone = self._zone()
        response = zone.handle(req("Bytespider", path="/archive/2"))
        assert response.ok  # a 200, not a 403!
        assert classify_page(response.text) is PageKind.LABYRINTH
        assert ("Bytespider", "labyrinth") in zone.dashboard

    def test_decoy_never_reaches_origin(self):
        zone = self._zone()
        zone.handle(req("GPTBot/1.1", ip=crawler_ip("GPTBot")))
        assert len(zone.origin.access_log) == 0

    def test_browser_gets_real_content(self):
        response = self._zone().handle(req(DEFAULT_BROWSER_UA))
        assert "welcome" in response.text

    def test_defiant_crawler_trapped_in_maze(self):
        from repro.crawlers.engine import Crawler
        from repro.crawlers.profiles import CrawlerProfile

        net = Network()
        net.register(self._zone(), host="site.com")
        crawler = Crawler(CrawlerProfile.defiant("Bytespider", "Bytespider"), net)
        result = crawler.crawl("site.com", max_pages=15)
        assert len(result.content_fetches) == 15  # budget burned on decoys

    def test_labyrinth_off_means_block_page(self):
        zone = CloudflareProxy(origin(), CloudflareSettings(block_ai_bots=True))
        response = zone.handle(req("Bytespider"))
        assert response.status == 403
