"""Tests for the dependency-aware experiment orchestrator.

The load-bearing property is scheduling-independence: ``run_all`` must
produce bit-identical results for any worker count and any execution
mode, with results always assembled in registry order.
"""

import pytest

from repro.cli import EXPERIMENT_IDS
from repro.report.orchestrator import (
    EXPERIMENT_REGISTRY,
    experiment_keys,
    run_all,
    run_one,
)
from repro.web.population import PopulationConfig
from repro.web.worldstore import WorldStore

SMALL = PopulationConfig(
    universe_size=500, list_size=300, top5k_cut=40, audit_size=90, seed=7
)

#: A battery slice covering all three world dependencies: bundle
#: (figure2, taxonomy), population (sec62, sec22), none (table1).
SLICE = ["table1", "figure2", "sec62", "sec22", "taxonomy"]


@pytest.fixture(scope="module")
def store():
    return WorldStore()


class TestRegistry:
    def test_registry_keys_match_the_cli(self):
        assert sorted(experiment_keys()) == sorted(EXPERIMENT_IDS)

    def test_keys_and_result_ids_are_unique(self):
        keys = [spec.key for spec in EXPERIMENT_REGISTRY]
        ids = [spec.result_id for spec in EXPERIMENT_REGISTRY]
        assert len(set(keys)) == len(keys)
        assert len(set(ids)) == len(ids)

    def test_every_spec_declares_a_known_world(self):
        assert {spec.world for spec in EXPERIMENT_REGISTRY} == {
            "bundle", "population", "none"
        }


class TestSchedulingIndependence:
    def test_workers_do_not_change_results(self, store):
        serial = run_all(SMALL, workers=1, experiments=SLICE, store=store)
        threaded = run_all(
            SMALL, workers=4, experiments=SLICE, store=store, mode="thread"
        )
        assert serial.mode == "serial"
        assert threaded.mode == "thread"
        assert [r.experiment_id for r in serial.results] == [
            r.experiment_id for r in threaded.results
        ]
        for a, b in zip(serial.results, threaded.results):
            assert a.text == b.text
            assert a.metrics == b.metrics

    def test_results_come_back_in_registry_order(self, store):
        shuffled = ["taxonomy", "table1", "sec62", "figure2"]
        report = run_all(SMALL, workers=1, experiments=shuffled, store=store)
        expected = [k for k in experiment_keys() if k in shuffled]
        assert list(report.timings_seconds) == expected

    def test_population_runners_repeat_identically(self, store):
        # Each invocation gets a fresh copy-on-write view, so a prior
        # run's handler registrations cannot perturb the next.
        first = run_all(SMALL, workers=1, experiments=["sec62"], store=store)
        second = run_all(SMALL, workers=1, experiments=["sec62"], store=store)
        assert first.results[0].text == second.results[0].text

    def test_unknown_key_raises(self, store):
        with pytest.raises(KeyError):
            run_all(SMALL, experiments=["nope"], store=store)


class TestReport:
    def test_report_json_shape(self, store):
        report = run_all(SMALL, workers=2, experiments=["table1", "figure2"],
                         store=store, mode="thread")
        payload = report.to_json()
        assert payload["schema_version"] == 1
        assert payload["mode"] == "thread"
        assert payload["workers"] == 2
        assert payload["world_seconds"] >= 0
        assert payload["total_seconds"] > 0
        keys = [entry["key"] for entry in payload["experiments"]]
        assert keys == ["table1", "figure2"]
        for entry in payload["experiments"]:
            assert entry["seconds"] >= 0
            assert entry["world"] in {"bundle", "population", "none"}

    def test_result_for_lookup(self, store):
        report = run_all(SMALL, workers=1, experiments=["taxonomy"], store=store)
        assert report.result_for("taxonomy").experiment_id == "change_taxonomy"
        with pytest.raises(KeyError):
            report.result_for("figure3")


class TestRunOne:
    def test_run_one_matches_batch(self, store):
        single = run_one("figure2", config=SMALL, store=store)
        batch = run_all(SMALL, workers=1, experiments=["figure2"], store=store)
        assert single.text == batch.results[0].text

    def test_standalone_experiment_needs_no_world(self):
        # A fresh store stays empty: table1 must not trigger a build.
        store = WorldStore()
        run_one("table1", config=SMALL, store=store)
        assert store.stats["population_builds"] == 0
