"""Cross-mode byte-identity for the wide-event log plane.

The contract: ``run_all(log_dir=...)`` commits a columnar log archive
-- and the FEATURES.json derived from it -- that is **byte-identical
across serial/thread/fork scheduling at any worker count**.  Named
streams plus shipped fork deltas deliver it; this suite pins the
resulting bytes, not just aggregate equality.
"""

import json
import multiprocessing

import pytest

from repro.net.accesslog import active_log_sink
from repro.net.logstore import LogStore
from repro.obs.metrics import shared_registry
from repro.obs.series import shared_series
from repro.obs.trace import shared_tracer
from repro.report.orchestrator import run_all
from repro.web.population import PopulationConfig
from repro.web.worldstore import WorldStore

SMALL = PopulationConfig(universe_size=500, list_size=300, top5k_cut=40,
                         audit_size=90, seed=7)

#: Covers the request-heavy sources (crawler fleet through the proxy
#: and server planes) -- same slice the batch cross-mode identity
#: tests use.
SLICE = ["table1", "figure2", "sec62"]


@pytest.fixture(scope="module")
def store():
    return WorldStore()


def _reset():
    shared_registry().reset()
    shared_series().reset()
    shared_tracer().reset()


def _archive_bytes(root):
    """Every file under *root* as ``{relative_path: bytes}``."""
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


class TestLogArchiveIdentity:
    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_archive_bytes_identical_across_modes(self, store, tmp_path):
        # Pre-warm the world so every mode measures identical work.
        run_all(SMALL, workers=1, experiments=SLICE, store=store)
        archives = {}
        features = {}
        for label, mode, workers in [
            ("serial", "auto", 1),
            ("thread2", "thread", 2),
            ("process3", "process", 3),
        ]:
            _reset()
            log_dir = tmp_path / label
            run_all(SMALL, workers=workers, experiments=SLICE, store=store,
                    mode=mode, log_dir=log_dir)
            archives[label] = _archive_bytes(log_dir)
            features[label] = (log_dir / "FEATURES.json").read_bytes()
            with LogStore.open(log_dir) as committed:
                assert committed.n_records > 0
                committed.verify()
        assert archives["thread2"] == archives["serial"]
        assert archives["process3"] == archives["serial"]
        assert features["thread2"] == features["serial"]
        assert features["process3"] == features["serial"]

    def test_sink_detached_after_run(self, store, tmp_path):
        run_all(SMALL, workers=1, experiments=["table1"], store=store,
                log_dir=tmp_path / "logs")
        assert active_log_sink() is None  # run_all restores the previous sink

    def test_features_land_in_telemetry_dir_when_given(self, store, tmp_path):
        run_all(SMALL, workers=1, experiments=["table1"], store=store,
                telemetry_dir=tmp_path / "tele", log_dir=tmp_path / "logs")
        assert (tmp_path / "tele" / "FEATURES.json").is_file()
        assert not (tmp_path / "logs" / "FEATURES.json").exists()
        payload = json.loads((tmp_path / "tele" / "FEATURES.json").read_text())
        with LogStore.open(tmp_path / "logs") as committed:
            assert payload["n_records"] == committed.n_records
            assert payload["config_digest"] == committed.config_digest

    def test_strata_runs_reject_log_dir(self, tmp_path):
        with pytest.raises(ValueError, match="strata"):
            run_all(SMALL, strata=["top-1k"], log_dir=tmp_path / "logs")
