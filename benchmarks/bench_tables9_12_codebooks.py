"""Tables 9-12 (Appendix D.3): thematic codebooks with coded counts.

Paper shape: four codebooks (6 / 5 / 6 / 7 themes); the dominant
distrust themes concern track record, profit motive, and the voluntary
nature of robots.txt; the dominant enable themes are protection and
consent.
"""

from conftest import save_artifact

from repro.report.experiments import run_tables9_12_codebooks


def test_tables9_12_codebooks(benchmark, artifact_dir):
    result = benchmark.pedantic(
        run_tables9_12_codebooks, kwargs={"seed": 42}, rounds=1, iterations=1
    )
    save_artifact(artifact_dir, result)
    print(result.text)

    metrics = result.metrics
    # Every codebook receives coded responses from the corpus.
    assert metrics["other-actions_total"] > 0
    assert metrics["no-adopt-reasons_total"] > 0
    assert metrics["enable-reasons_total"] > 50     # most artists explain enabling
    assert metrics["distrust-reasons_total"] > 50   # most artists distrust
