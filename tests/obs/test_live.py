"""The live telemetry plane: bus, scraper, renderer, HTTP, batch hook."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.live import (
    EventBus,
    JsonlSink,
    LiveTelemetry,
    MetricsHTTPServer,
    TelemetryScraper,
    active,
    install,
    month_tick,
    render_prometheus,
    uninstall,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.series import SeriesRegistry


class TestEventBus:
    def test_publish_assigns_monotonic_seq(self):
        bus = EventBus()
        first = bus.publish("scrape", {})
        second = bus.publish("alert", {})
        assert (first.seq, second.seq) == (1, 2)
        assert bus.last_seq == 2

    def test_ring_evicts_oldest_and_counts_drops(self):
        bus = EventBus(capacity=3)
        for index in range(5):
            bus.publish("scrape", {"index": index})
        events = bus.events()
        assert [event.payload["index"] for event in events] == [2, 3, 4]
        assert bus.dropped == 2
        assert bus.last_seq == 5  # eviction never reuses sequence numbers

    def test_events_filter_by_kind(self):
        bus = EventBus()
        bus.publish("scrape", {})
        bus.publish("alert", {"rule": "x"})
        assert [e.kind for e in bus.events("alert")] == ["alert"]

    def test_sinks_see_every_publish(self):
        bus = EventBus(capacity=1)
        seen = []
        bus.subscribe(seen.append)
        bus.publish("scrape", {"index": 0})
        bus.publish("scrape", {"index": 1})  # evicts, but the sink saw both
        assert [event.payload["index"] for event in seen] == [0, 1]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventBus(capacity=0)

    def test_event_to_json_round_trips(self):
        event = EventBus().publish("scrape", {"a": 1}, month=3)
        payload = json.loads(json.dumps(event.to_json()))
        assert payload["kind"] == "scrape"
        assert payload["month"] == 3
        assert payload["payload"] == {"a": 1}


class TestTelemetryScraper:
    def _instruments(self):
        registry = MetricsRegistry()
        series = SeriesRegistry()
        registry.inc("net.requests", amount=7)
        series.add("sim.requests", month=2, amount=4, agent="GPTBot")
        return registry, series

    def test_cumulative_payload_matches_export_shape(self):
        registry, series = self._instruments()
        payload = TelemetryScraper(registry, series).scrape()
        assert payload["metrics"]["counters"]["net.requests"] == 7
        entry = payload["series"]["series"]['sim.requests{agent=GPTBot}']
        assert entry == {"months": [2], "values": [4], "total": 4}

    def test_scrape_counts_itself_before_snapshotting(self):
        registry, series = self._instruments()
        payload = TelemetryScraper(registry, series).scrape()
        # The cumulative payload accounts for its own bookkeeping --
        # this is what makes the final scrape equal the batch export.
        assert payload["metrics"]["counters"]["live.scrapes"] == 1

    def test_second_scrape_delta_is_only_what_changed(self):
        registry, series = self._instruments()
        scraper = TelemetryScraper(registry, series)
        scraper.scrape()
        registry.inc("net.requests", amount=3)
        delta = scraper.scrape()["delta"]
        assert delta["counters"]["net.requests"] == 3
        assert delta["counters"]["live.scrapes"] == 1
        assert delta["series"] == {}

    def test_scrape_index_increments(self):
        registry, series = self._instruments()
        scraper = TelemetryScraper(registry, series)
        assert scraper.scrape()["scrape_index"] == 1
        assert scraper.scrape()["scrape_index"] == 2
        assert scraper.scrapes == 2


class TestRenderPrometheus:
    def _payloads(self):
        registry = MetricsRegistry()
        series = SeriesRegistry()
        registry.inc("net.responses", amount=5, status="200")
        registry.set_gauge("cache.hit_rate", 0.75)
        registry.observe("net.bytes", 10.0)
        series.add("sim.requests", month=1, amount=2, agent="GPTBot")
        payload = TelemetryScraper(registry, series).scrape()
        return payload["metrics"], payload["series"]

    def test_counters_render_with_total_suffix_and_labels(self):
        metrics, series = self._payloads()
        text = render_prometheus(metrics, series)
        assert 'net_responses_total{status="200"} 5' in text
        assert "# TYPE net_responses_total counter" in text

    def test_gauges_render_bare(self):
        metrics, series = self._payloads()
        assert "cache_hit_rate 0.75" in render_prometheus(metrics, series)

    def test_histograms_render_cumulative_buckets(self):
        metrics, series = self._payloads()
        text = render_prometheus(metrics, series)
        assert 'net_bytes_bucket{le="+Inf"} 1' in text
        assert "net_bytes_count 1" in text
        assert "net_bytes_sum 10" in text

    def test_series_render_with_monthly_suffix(self):
        metrics, series = self._payloads()
        text = render_prometheus(metrics, series)
        assert 'sim_requests_monthly{agent="GPTBot",month="1"} 2' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.inc("net.errors", kind='say "hi"\nnow')
        payload = TelemetryScraper(registry, SeriesRegistry()).scrape()
        text = render_prometheus(payload["metrics"], None)
        assert 'kind="say \\"hi\\"\\nnow"' in text

    def test_every_line_is_comment_or_sample(self):
        metrics, series = self._payloads()
        for line in render_prometheus(metrics, series).splitlines():
            assert line.startswith("#") or len(line.rsplit(" ", 1)) == 2


class TestJsonlSink:
    def test_scrape_events_ship_deltas_not_cumulative(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("net.requests")
        path = tmp_path / "stream.jsonl"
        live = LiveTelemetry(registry=registry, series=SeriesRegistry())
        sink = JsonlSink(path)
        live.add_sink(sink)
        live.scrape(month=4)
        sink.close()
        record = json.loads(path.read_text().strip())
        assert record["kind"] == "scrape"
        assert record["month"] == 4
        assert record["deltas"]["counters"]["net.requests"] == 1
        assert "metrics" not in record  # cumulative state stays off the wire

    def test_sink_appends_one_line_per_event(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        sink = JsonlSink(path)
        bus = EventBus()
        bus.subscribe(sink)
        bus.publish("alert", {"rule": "r"})
        bus.publish("alert", {"rule": "r"})
        sink.close()
        assert len(path.read_text().strip().splitlines()) == 2


class TestMetricsHTTPServer:
    def _serve(self):
        registry = MetricsRegistry()
        registry.inc("net.requests", amount=9)
        scraper = TelemetryScraper(registry, SeriesRegistry())

        def source():
            payload = scraper.scrape()
            return payload["metrics"], payload["series"]

        return MetricsHTTPServer(source, health=lambda: {"mode": "test"}).start()

    def test_metrics_route_serves_prometheus_text(self):
        server = self._serve()
        try:
            with urllib.request.urlopen(f"{server.url}/metrics") as response:
                body = response.read().decode()
                assert response.headers["Content-Type"].startswith("text/plain")
            assert "net_requests_total 9" in body
        finally:
            server.stop()

    def test_healthz_merges_custom_payload(self):
        server = self._serve()
        try:
            with urllib.request.urlopen(f"{server.url}/healthz") as response:
                payload = json.loads(response.read())
            assert payload["status"] == "ok"
            assert payload["mode"] == "test"
        finally:
            server.stop()

    def test_unknown_route_is_404(self):
        server = self._serve()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{server.url}/nope")
            assert excinfo.value.code == 404
        finally:
            server.stop()


class TestBatchHook:
    def teardown_method(self):
        uninstall()

    def test_month_tick_noop_without_pipeline(self):
        uninstall()
        assert month_tick(3) is None

    def test_month_tick_drives_installed_pipeline(self):
        registry = MetricsRegistry()
        live = LiveTelemetry(registry=registry, series=SeriesRegistry())
        install(live)
        assert active() is live
        event = month_tick(5)
        assert event is not None and event.month == 5
        assert live.latest()["metrics"]["counters"]["live.scrapes"] == 1

    def test_uninstall_detaches(self):
        install(LiveTelemetry(registry=MetricsRegistry(),
                              series=SeriesRegistry()))
        uninstall()
        assert active() is None
        assert month_tick(0) is None


class TestLiveTelemetry:
    def test_alert_engine_firings_publish_and_count(self):
        registry = MetricsRegistry()
        registry.inc("net.errors", amount=10)

        class Engine:
            def evaluate(self, metrics=None, series=None):
                from repro.obs.alerts import AlertEvent

                return [AlertEvent(rule="r", kind="threshold", severity="warn",
                                   message="m", value=1.0, threshold=0.0)]

        live = LiveTelemetry(registry=registry, series=SeriesRegistry(),
                             alert_engine=Engine())
        live.scrape()
        alerts = live.bus.events("alert")
        assert len(alerts) == 1 and alerts[0].payload["rule"] == "r"
        assert registry.counter_totals("alerts.fired")["alerts.fired{rule=r}"] == 1

    def test_serve_scrapes_on_demand(self):
        registry = MetricsRegistry()
        registry.inc("net.requests", amount=2)
        live = LiveTelemetry(registry=registry, series=SeriesRegistry())
        server = live.serve()
        try:
            body = urllib.request.urlopen(f"{server.url}/metrics").read().decode()
            assert "net_requests_total 2" in body
            health = json.loads(
                urllib.request.urlopen(f"{server.url}/healthz").read()
            )
            assert health["scrapes"] == 1
        finally:
            server.stop()
