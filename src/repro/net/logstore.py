"""Columnar per-shard access-log archive: the request-plane wide events.

The Section 5 testbed decides crawler compliance entirely from server
access logs, but until now every request was summarized down to
counters/series before anything durable existed.  This module persists
the raw request plane: every simulated request becomes one fixed-width
columnar record in a per-shard archive that mirrors the
:mod:`repro.web.archive` layout -- id-interned hosts/paths/agent
labels, a content-addressed User-Agent table, little-endian column
blocks, atomic manifest-last commits pinned by a schema fingerprint and
the population config digest, mmap readers, and one-line
:class:`LogStoreError` failures.

Determinism contract (the same one METRICS.json/SERIES.json honor):
the committed archive is **byte-identical across serial/thread/fork
scheduling at any worker count**.  Two mechanisms deliver it:

* **Named streams.**  Every sequential unit of work (one experiment
  runner, one snapshot-collection task) emits under a thread-local
  stream label (:func:`log_stream`).  Each stream is written by exactly
  one thread, so its internal order is the unit's own deterministic
  request order.  At commit time streams are concatenated in sorted
  label order and global sequence numbers are stamped over the result
  -- scheduling decides only *when* a stream fills, never what the
  committed bytes look like.
* **Shipped deltas.**  Fork workers cannot write into the parent's
  sink, so they ship per-stream event deltas (:meth:`LogSink.marks` /
  :meth:`LogSink.delta`) exactly like metrics deltas, and the parent
  merges them (:meth:`LogSink.merge`) before committing.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import threading
from array import array
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, NamedTuple, Optional, Sequence, Tuple, Union

from ..obs.metrics import metrics_enabled, shared_registry
from ..web.archive import array_to_le_bytes, le_bytes_to_array, shard_dir_name
from ..web.sharding import shard_count_for, shard_of
from .accesslog import clock_ticks

__all__ = [
    "LogStoreError",
    "LogRecord",
    "clock_ticks",
    "LogSink",
    "log_stream",
    "ShardLogWriter",
    "LogShardReader",
    "LogStore",
    "LOGSTORE_SCHEMA_FINGERPRINT",
]

#: Bump any entry when the on-disk shape changes; the fingerprint shift
#: makes every reader refuse existing archives (one-line "stale schema"
#: error) instead of silently misreading them.
_SCHEMA = {
    "logstore": 1,
    "record": [
        "ticks:u64le",
        "seq:u32le",
        "host_ref:u32le",
        "path_ref:u32le",
        "ua_ref:u32le",
        "agent_ref:u16le",
        "status:u16le",
        "month:i16le",
        "outcome_ref:u8",
        "flags:u8",
        "category_ref:u8",
    ],
    "ua_index": ["offset:u64le", "length:u32le"],
    "flags": ["robots_fetch"],
}

LOGSTORE_SCHEMA_FINGERPRINT = hashlib.sha256(
    json.dumps(_SCHEMA, sort_keys=True, separators=(",", ":")).encode("utf-8")
).hexdigest()

_MANIFEST = "manifest.json"
_HOSTS = "hosts.txt"
_PATHS = "paths.txt"
_AGENTS = "agents.txt"
_OUTCOMES = "outcomes.txt"
_CATEGORIES = "categories.txt"
_UAS = "uas.bin"
_UA_IDX = "uas.idx"
_UA_SHA = "uas.sha"
_RECORDS = "records.bin"

#: Data files whose byte sizes the manifest pins (truncation check).
_DATA_FILES = (
    _HOSTS, _PATHS, _AGENTS, _OUTCOMES, _CATEGORIES,
    _UAS, _UA_IDX, _UA_SHA, _RECORDS,
)

_UA_IDX_ENTRY = struct.Struct("<QI")

#: Column name -> array typecode, in on-disk block order.
_COLUMNS = (
    ("ticks", "Q"),
    ("seq", "I"),
    ("host_ref", "I"),
    ("path_ref", "I"),
    ("ua_ref", "I"),
    ("agent_ref", "H"),
    ("status", "H"),
    ("month", "h"),
    ("outcome_ref", "B"),
    ("flags", "B"),
    ("category_ref", "B"),
)
_COLUMN_WIDTHS = {"Q": 8, "I": 4, "H": 2, "h": 2, "B": 1}
_RECORD_BYTES = sum(_COLUMN_WIDTHS[code] for _, code in _COLUMNS)

FLAG_ROBOTS_FETCH = 0x01

#: Event tuple layout inside :class:`LogSink` streams (hot-path: plain
#: tuples, decomposed only at commit time).
_EV_HOST, _EV_PATH, _EV_UA, _EV_AGENT, _EV_OUTCOME = 0, 1, 2, 3, 4
_EV_CATEGORY, _EV_MONTH, _EV_STATUS, _EV_TICKS, _EV_ROBOTS = 5, 6, 7, 8, 9


class LogStoreError(Exception):
    """A one-line, operator-facing log-store failure (corrupt, truncated,
    missing, or schema-stale data); the message names the path."""


class LogRecord(NamedTuple):
    """One decoded wide-event row."""

    seq: int
    ticks: int
    month: int
    status: int
    host: str
    path: str
    user_agent: str
    agent: str
    outcome: str
    category: str
    robots_fetch: bool


# -- collection ----------------------------------------------------------------

_STREAM_LOCAL = threading.local()

#: Stream label for work not wrapped in :func:`log_stream` (module-level
#: crawls, tests, ad-hoc driving).
DEFAULT_STREAM = "main"


def current_log_stream() -> str:
    """The calling thread's active stream label."""
    return getattr(_STREAM_LOCAL, "label", DEFAULT_STREAM)


@contextmanager
def log_stream(label: str):
    """Emit this thread's wide events under *label* while active.

    One stream per sequential unit of work is the determinism unit:
    labels must be unique per unit and identical across scheduling
    modes (e.g. ``experiment:figure2``, ``collect:2024-01``).
    """
    previous = current_log_stream()
    _STREAM_LOCAL.label = label
    try:
        yield
    finally:
        _STREAM_LOCAL.label = previous


class LogSink:
    """In-memory wide-event collector, committed to a columnar archive.

    Emission appends to the calling thread's named stream; commit
    orders streams by label, stamps global sequence numbers, partitions
    by host shard, and writes one :class:`ShardLogWriter` per shard.
    """

    def __init__(self) -> None:
        self._streams: Dict[str, List[tuple]] = {}
        self._lock = threading.Lock()

    def emit(
        self,
        host: str,
        path: str,
        user_agent: str,
        agent: str,
        outcome: str,
        category: str,
        month: int,
        status: int,
        ticks: int,
        robots_fetch: bool,
    ) -> None:
        """Record one request event into the active stream."""
        label = current_log_stream()
        events = self._streams.get(label)
        if events is None:
            with self._lock:
                events = self._streams.setdefault(label, [])
        events.append(
            (host, path, user_agent, agent, outcome, category,
             month, status, ticks, robots_fetch)
        )

    def event_count(self) -> int:
        """Total events held across all streams."""
        return sum(len(events) for events in self._streams.values())

    def stream_labels(self) -> List[str]:
        """Labels of non-empty streams, sorted (the commit order)."""
        return sorted(label for label, ev in self._streams.items() if ev)

    # -- fork-worker delta shipping -----------------------------------

    def marks(self) -> Dict[str, int]:
        """Per-stream high-water marks, for :meth:`delta` later."""
        return {label: len(events) for label, events in self._streams.items()}

    def delta(self, marks: Mapping[str, int]) -> Dict[str, List[tuple]]:
        """Events emitted since *marks*, per stream (picklable payload).

        A forked worker inherits the parent's pre-fork events; taking
        marks before the unit runs and shipping only the suffix keeps
        the parent from double-counting them on merge.
        """
        out: Dict[str, List[tuple]] = {}
        for label, events in self._streams.items():
            start = marks.get(label, 0)
            if len(events) > start:
                out[label] = events[start:]
        return out

    def merge(self, delta: Mapping[str, Sequence[tuple]]) -> None:
        """Fold a shipped worker delta into this sink."""
        with self._lock:
            for label, events in delta.items():
                self._streams.setdefault(label, []).extend(events)

    # -- commit --------------------------------------------------------

    def ordered_events(self) -> List[tuple]:
        """All events, streams concatenated in sorted-label order."""
        ordered: List[tuple] = []
        for label in sorted(self._streams):
            ordered.extend(self._streams[label])
        return ordered

    def commit(
        self,
        root: Union[str, Path],
        config_digest: str = "",
        n_shards: Optional[int] = None,
    ) -> Path:
        """Write the archive under *root*; returns the root directory.

        Shard count defaults to the same host-count geometry the
        snapshot archive uses (:func:`shard_count_for`), so a log store
        and a snapshot archive of the same world agree on shape.
        """
        root = Path(root)
        ordered = self.ordered_events()
        hosts = {event[_EV_HOST] for event in ordered}
        if n_shards is None:
            n_shards = shard_count_for(max(len(hosts), 1))
        shard_by_host = {host: shard_of(host, n_shards) for host in hosts}
        writers = [
            ShardLogWriter(root, shard_id, n_shards, config_digest)
            for shard_id in range(n_shards)
        ]
        for seq, event in enumerate(ordered):
            writers[shard_by_host[event[_EV_HOST]]].add(seq, event)
        root.mkdir(parents=True, exist_ok=True)
        for writer in writers:
            writer.commit()
        return root


# -- writing -------------------------------------------------------------------


class _Interner:
    """First-reference-order string table with a reference-width cap."""

    def __init__(self, what: str, cap: int):
        self.values: List[str] = []
        self._index: Dict[str, int] = {}
        self._what = what
        self._cap = cap

    def ref(self, value: str) -> int:
        ref = self._index.get(value)
        if ref is None:
            ref = len(self.values)
            if ref > self._cap:
                raise LogStoreError(
                    f"too many distinct {self._what} for the log-store "
                    f"schema (cap {self._cap + 1})"
                )
            self._index[value] = ref
            self.values.append(value)
        return ref


class ShardLogWriter:
    """Accumulates one shard's records, then commits them atomically."""

    def __init__(
        self,
        root: Union[str, Path],
        shard_id: int,
        n_shards: int,
        config_digest: str = "",
    ):
        self.root = Path(root)
        self.shard_id = shard_id
        self.n_shards = n_shards
        self.config_digest = config_digest
        self._hosts = _Interner("hosts", 0xFFFFFFFF)
        self._paths = _Interner("paths", 0xFFFFFFFF)
        self._agents = _Interner("agent labels", 0xFFFF)
        self._outcomes = _Interner("outcomes", 0xFF)
        self._categories = _Interner("site categories", 0xFF)
        self._ua_blobs: List[bytes] = []
        self._ua_digests: List[str] = []
        self._ua_index: Dict[str, int] = {}
        self._columns: Dict[str, array] = {
            name: array(code) for name, code in _COLUMNS
        }

    def _ua_ref(self, user_agent: str) -> int:
        """Content-addressed UA table: each distinct UA stored once."""
        ref = self._ua_index.get(user_agent)
        if ref is None:
            blob = user_agent.encode("utf-8")
            ref = len(self._ua_blobs)
            self._ua_index[user_agent] = ref
            self._ua_blobs.append(blob)
            self._ua_digests.append(hashlib.sha256(blob).hexdigest())
        return ref

    def add(self, seq: int, event: tuple) -> None:
        """Append one event (sink tuple layout) with global seq *seq*."""
        cols = self._columns
        cols["ticks"].append(event[_EV_TICKS])
        cols["seq"].append(seq)
        cols["host_ref"].append(self._hosts.ref(event[_EV_HOST]))
        cols["path_ref"].append(self._paths.ref(event[_EV_PATH]))
        cols["ua_ref"].append(self._ua_ref(event[_EV_UA]))
        cols["agent_ref"].append(self._agents.ref(event[_EV_AGENT]))
        cols["status"].append(event[_EV_STATUS])
        cols["month"].append(event[_EV_MONTH])
        cols["outcome_ref"].append(self._outcomes.ref(event[_EV_OUTCOME]))
        cols["flags"].append(
            FLAG_ROBOTS_FETCH if event[_EV_ROBOTS] else 0
        )
        cols["category_ref"].append(self._categories.ref(event[_EV_CATEGORY]))

    @property
    def n_records(self) -> int:
        return len(self._columns["seq"])

    def commit(self) -> Path:
        """Write every file, manifest last; returns the shard directory."""
        directory = self.root / shard_dir_name(self.shard_id)
        directory.mkdir(parents=True, exist_ok=True)
        # A leftover manifest from a previous commit must not make a
        # half-overwritten shard openable: drop it before touching data.
        manifest_path = directory / _MANIFEST
        try:
            manifest_path.unlink()
        except FileNotFoundError:
            pass

        def table_blob(values: List[str]) -> bytes:
            return ("\n".join(values) + "\n" if values else "").encode("utf-8")

        blobs: Dict[str, bytes] = {}
        blobs[_HOSTS] = table_blob(self._hosts.values)
        blobs[_PATHS] = table_blob(self._paths.values)
        blobs[_AGENTS] = table_blob(self._agents.values)
        blobs[_OUTCOMES] = table_blob(self._outcomes.values)
        blobs[_CATEGORIES] = table_blob(self._categories.values)
        blobs[_UAS] = b"".join(self._ua_blobs)
        index = bytearray()
        offset = 0
        for blob in self._ua_blobs:
            index += _UA_IDX_ENTRY.pack(offset, len(blob))
            offset += len(blob)
        blobs[_UA_IDX] = bytes(index)
        blobs[_UA_SHA] = (
            "\n".join(self._ua_digests) + "\n" if self._ua_digests else ""
        ).encode("ascii")
        records = bytearray()
        for name, _ in _COLUMNS:
            records += array_to_le_bytes(self._columns[name])
        blobs[_RECORDS] = bytes(records)

        for name, blob in blobs.items():
            (directory / name).write_bytes(blob)

        manifest = {
            "schema_fingerprint": LOGSTORE_SCHEMA_FINGERPRINT,
            "config_digest": self.config_digest,
            "shard_id": self.shard_id,
            "n_shards": self.n_shards,
            "n_records": self.n_records,
            "n_hosts": len(self._hosts.values),
            "n_paths": len(self._paths.values),
            "n_agents": len(self._agents.values),
            "n_outcomes": len(self._outcomes.values),
            "n_categories": len(self._categories.values),
            "n_uas": len(self._ua_blobs),
            "sizes": {name: len(blobs[name]) for name in _DATA_FILES},
        }
        tmp = manifest_path.with_name(_MANIFEST + ".tmp")
        manifest_blob = (
            json.dumps(manifest, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        tmp.write_bytes(manifest_blob)
        os.replace(tmp, manifest_path)

        if metrics_enabled():
            total = sum(len(blob) for blob in blobs.values()) + len(manifest_blob)
            shared_registry().counter("logstore.bytes_written").inc(total)
        return directory


# -- reading -------------------------------------------------------------------


class LogShardReader:
    """mmap-backed read access to one committed log shard."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        manifest_path = self.directory / _MANIFEST
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise LogStoreError(
                f"not a log-store shard (no manifest): {self.directory}"
            ) from None
        except (OSError, ValueError) as exc:
            raise LogStoreError(
                f"corrupt log-store manifest: {manifest_path}: {exc}"
            ) from None
        fingerprint = manifest.get("schema_fingerprint")
        if fingerprint != LOGSTORE_SCHEMA_FINGERPRINT:
            raise LogStoreError(
                f"stale log-store schema (rebuild the log store): "
                f"{self.directory}"
            )
        self.shard_id = int(manifest["shard_id"])
        self.n_shards = int(manifest["n_shards"])
        self.config_digest = manifest.get("config_digest", "")
        self.n_records = int(manifest["n_records"])
        self.n_uas = int(manifest["n_uas"])
        sizes = manifest.get("sizes", {})
        self.data_bytes = 0
        for name in _DATA_FILES:
            path = self.directory / name
            try:
                actual = path.stat().st_size
            except OSError:
                raise LogStoreError(f"missing log-store column: {path}") from None
            expected = sizes.get(name)
            if expected is not None and actual != expected:
                raise LogStoreError(
                    f"truncated log-store column ({actual} bytes, manifest "
                    f"says {expected}): {path}"
                )
            self.data_bytes += actual
        if sizes.get(_RECORDS) != self.n_records * _RECORD_BYTES:
            raise LogStoreError(
                f"inconsistent record geometry ({sizes.get(_RECORDS)} bytes "
                f"for {self.n_records} records): {self.directory / _RECORDS}"
            )

        def table(name: str, count_key: str) -> List[str]:
            rows = (self.directory / name).read_text(encoding="utf-8").splitlines()
            expected_rows = int(manifest[count_key])
            if len(rows) != expected_rows:
                raise LogStoreError(
                    f"string table holds {len(rows)} rows, manifest says "
                    f"{expected_rows}: {self.directory / name}"
                )
            return rows

        self.hosts = table(_HOSTS, "n_hosts")
        self.paths = table(_PATHS, "n_paths")
        self.agents = table(_AGENTS, "n_agents")
        self.outcomes = table(_OUTCOMES, "n_outcomes")
        self.categories = table(_CATEGORIES, "n_categories")
        idx_blob = (self.directory / _UA_IDX).read_bytes()
        self._ua_offsets: List[Tuple[int, int]] = [
            _UA_IDX_ENTRY.unpack_from(idx_blob, i * _UA_IDX_ENTRY.size)
            for i in range(self.n_uas)
        ]
        sha_text = (self.directory / _UA_SHA).read_text(encoding="ascii")
        self.ua_digests: List[str] = sha_text.splitlines()

        self._records_file = open(self.directory / _RECORDS, "rb")
        self._uas_file = open(self.directory / _UAS, "rb")
        self._records_map = self._mmap(self._records_file)
        self._uas_map = self._mmap(self._uas_file)
        self._decoded: Dict[str, array] = {}
        self._ua_texts: Dict[int, str] = {}

    @staticmethod
    def _mmap(handle) -> Optional[mmap.mmap]:
        try:
            return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:
            return None  # zero-length file; accessors slice b"" instead

    def close(self) -> None:
        """Release the mapped files (safe to call more than once)."""
        for attr in ("_records_map", "_uas_map"):
            mapped = getattr(self, attr, None)
            if mapped is not None:
                mapped.close()
                setattr(self, attr, None)
        for attr in ("_records_file", "_uas_file"):
            handle = getattr(self, attr, None)
            if handle is not None:
                handle.close()
                setattr(self, attr, None)

    def __enter__(self) -> "LogShardReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def column(self, name: str) -> array:
        """One decoded column (memoized per reader)."""
        decoded = self._decoded.get(name)
        if decoded is None:
            buffer = self._records_map if self._records_map is not None else b""
            offset = 0
            for col_name, code in _COLUMNS:
                width = _COLUMN_WIDTHS[code] * self.n_records
                if col_name == name:
                    decoded = le_bytes_to_array(
                        code, bytes(buffer[offset:offset + width])
                    )
                    break
                offset += width
            else:
                raise KeyError(name)
            self._decoded[name] = decoded
        return decoded

    def ua_text(self, ref: int) -> str:
        """User-Agent string *ref* (memoized per reader)."""
        text = self._ua_texts.get(ref)
        if text is None:
            offset, length = self._ua_offsets[ref]
            buffer = self._uas_map if self._uas_map is not None else b""
            try:
                text = bytes(buffer[offset:offset + length]).decode("utf-8")
            except UnicodeDecodeError:
                raise LogStoreError(
                    f"corrupt UA table at ref {ref}: {self.directory / _UAS}"
                ) from None
            self._ua_texts[ref] = text
        return text

    def records(self) -> Iterator[LogRecord]:
        """Decoded rows in stored (global-seq ascending) order."""
        cols = {name: self.column(name) for name, _ in _COLUMNS}
        for i in range(self.n_records):
            yield LogRecord(
                seq=cols["seq"][i],
                ticks=cols["ticks"][i],
                month=cols["month"][i],
                status=cols["status"][i],
                host=self.hosts[cols["host_ref"][i]],
                path=self.paths[cols["path_ref"][i]],
                user_agent=self.ua_text(cols["ua_ref"][i]),
                agent=self.agents[cols["agent_ref"][i]],
                outcome=self.outcomes[cols["outcome_ref"][i]],
                category=self.categories[cols["category_ref"][i]],
                robots_fetch=bool(cols["flags"][i] & FLAG_ROBOTS_FETCH),
            )

    def verify(self) -> Dict[str, int]:
        """Integrity re-check beyond open-time validation.

        Recomputes every UA digest against ``uas.sha`` and checks the
        seq column is strictly ascending (the partition invariant).
        Raises :class:`LogStoreError` on the first mismatch; returns
        ``{"records": n, "uas": n}`` when clean.
        """
        if len(self.ua_digests) != self.n_uas:
            raise LogStoreError(
                f"UA digest table holds {len(self.ua_digests)} rows, manifest "
                f"says {self.n_uas}: {self.directory / _UA_SHA}"
            )
        for ref in range(self.n_uas):
            blob = self.ua_text(ref).encode("utf-8")
            if hashlib.sha256(blob).hexdigest() != self.ua_digests[ref]:
                raise LogStoreError(
                    f"UA table digest mismatch at ref {ref}: "
                    f"{self.directory / _UAS}"
                )
        seqs = self.column("seq")
        for i in range(1, self.n_records):
            if seqs[i] <= seqs[i - 1]:
                raise LogStoreError(
                    f"record sequence not ascending at row {i}: "
                    f"{self.directory / _RECORDS}"
                )
        return {"records": self.n_records, "uas": self.n_uas}


class LogStore:
    """A validated set of log shards rooted at one directory."""

    def __init__(self, root: Union[str, Path], readers: List[LogShardReader]):
        self.root = Path(root)
        self.shards = readers

    @classmethod
    def open(cls, root: Union[str, Path]) -> "LogStore":
        """Open and cross-validate every shard under *root*."""
        root = Path(root)
        shard_dirs = sorted(
            path for path in root.glob("shard-*") if path.is_dir()
        )
        if not shard_dirs:
            raise LogStoreError(f"not a log store (no shards): {root}")
        readers: List[LogShardReader] = []
        try:
            for directory in shard_dirs:
                readers.append(LogShardReader(directory))
            n_shards = readers[0].n_shards
            digest = readers[0].config_digest
            ids = sorted(reader.shard_id for reader in readers)
            if ids != list(range(n_shards)):
                raise LogStoreError(
                    f"incomplete log store (shards {ids}, expected "
                    f"0..{n_shards - 1}): {root}"
                )
            for reader in readers:
                if reader.n_shards != n_shards:
                    raise LogStoreError(
                        f"inconsistent shard geometry ({reader.n_shards} vs "
                        f"{n_shards}): {reader.directory}"
                    )
                if reader.config_digest != digest:
                    raise LogStoreError(
                        f"mixed config digests in log store: {reader.directory}"
                    )
        except Exception:
            for reader in readers:
                reader.close()
            raise
        readers.sort(key=lambda reader: reader.shard_id)
        return cls(root, readers)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_records(self) -> int:
        return sum(reader.n_records for reader in self.shards)

    @property
    def config_digest(self) -> str:
        return self.shards[0].config_digest if self.shards else ""

    def records(self) -> Iterator[LogRecord]:
        """All rows across shards, merged into global-seq order."""
        import heapq

        return heapq.merge(
            *(reader.records() for reader in self.shards),
            key=lambda record: record.seq,
        )

    def verify(self) -> Dict[str, int]:
        """Deep-verify every shard; totals when clean."""
        totals = {"shards": len(self.shards), "records": 0, "uas": 0}
        for reader in self.shards:
            counts = reader.verify()
            totals["records"] += counts["records"]
            totals["uas"] += counts["uas"]
        return totals

    def close(self) -> None:
        for reader in self.shards:
            reader.close()

    def __enter__(self) -> "LogStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
