"""Micro-benchmarks of the robots.txt engine itself.

These run as proper pytest-benchmark loops (many iterations), providing
throughput numbers for the building blocks every experiment leans on:
parsing, policy queries, and restriction classification.
"""

from repro.core.classify import classify
from repro.core.parser import parse
from repro.core.policy import RobotsPolicy

REPRESENTATIVE = (
    "# typical production robots.txt\n"
    "User-agent: *\n"
    "Disallow: /admin/\n"
    "Disallow: /cgi-bin/\n"
    "Allow: /admin/public/\n"
    "\n"
    "User-agent: GPTBot\n"
    "User-agent: ChatGPT-User\n"
    "User-agent: CCBot\n"
    "Disallow: /\n"
    "\n"
    "User-agent: AhrefsBot\n"
    "Crawl-delay: 5\n"
    "Disallow: /\n"
    "\n"
    "Sitemap: https://example.com/sitemap.xml\n"
)


def test_parse_throughput(benchmark):
    parsed = benchmark(parse, REPRESENTATIVE)
    assert len(parsed.groups) == 3


def test_policy_query_throughput(benchmark):
    policy = RobotsPolicy(REPRESENTATIVE)
    allowed = benchmark(policy.is_allowed, "GPTBot", "/images/art.png")
    assert allowed is False


def test_classify_throughput(benchmark):
    policy = RobotsPolicy(REPRESENTATIVE)
    result = benchmark(classify, policy, "GPTBot")
    assert result.level.name == "FULL"


def test_wildcard_path_matching_throughput(benchmark):
    from repro.core.matcher import pattern_matches

    hit = benchmark(
        pattern_matches, "/fish*heads/*.php$", "/fish-and-heads/deep/file.php"
    )
    assert hit is True
