"""Traffic composition: the bot-vs-human load the paper's intro cites.

Section 1 motivates the study with industry measurements -- roughly
50-70% of website traffic is automated (Akamai, Imperva), and AI
crawlers are "effectively producing DDoS attacks on smaller websites".
This module simulates a site's traffic mix so that context is
reproducible too: human sessions with browser user agents, the AI
crawler fleet re-crawling on its own schedules (Bytespider famously
aggressively), plus classic SEO crawlers.  The analysis reads the
site's access log, exactly as an operator would.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..net.accesslog import AccessLog
from ..net.http import Headers, Request
from ..net.server import Website
from ..net.transport import Network
from ..util import seeded_rng
from ..crawlers.engine import Crawler
from ..crawlers.profiles import CrawlerProfile, RobotsBehavior

__all__ = ["TrafficMix", "TrafficReport", "simulate_traffic", "analyze_traffic"]

_BROWSER_UAS = [
    "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/129.0.0.0 Safari/537.36",
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/128.0.0.0 Safari/537.36",
    "Mozilla/5.0 (Macintosh; Intel Mac OS X 14_5) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/17.5 Safari/605.1.15",
    "Mozilla/5.0 (Windows NT 10.0; rv:130.0) Gecko/20100101 Firefox/130.0",
]

#: (token, crawls per simulated day) -- Bytespider's aggressiveness
#: reflects the DDoS-like reports [25, 26]; search crawlers re-visit
#: moderately; AI data crawlers sweep less often but deeply.
_CRAWLER_SCHEDULE: List[Tuple[str, RobotsBehavior, int]] = [
    ("Bytespider", RobotsBehavior.FETCH_AND_IGNORE, 14),
    ("GPTBot", RobotsBehavior.FETCH_AND_OBEY, 3),
    ("CCBot", RobotsBehavior.FETCH_AND_OBEY, 2),
    ("ClaudeBot", RobotsBehavior.FETCH_AND_OBEY, 3),
    ("Amazonbot", RobotsBehavior.FETCH_AND_OBEY, 2),
    ("Googlebot", RobotsBehavior.FETCH_AND_OBEY, 5),
    ("Bingbot", RobotsBehavior.FETCH_AND_OBEY, 3),
    ("AhrefsBot", RobotsBehavior.FETCH_AND_OBEY, 4),
    ("SemrushBot", RobotsBehavior.FETCH_AND_OBEY, 3),
]


@dataclass
class TrafficMix:
    """Parameters of one simulated traffic day.

    Attributes:
        human_sessions: Number of human visits.
        pages_per_session: Inclusive range of pageviews per human.
        crawler_page_budget: Max pages per crawler sweep.
    """

    human_sessions: int = 60
    pages_per_session: Tuple[int, int] = (1, 4)
    crawler_page_budget: int = 10


@dataclass
class TrafficReport:
    """Log-derived traffic composition.

    Attributes:
        total_requests: All logged requests.
        bot_requests: Requests from non-browser user agents.
        per_agent: Request counts by primary product token.
    """

    total_requests: int = 0
    bot_requests: int = 0
    per_agent: Dict[str, int] = field(default_factory=dict)

    @property
    def bot_share(self) -> float:
        """Bot fraction of all requests, in [0, 1]."""
        if not self.total_requests:
            return 0.0
        return self.bot_requests / self.total_requests

    def top_talkers(self, n: int = 5) -> List[Tuple[str, int]]:
        """The *n* most request-heavy agents."""
        ranked = sorted(self.per_agent.items(), key=lambda kv: -kv[1])
        return ranked[:n]


def simulate_traffic(
    site: Website,
    mix: Optional[TrafficMix] = None,
    days: int = 1,
    seed: int = 42,
) -> None:
    """Drive *days* of mixed traffic at *site* (log fills as a side effect)."""
    mix = mix or TrafficMix()
    rng = seeded_rng(seed, "traffic", site.host)
    network = Network()
    network.register(site)

    crawlers = [
        Crawler(
            CrawlerProfile(token=token, user_agent=f"{token}/1.0", behavior=behavior),
            network,
        )
        for token, behavior, _ in _CRAWLER_SCHEDULE
    ]

    paths = site.paths() or ["/"]
    for day in range(days):
        network.now = float(day * 86_400)
        network.month = day // 30
        for _ in range(mix.human_sessions):
            user_agent = rng.choice(_BROWSER_UAS)
            for _ in range(rng.randint(*mix.pages_per_session)):
                network.request(
                    Request(
                        host=site.host,
                        path=rng.choice(paths),
                        headers=Headers({"User-Agent": user_agent}),
                        client_ip=f"203.0.113.{rng.randint(1, 254)}",
                    )
                )
        for crawler, (_, _, sweeps) in zip(crawlers, _CRAWLER_SCHEDULE):
            for _ in range(sweeps):
                crawler.crawl(site.host, max_pages=mix.crawler_page_budget)


def analyze_traffic(log: AccessLog) -> TrafficReport:
    """Classify every logged request as human or bot from its UA."""
    from ..agents.useragent import looks_like_browser, primary_product

    report = TrafficReport()
    for entry in log:
        report.total_requests += 1
        token = primary_product(entry.user_agent)
        report.per_agent[token] = report.per_agent.get(token, 0) + 1
        if not looks_like_browser(entry.user_agent):
            report.bot_requests += 1
    return report
