"""Tranco-style popularity rankings with month-to-month churn.

The paper's "Stable Top 100K" filter (Section 3.1) exists because top
lists churn [96]: a site in this month's top 100k may drop out next
month.  This module generates monthly rankings with realistic churn so
that the stable-set filter actually filters, then exposes the same
stable-set operation the paper performs.

Popularity is modeled as a latent Zipf-like base score per site plus
monthly log-normal noise; ranking a month means sorting by that month's
noisy score.  Churn is concentrated near rank boundaries, exactly as in
real lists.
"""

from __future__ import annotations

import math
import random

from ..util import seeded_rng
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from .domains import domain_name

__all__ = ["RankingModel", "stable_sites"]


@dataclass
class RankingModel:
    """Generator of monthly top-``list_size`` rankings.

    Args:
        universe_size: Total sites in the modeled web (must exceed
            ``list_size`` so churn has somewhere to come from).
        list_size: Length of each monthly list (the paper's 100k,
            scaled).
        noise_sigma: Std-dev of the per-month log-score noise; larger
            values produce more churn.
        seed: RNG seed.
    """

    universe_size: int
    list_size: int
    noise_sigma: float = 0.12
    seed: int = 42

    def __post_init__(self) -> None:
        if self.list_size >= self.universe_size:
            raise ValueError("universe must be larger than the ranked list")
        # Latent log-popularity: Zipf-ish with a small per-site jitter so
        # neighboring ranks are genuinely contested.
        rng = random.Random(self.seed)
        self._base_log_score: List[float] = [
            -math.log(rank + 1) + rng.gauss(0.0, 0.02)
            for rank in range(self.universe_size)
        ]

    def domain(self, site_index: int) -> str:
        """Domain of site *site_index* in the universe."""
        return domain_name(site_index)

    def monthly_ranking(self, month: int) -> List[str]:
        """The top-``list_size`` domains for *month*, best first."""
        rng = seeded_rng(self.seed, "month", month)
        noisy = [
            (self._base_log_score[i] + rng.gauss(0.0, self.noise_sigma), i)
            for i in range(self.universe_size)
        ]
        noisy.sort(reverse=True)
        return [domain_name(i) for _, i in noisy[: self.list_size]]

    def monthly_rankings(self, months: Sequence[int]) -> Dict[int, List[str]]:
        """Rankings for each month in *months*."""
        return {month: self.monthly_ranking(month) for month in months}


def stable_sites(
    rankings: Dict[int, List[str]], cutoff: int
) -> List[str]:
    """Domains within the top *cutoff* in **every** month's ranking.

    This is the paper's stable-set operation: the Stable Top 100K is
    ``stable_sites(rankings, 100_000)``, the Stable Top 5K is
    ``stable_sites(rankings, 5_000)``.  Order follows the first month's
    ranking.
    """
    if not rankings:
        return []
    months = sorted(rankings)
    surviving: Set[str] = set(rankings[months[0]][:cutoff])
    for month in months[1:]:
        surviving &= set(rankings[month][:cutoff])
    first = rankings[months[0]]
    return [d for d in first[:cutoff] if d in surviving]
