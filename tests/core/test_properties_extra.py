"""Additional property-based tests: ai.txt, differ, and stats invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aitxt import AiTxtPolicy, MediaCategory, build_aitxt
from repro.core.diff import ChangeKind, classify_change, diff_robots
from repro.core.serialize import RobotsBuilder, add_disallow_group

_ai_agents = ["GPTBot", "CCBot", "anthropic-ai"]

_category_maps = st.dictionaries(
    st.sampled_from(list(MediaCategory)), st.booleans(), max_size=5
)


class TestAiTxtProperties:
    @given(allow=_category_maps, default=st.booleans())
    @settings(max_examples=60)
    def test_build_parse_roundtrip_per_category(self, allow, default):
        policy = AiTxtPolicy(build_aitxt(allow, default_allow=default))
        categories = policy.allowed_categories()
        for category in MediaCategory:
            expected = allow.get(category, default)
            assert categories[category] is expected, category

    @given(default=st.booleans())
    @settings(max_examples=20)
    def test_uncategorized_paths_follow_default(self, default):
        policy = AiTxtPolicy(build_aitxt({}, default_allow=default))
        assert policy.may_train("/about") is default


@st.composite
def simple_robots(draw):
    builder = RobotsBuilder()
    builder.group("*").disallow(draw(st.sampled_from(["/admin/", "/tmp/", "/x"])))
    if draw(st.booleans()):
        agent = draw(st.sampled_from(_ai_agents))
        builder.group(agent).disallow(draw(st.sampled_from(["/", "/img/"])))
    return builder.build()


class TestDiffProperties:
    @given(text=simple_robots())
    @settings(max_examples=60)
    def test_self_diff_is_empty(self, text):
        assert diff_robots(text, text).is_empty
        assert classify_change(text, text, _ai_agents) is ChangeKind.NO_CHANGE

    @given(text=simple_robots(), agent=st.sampled_from(_ai_agents))
    @settings(max_examples=60)
    def test_add_and_remove_are_symmetric(self, text, agent):
        from repro.core.serialize import remove_agent_rules

        base = remove_agent_rules(text, [agent])
        tightened = add_disallow_group(base, [agent])
        forward = classify_change(base, tightened, _ai_agents)
        backward = classify_change(tightened, base, _ai_agents)
        assert forward is ChangeKind.AI_RESTRICTION_ADDED
        assert backward is ChangeKind.AI_RESTRICTION_REMOVED

    @given(text=simple_robots())
    @settings(max_examples=40)
    def test_diff_against_none_reports_additions_only(self, text):
        diff = diff_robots(None, text)
        assert diff.agents_removed == []
        assert not diff.loosened_agents()
