"""In-memory websites: the origin servers of the simulated web.

A :class:`Website` is a virtual-host handler: it owns a set of pages, an
optional robots.txt, optional host-level redirects, and an access log.
Reverse proxies (:mod:`repro.proxy`) wrap a website and interpose on its
:meth:`Website.handle`; the :class:`~repro.net.transport.Network` routes
requests to whichever handler is registered for the hostname.

Pages are real HTML with real anchor tags, because the crawl engine
discovers links by parsing the returned documents -- the same way the
paper's testbed sites "contain basic text, images, and links to other
pages" (Section 5.1).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..obs.metrics import metrics_enabled, shared_registry
from .accesslog import AccessLog, LogEntry, clock_ticks, record_sim_request
from .http import Headers, Request, Response
from .transport import current_month

__all__ = ["Page", "Website", "extract_links", "render_page"]

_HREF_RE = re.compile(r'href="([^"]+)"')

#: Lazily-bound counter handles shared by every Website in the process
#: (robots.txt is the one server path hot enough to meter per request).
_ROBOTS_COUNTERS: dict = {}


def _count_robots_serve(status: int) -> None:
    counter = _ROBOTS_COUNTERS.get(status)
    if counter is None:
        counter = shared_registry().counter("server.robots_serves", status=status)
        _ROBOTS_COUNTERS[status] = counter
    counter.inc()


def render_page(
    title: str,
    paragraphs: Iterable[str] = (),
    links: Iterable[str] = (),
    images: Iterable[str] = (),
    meta_robots: Optional[str] = None,
) -> str:
    """Render a simple HTML page with the given links and images.

    Args:
        meta_robots: Content for a ``<meta name="robots">`` tag, e.g.
            ``"noai, noimageai"`` for the DeviantArt-style opt-out tags.
    """
    head = [f"<title>{title}</title>"]
    if meta_robots:
        head.append(f'<meta name="robots" content="{meta_robots}">')
    body = [f"<h1>{title}</h1>"]
    for text in paragraphs:
        body.append(f"<p>{text}</p>")
    for src in images:
        body.append(f'<img src="{src}" alt="">')
    for href in links:
        body.append(f'<a href="{href}">{href}</a>')
    return (
        "<!DOCTYPE html>\n<html>\n<head>\n"
        + "\n".join(head)
        + "\n</head>\n<body>\n"
        + "\n".join(body)
        + "\n</body>\n</html>\n"
    )


def extract_links(html: str) -> List[str]:
    """All ``href`` targets in *html*, in document order."""
    return _HREF_RE.findall(html)


@dataclass
class Page:
    """One page of a website.

    Attributes:
        body: HTML content.
        content_type: MIME type served.
        status: Status code served for this path (normally 200).
    """

    body: str
    content_type: str = "text/html; charset=utf-8"
    status: int = 200


class Website:
    """An origin web server for one hostname.

    >>> site = Website("example.com")
    >>> site.add_page("/", render_page("Home", links=["/about"]))
    >>> site.set_robots_txt("User-agent: *\\nDisallow: /private/")
    >>> site.handle(Request(host="example.com", path="/")).status
    200
    """

    def __init__(self, host: str):
        self.host = host
        self.pages: Dict[str, Page] = {}
        self._robots_txt: Optional[str] = None
        self.access_log = AccessLog()
        #: When set, every request is answered with a 301 to the same
        #: path on this host (e.g. apex -> www).  Common Crawl's crawler
        #: does not follow these (Appendix B.1).
        self.redirect_to_host: Optional[str] = None
        #: Clock for log entries; tests and drivers may set it directly.
        self.now: float = 0.0
        #: Site category (stamped by :meth:`SimSite.build_origin`); the
        #: ``site_category`` label on the ``sim.requests`` series.
        self.category: str = ""

    # -- content management -------------------------------------------------

    @classmethod
    def from_directory(cls, root, host: str = "localhost") -> "Website":
        """Build a website from files under *root*.

        Each file becomes a page at its relative path; ``index.html``
        files also serve their directory path; a ``robots.txt`` at the
        root is installed as the robots policy.  Content types are
        guessed from extensions.
        """
        import mimetypes
        import pathlib

        root = pathlib.Path(root)
        site = cls(host)
        for path in sorted(root.rglob("*")):
            if not path.is_file():
                continue
            rel = "/" + path.relative_to(root).as_posix()
            text = path.read_text(encoding="utf-8", errors="replace")
            if rel == "/robots.txt":
                site.set_robots_txt(text)
                continue
            content_type = (
                mimetypes.guess_type(path.name)[0] or "application/octet-stream"
            )
            if content_type.startswith("text/") or content_type.endswith(("xml", "json")):
                content_type += "; charset=utf-8"
            site.add_page(rel, text, content_type=content_type)
            if path.name == "index.html":
                directory = rel[: -len("index.html")] or "/"
                site.add_page(directory.rstrip("/") or "/", text)
        return site

    def add_page(self, path: str, body: str, content_type: str = "text/html; charset=utf-8") -> None:
        """Register a page at *path*."""
        if not path.startswith("/"):
            raise ValueError(f"page path must start with '/': {path!r}")
        self.pages[path] = Page(body=body, content_type=content_type)

    def set_robots_txt(self, text: Optional[str]) -> None:
        """Set (or remove, with None) the robots.txt file."""
        self._robots_txt = text

    @property
    def robots_txt(self) -> Optional[str]:
        """Current robots.txt content, or None when absent."""
        return self._robots_txt

    def paths(self) -> List[str]:
        """All registered page paths, sorted."""
        return sorted(self.pages)

    # -- request handling ---------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Serve one request and log it."""
        response = self._respond(request)
        month = current_month()
        if metrics_enabled() and request.path_only == "/robots.txt":
            _count_robots_serve(response.status)
        record_sim_request(
            request.user_agent,
            "served" if response.status < 400 else "not_found",
            self.category,
            month,
            host=self.host,
            path=request.path,
            status=response.status,
            ticks=clock_ticks(self.now),
        )
        self.access_log.append(
            LogEntry(
                timestamp=self.now,
                client_ip=request.client_ip,
                method=request.method,
                path=request.path,
                status=response.status,
                body_bytes=response.content_length,
                user_agent=request.user_agent,
                host=self.host,
                month=month,
            )
        )
        return response

    @staticmethod
    def _etag_for(text: str) -> str:
        import hashlib

        return '"' + hashlib.sha1(text.encode("utf-8")).hexdigest()[:16] + '"'

    def _respond(self, request: Request) -> Response:
        if self.redirect_to_host and self.redirect_to_host != request.host:
            location = f"{request.scheme}://{self.redirect_to_host}{request.path}"
            return Response(
                status=301,
                headers=Headers({"Location": location}),
                body=b"",
                url=request.url,
            )
        path = request.path_only
        if path == "/robots.txt":
            if self._robots_txt is None:
                return Response(status=404, body="not found", url=request.url)
            etag = self._etag_for(self._robots_txt)
            # Conditional revalidation: crawlers that cached robots.txt
            # can cheaply confirm freshness with If-None-Match.
            if request.headers.get("If-None-Match") == etag:
                return Response(
                    status=304,
                    body=b"",
                    headers=Headers({"ETag": etag}),
                    url=request.url,
                )
            return Response(
                status=200,
                body=self._robots_txt,
                headers=Headers(
                    {"Content-Type": "text/plain; charset=utf-8", "ETag": etag}
                ),
                url=request.url,
            )
        page = self.pages.get(path)
        if page is None:
            return Response(status=404, body="<h1>404 Not Found</h1>", url=request.url)
        body = b"" if request.method == "HEAD" else page.body
        return Response(
            status=page.status,
            body=body,
            headers=Headers({"Content-Type": page.content_type}),
            url=request.url,
        )
