"""Micro-benchmark: compiled-rule matching vs per-query normalization.

``pattern_matches`` percent-normalizes its pattern on *every* query;
compiled patterns (:func:`repro.core.matcher.compile_pattern`) pay that
cost once.  This bench runs both engines over the Appendix B.2
edge-case corpus (wildcards, ``$`` anchors, percent-encodings, metachar
literals), asserts every verdict is identical, and requires the
compiled engine to win on wall clock.
"""

import time

from conftest import save_artifact

from repro.core.matcher import compile_pattern, normalize_path, pattern_matches
from repro.report.experiments import ExperimentResult
from repro.report.tables import render_table

#: Appendix B.2 edge-case rule patterns.
PATTERNS = [
    "/",
    "/fish",
    "/fish/",
    "/fish*",
    "/fish*.php",
    "/*.php",
    "/*.php$",
    "/fish*.php$",
    "/a%3cd.html",
    "/a%3Cd.html",
    "/a<d.html",
    "/p%2Bq",
    "/b/*/c",
    "*",
    "*/x",
    "/*/*/*/deep",
    "/$",
    "/x$",
    "/x$y",
    "/%e3%81%82",
    "/foo?bar",
    "/**",
    "/a**b",
]

#: Request paths exercising every pattern's edge.
PATHS = [
    "/",
    "/fish",
    "/fish.html",
    "/fish/salmon.html",
    "/fishheads/catfish.php?id=2",
    "/catfish",
    "/filename.php",
    "/filename.php/",
    "/filename.php?parameters",
    "/a%3cd.html",
    "/a<d.html",
    "/p+q",
    "/b/x/y/c",
    "/x",
    "/x$y",
    "/%E3%81%82",
    "/foo?bar=baz",
    "/a/b/c/deep",
    "/ab",
]

ROUNDS = 40


def _run_uncached() -> list:
    verdicts = []
    for pattern in PATTERNS:
        for path in PATHS:
            verdicts.append(pattern_matches(pattern, path))
    return verdicts


def _run_compiled(compiled, normalized_paths) -> list:
    verdicts = []
    for pattern in compiled:
        for path in normalized_paths:
            verdicts.append(pattern.matches(path))
    return verdicts


def test_compiled_matching_beats_uncached(artifact_dir):
    # Compile once, normalize each query path once -- the work a
    # CompiledRobots policy amortizes across queries.
    compiled = [compile_pattern(p) for p in PATTERNS]
    assert all(c is not None for c in compiled)
    normalized_paths = [normalize_path(p) for p in PATHS]

    # Verdict equality on every (pattern, path) pair comes first: a
    # speedup that changes any decision would be a bug, not a win.
    assert _run_compiled(compiled, normalized_paths) == _run_uncached()

    start = time.perf_counter()
    for _ in range(ROUNDS):
        _run_uncached()
    uncached_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(ROUNDS):
        compiled_round = [compile_pattern(p) for p in PATTERNS]
        paths_round = [normalize_path(p) for p in PATHS]
        _run_compiled(compiled_round, paths_round)
    compiled_seconds = time.perf_counter() - start

    n_queries = ROUNDS * len(PATTERNS) * len(PATHS)
    speedup = uncached_seconds / max(compiled_seconds, 1e-12)
    text = render_table(
        ["measurement", "value"],
        [
            ("edge-case patterns", len(PATTERNS)),
            ("query paths", len(PATHS)),
            ("total queries", n_queries),
            ("per-query normalization (s)", round(uncached_seconds, 4)),
            ("compile-once matching (s)", round(compiled_seconds, 4)),
            ("speedup (x)", round(speedup, 2)),
        ],
        title="Compiled-rule matching vs pattern_matches (Appendix B.2 corpus)",
    )
    result = ExperimentResult(
        "core_matcher",
        "Compiled matcher micro-benchmark",
        text,
        {
            "uncached_seconds": uncached_seconds,
            "compiled_seconds": compiled_seconds,
            "speedup": speedup,
        },
    )
    save_artifact(artifact_dir, result)
    print(result.text)

    # Compiled matching must beat per-query normalization even while
    # paying its own compile + path-normalization cost inside the loop.
    assert speedup > 1.5
