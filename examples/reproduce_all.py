"""Run every experiment and write the results to results/.

Run with::

    python examples/reproduce_all.py [--fast] [--workers N]

Executes the full battery through the dependency-aware orchestrator
(:mod:`repro.report.orchestrator`): the simulated world is built once
in the content-addressed world store and shared -- frozen -- by every
runner, with copy-on-write views isolating the runners that mutate
site or network state.  ``--workers N`` fans independent experiments
out across a worker pool; results are bit-identical for any worker
count.  Writes ``results/<experiment>.txt`` per experiment, a combined
``results/summary.txt`` with every headline metric (the raw material
for EXPERIMENTS.md), a machine-readable ``results/TIMINGS.json`` with
the span-derived wall-clock trajectory, and the run's telemetry:
``results/METRICS.json`` (every counter/gauge/histogram, render with
``repro stats``), ``results/SERIES.json`` (the simulated-month time
series behind ``repro dashboard``), plus ``results/TRACE.jsonl`` (the
hierarchical span records for world build, snapshot crawls, and each
experiment).
"""

from __future__ import annotations

import argparse
import gc
import json
import pathlib
import time

from repro.obs.trace import set_tracing_enabled, shared_tracer, write_trace
from repro.report.experiments import build_longitudinal_bundle
from repro.report.orchestrator import run_all
from repro.web import PopulationConfig
from repro.web.worldstore import shared_world_store

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="use a smaller world for a quick run")
    parser.add_argument("--workers", type=int, default=4,
                        help="experiment worker pool size (default 4; "
                             "any count yields byte-identical results)")
    args = parser.parse_args()

    config = (
        PopulationConfig(universe_size=1500, list_size=1000, top5k_cut=120,
                         audit_size=400)
        if args.fast
        else PopulationConfig()
    )
    RESULTS.mkdir(exist_ok=True)
    summary_lines = [
        f"experiment scale: {config.list_size}-site lists "
        f"(1:{round(100_000 / config.list_size)} of the paper's setting)",
        "",
    ]

    print("building shared world (longitudinal bundle + audit population)...")
    # Trace the world build too (run_all force-enables tracing only for
    # its own duration, and the bundle is built here, before it).
    set_tracing_enabled(True)
    store = shared_world_store()
    world_start = time.perf_counter()
    build_longitudinal_bundle(config, workers=args.workers, store=store)
    world_seconds = time.perf_counter() - world_start
    # The stored world is frozen and pinned for the life of the run, so
    # exclude it from cycle tracing: without this, every collection (and
    # scipy's import, which triggers many) walks millions of dead-weight
    # substrate objects.
    gc.collect()
    gc.freeze()
    report = run_all(config, workers=args.workers, store=store,
                     collect_workers=args.workers, telemetry_dir=RESULTS)
    print(f"world ready in {world_seconds:.1f}s "
          f"[mode={report.mode}, workers={report.workers}]")

    timings = report.to_json()["experiments"]
    for entry, result in zip(timings, report.results):
        (RESULTS / f"{result.experiment_id}.txt").write_text(result.text + "\n")
        print(f"  {entry['key']:10s} done in {entry['seconds']:5.1f}s "
              f"-> results/{result.experiment_id}.txt")
        summary_lines.append(f"[{result.experiment_id}] {result.title}")
        for metric, value in sorted(result.metrics.items()):
            summary_lines.append(f"    {metric} = {value:.4f}")
        summary_lines.append("")

    (RESULTS / "summary.txt").write_text("\n".join(summary_lines) + "\n")
    (RESULTS / "TIMINGS.json").write_text(
        json.dumps(report.to_timings(), indent=2) + "\n"
    )
    # run_all exported the spans it scoped; widen TRACE.jsonl to the
    # whole process so the pre-run world build's snapshot-crawl spans
    # are part of the artifact too.
    full_trace = shared_tracer().records_since(0)
    write_trace(RESULTS / "TRACE.jsonl", full_trace)
    print(f"\nwrote {RESULTS / 'summary.txt'}")
    print(f"wrote {RESULTS / 'TIMINGS.json'} "
          f"(total {report.total_seconds:.1f}s)")
    print(f"wrote {RESULTS / 'METRICS.json'} (render with `repro stats`)")
    print(f"wrote {RESULTS / 'SERIES.json'} (render with `repro dashboard`)")
    print(f"wrote {RESULTS / 'TRACE.jsonl'} ({len(full_trace)} spans)")


if __name__ == "__main__":
    main()
