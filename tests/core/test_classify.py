"""Tests for repro.core.classify (the paper's restriction categories)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.classify import (
    RestrictionLevel,
    classify,
    classify_rules,
    explicitly_allows,
    fully_disallows_any,
)
from repro.core.matcher import Rule


class TestRestrictionLevels:
    def test_no_robots(self):
        assert classify(None, "GPTBot").level is RestrictionLevel.NO_ROBOTS

    def test_no_restrictions_when_unnamed(self):
        result = classify("User-agent: CCBot\nDisallow: /", "GPTBot")
        assert result.level is RestrictionLevel.NO_RESTRICTIONS
        assert not result.explicit

    def test_fully_disallowed(self):
        result = classify("User-agent: GPTBot\nDisallow: /", "GPTBot")
        assert result.level is RestrictionLevel.FULL
        assert result.explicit

    def test_partially_disallowed(self):
        result = classify("User-agent: GPTBot\nDisallow: /images/", "GPTBot")
        assert result.level is RestrictionLevel.PARTIAL

    def test_explicit_group_with_no_disallow(self):
        result = classify("User-agent: GPTBot\nAllow: /", "GPTBot")
        assert result.level is RestrictionLevel.NO_RESTRICTIONS
        assert result.explicit
        assert result.explicit_allow

    def test_empty_disallow_is_no_restriction(self):
        result = classify("User-agent: GPTBot\nDisallow:", "GPTBot")
        assert result.level is RestrictionLevel.NO_RESTRICTIONS

    def test_wildcard_not_counted_by_default(self):
        result = classify("User-agent: *\nDisallow: /", "GPTBot")
        assert result.level is RestrictionLevel.NO_RESTRICTIONS

    def test_wildcard_counted_when_not_requiring_explicit(self):
        result = classify(
            "User-agent: *\nDisallow: /", "GPTBot", require_explicit=False
        )
        assert result.level is RestrictionLevel.FULL

    def test_disallow_all_with_carveout_is_partial(self):
        text = "User-agent: GPTBot\nDisallow: /\nAllow: /public/"
        assert classify(text, "GPTBot").level is RestrictionLevel.PARTIAL

    def test_allow_root_tie_neutralizes_disallow_root(self):
        text = "User-agent: GPTBot\nDisallow: /\nAllow: /"
        assert classify(text, "GPTBot").level is RestrictionLevel.NO_RESTRICTIONS

    def test_wildcard_star_disallow_pattern_is_full(self):
        text = "User-agent: GPTBot\nDisallow: /*"
        assert classify(text, "GPTBot").level is RestrictionLevel.FULL

    def test_levels_ordered(self):
        assert (
            RestrictionLevel.NO_ROBOTS
            < RestrictionLevel.NO_RESTRICTIONS
            < RestrictionLevel.PARTIAL
            < RestrictionLevel.FULL
        )

    def test_disallows_property(self):
        assert RestrictionLevel.FULL.disallows
        assert RestrictionLevel.PARTIAL.disallows
        assert not RestrictionLevel.NO_RESTRICTIONS.disallows
        assert not RestrictionLevel.NO_ROBOTS.disallows


class TestClassifyRules:
    def test_empty_rules(self):
        assert classify_rules([]) is RestrictionLevel.NO_RESTRICTIONS

    def test_blanket_disallow(self):
        assert classify_rules([Rule(False, "/")]) is RestrictionLevel.FULL

    def test_path_disallow(self):
        assert classify_rules([Rule(False, "/x/")]) is RestrictionLevel.PARTIAL

    def test_allow_only(self):
        assert classify_rules([Rule(True, "/")]) is RestrictionLevel.NO_RESTRICTIONS

    def test_longer_allow_breaks_blanket(self):
        rules = [Rule(False, "/"), Rule(True, "/ok/")]
        assert classify_rules(rules) is RestrictionLevel.PARTIAL

    def test_query_only_disallow_detected_as_partial(self):
        assert classify_rules([Rule(False, "/*?*")]) is RestrictionLevel.PARTIAL


class TestExplicitlyAllows:
    def test_explicit_allow_group(self):
        assert explicitly_allows("User-agent: GPTBot\nAllow: /", "GPTBot")

    def test_wildcard_allow_not_explicit(self):
        assert not explicitly_allows("User-agent: *\nAllow: /", "GPTBot")

    def test_allow_with_disallow_elsewhere_not_counted(self):
        text = "User-agent: GPTBot\nAllow: /\nDisallow: /private/"
        assert not explicitly_allows(text, "GPTBot")

    def test_allow_subpath_only_not_counted(self):
        assert not explicitly_allows("User-agent: GPTBot\nAllow: /blog/", "GPTBot")

    def test_disallow_only_group_not_allow(self):
        assert not explicitly_allows("User-agent: GPTBot\nDisallow: /", "GPTBot")


class TestFullyDisallowsAny:
    AGENTS = ["GPTBot", "CCBot", "anthropic-ai"]

    def test_none_robots(self):
        assert not fully_disallows_any(None, self.AGENTS)

    def test_one_agent_blocked(self):
        text = "User-agent: CCBot\nDisallow: /"
        assert fully_disallows_any(text, self.AGENTS)

    def test_partial_not_counted(self):
        text = "User-agent: CCBot\nDisallow: /img/"
        assert not fully_disallows_any(text, self.AGENTS)

    def test_wildcard_not_counted_by_default(self):
        assert not fully_disallows_any("User-agent: *\nDisallow: /", self.AGENTS)

    def test_wildcard_counted_in_ablation_mode(self):
        assert fully_disallows_any(
            "User-agent: *\nDisallow: /", self.AGENTS, require_explicit=False
        )


# -- Property-based ---------------------------------------------------------

_agents = st.sampled_from(["GPTBot", "CCBot", "Bytespider", "ClaudeBot"])


class TestClassifyProperties:
    @given(agent=_agents)
    def test_explicit_full_disallow_always_full(self, agent):
        text = f"User-agent: {agent}\nDisallow: /"
        assert classify(text, agent).level is RestrictionLevel.FULL

    @given(agent=_agents, path=st.sampled_from(["/a/", "/img/", "/x"]))
    def test_explicit_partial_never_full(self, agent, path):
        text = f"User-agent: {agent}\nDisallow: {path}"
        assert classify(text, agent).level is RestrictionLevel.PARTIAL

    @given(agent=_agents)
    def test_explicit_flag_matches_naming(self, agent):
        text = "User-agent: GPTBot\nDisallow: /"
        result = classify(text, agent)
        assert result.explicit == (agent == "GPTBot")
