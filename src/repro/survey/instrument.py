"""The artist survey instrument (Appendix D.1).

Encodes the questionnaire as data: question ids, prompts, response
types, options, and display conditions (e.g. Q25-Q27 follow the
robots.txt explainer shown only to participants who answered "No" to
Q24).  The synthetic respondent generator fills this instrument in, and
the analysis pipeline consumes answers keyed by question id, so the
instrument is the shared schema.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

__all__ = ["QuestionType", "Question", "SURVEY", "question", "ROBOTS_EXPLAINER"]


class QuestionType(enum.Enum):
    """Response formats used by the survey."""

    SINGLE_CHOICE = "single"
    MULTI_CHOICE = "multi"
    LIKERT = "likert"
    OPEN = "open"
    SCALE_GRID = "scale-grid"


@dataclass(frozen=True)
class Question:
    """One survey question.

    Attributes:
        qid: Identifier, e.g. ``"Q24"``.
        text: The prompt shown to participants.
        qtype: Response format.
        options: Choice options (or grid items for scale grids).
        shown_if: Answer-dict predicate controlling display, or None
            when always shown.
    """

    qid: str
    text: str
    qtype: QuestionType
    options: Sequence[str] = ()
    shown_if: Optional[Callable[[Dict[str, object]], bool]] = None

    def is_shown(self, answers: Dict[str, object]) -> bool:
        """Whether this question applies given earlier *answers*."""
        return self.shown_if is None if self.shown_if is None else self.shown_if(answers)


LIKERT_5 = (
    "Not likely at all",
    "Unlikely",
    "Neutral / Undecided",
    "Likely",
    "Very likely",
)

IMPACT_5 = (
    "No impact",
    "Minor impact",
    "Moderate impact",
    "Significant impact",
    "Severe impact",
)

DURATION_OPTIONS = (
    "Less than 1 year",
    "1-5 years",
    "5-10 years",
    "10 years or more",
)

INCOME_OPTIONS = (
    "I haven't made any money from my art",
    "I make some income from my art but it's not the main source",
    "My art is my main source of income",
)

ART_TYPES = (
    "Concept Art",
    "Traditional Painting and Drawing",
    "Photography",
    "Abstract",
    "Illustration",
    "Game Art",
    "Anime and Manga Art",
    "Digital 2D",
    "Digital 3D",
    "Traditional Sculpting",
    "Environmental",
    "Character and Creature Design",
    "Comicbook Art",
    "Matte Painting",
    "Items Props",
    "Other",
)

FAMILIARITY_ITEMS = (
    "Website",
    "Generative AI",
    "Search engine",
    "Nearest diffusion tree",   # bogus item, after Hargittai [41]
    "Robots.txt",
)

ACTION_OPTIONS = (
    "Reducing the amount of my artwork that I share online",
    "Actively removing my old artwork from the Internet",
    "Posting lower resolution versions of my artwork online",
    "Learning about AI art tools and possibly using them",
    "Preventing my websites from being scraped",
    "Using Glaze to protect my art before posting",
    "Other",
)

CONTROL_OPTIONS = (
    "I have full control over the full content of robots.txt",
    "I can click some buttons to switch between a few presets",
    "I have no control over the content",
    "I am not sure",
    "Other",
)

#: The explainer shown to participants who had not heard of robots.txt.
ROBOTS_EXPLAINER = (
    "Think of robots.txt as a \"Do Not Enter\" sign for automated "
    "programs that browse the internet. When placed on a website, it "
    "tells these automated programs which parts of the site they're "
    "not allowed to access. While it won't stop every bot, it works "
    "like a polite request. It is important to note that not all "
    "companies respect robots.txt -- some may ignore it entirely if "
    "they choose to."
)


def _heard_no(answers: Dict[str, object]) -> bool:
    return answers.get("Q24") == "No"


def _has_site(answers: Dict[str, object]) -> bool:
    return "Personal Website" in (answers.get("Q8") or ())


SURVEY: List[Question] = [
    Question("Q1", "Do you consider yourself a professional artist?",
             QuestionType.SINGLE_CHOICE, ("Yes", "No")),
    Question("Q2", "What portion of your income comes from your art?",
             QuestionType.SINGLE_CHOICE, INCOME_OPTIONS),
    Question("Q3", "How long have you been making money from your art?",
             QuestionType.SINGLE_CHOICE, DURATION_OPTIONS,
             shown_if=lambda a: a.get("Q2") != INCOME_OPTIONS[0]),
    Question("Q4", "What type of art do you do?", QuestionType.MULTI_CHOICE, ART_TYPES),
    Question("Q5", "Which country do you live in?", QuestionType.OPEN),
    Question("Q6", "How familiar are you with the following computer and internet items?",
             QuestionType.SCALE_GRID, FAMILIARITY_ITEMS),
    Question("Q7", "Do you post your art online?", QuestionType.SINGLE_CHOICE, ("Yes", "No")),
    Question("Q8", "Where do you post art online?", QuestionType.MULTI_CHOICE,
             ("Social Media", "Art Platforms", "Personal Website", "Art Seller Websites", "Other")),
    Question("Q9", "How do you host your personal website?", QuestionType.SINGLE_CHOICE,
             ("I have my own server", "Free service", "Paid service", "Other"),
             shown_if=_has_site),
    Question("Q10", "What is the name of the service you use?", QuestionType.OPEN,
             shown_if=_has_site),
    Question("Q11", "Why did you choose the service?", QuestionType.OPEN,
             shown_if=_has_site),
    Question("Q12", "[Optional] If you're comfortable, please share a link to your "
                    "personal website.", QuestionType.OPEN, shown_if=_has_site),
    Question("Q13", "How familiar are you with AI-generated art?", QuestionType.SINGLE_CHOICE,
             ("Not familiar at all", "Slightly familiar", "Somewhat familiar",
              "Moderately familiar", "Very familiar")),
    Question("Q15", "Please briefly describe your general impression of AI-generated art.",
             QuestionType.OPEN),
    Question("Q16", "How much impact do you expect AI-generated art to have on your job security?",
             QuestionType.SINGLE_CHOICE, IMPACT_5),
    Question("Q17", "Have you taken any actions because of the increasing use of AI-generated art?",
             QuestionType.SINGLE_CHOICE, ("Yes", "No")),
    Question("Q18", "What actions have you taken?", QuestionType.MULTI_CHOICE, ACTION_OPTIONS,
             shown_if=lambda a: a.get("Q17") == "Yes"),
    Question("Q19", "Please elaborate on how you prevent your websites from being scraped.",
             QuestionType.OPEN,
             shown_if=lambda a: "Preventing my websites from being scraped" in (a.get("Q18") or ())),
    Question("Q20", "Do you plan to take any actions because of the increasing use of "
                    "AI-generated art?", QuestionType.SINGLE_CHOICE, ("Yes", "No")),
    Question("Q21", "What actions do you plan to take?", QuestionType.MULTI_CHOICE,
             ACTION_OPTIONS, shown_if=lambda a: a.get("Q20") == "Yes"),
    Question("Q22", "If your platform offers a mechanism to tell AI companies not to scrape, "
                    "how likely will you enable it?", QuestionType.LIKERT, LIKERT_5),
    Question("Q23", "If your platform offers a mechanism to block AI companies from scraping, "
                    "how likely will you enable it?", QuestionType.LIKERT, LIKERT_5),
    Question("Q24", "Have you heard about robots.txt before today?",
             QuestionType.SINGLE_CHOICE, ("Yes", "No")),
    Question("Q25", "Briefly describe what you think robots.txt does.", QuestionType.OPEN),
    Question("Q26", "Would you consider adopting robots.txt in the future?",
             QuestionType.LIKERT, LIKERT_5, shown_if=_heard_no),
    Question("Q27", "How likely do you think AI companies will respect robots.txt?",
             QuestionType.LIKERT, LIKERT_5),
    Question("Q29", "Can you control the content of the robots.txt of websites where you post?",
             QuestionType.SINGLE_CHOICE, CONTROL_OPTIONS,
             shown_if=lambda a: a.get("Q24") == "Yes"),
    Question("Q28", "Have you checked the robots.txt of websites where you post your work?",
             QuestionType.SINGLE_CHOICE, ("Yes", "No"),
             shown_if=lambda a: a.get("Q24") == "Yes"),
    Question("Q30", "How did you get the current content of robots.txt?",
             QuestionType.SINGLE_CHOICE,
             ("Provided by my website hosting platform",
              "Copied from the Internet (e.g., a blog)",
              "Created my own robots.txt",
              "Other"),
             shown_if=lambda a: a.get("Q24") == "Yes" and _has_site(a)),
    Question("Q31", "Do you currently use robots.txt to disallow bots from AI companies?",
             QuestionType.SINGLE_CHOICE, ("Yes", "No"),
             shown_if=lambda a: a.get("Q24") == "Yes" and _has_site(a)),
    Question("Q32", "[Optional] Do you face any obstacles in adopting robots.txt?",
             QuestionType.MULTI_CHOICE,
             ("I have trouble finding how to edit the robots.txt",
              "I find it hard to write the robots.txt",
              "I don't know how to use it",
              "Other"),
             shown_if=lambda a: a.get("Q24") == "Yes"),
]


def question(qid: str) -> Question:
    """Look up a question by id.

    >>> question("Q24").qtype.value
    'single'
    """
    for q in SURVEY:
        if q.qid == qid:
            return q
    raise KeyError(f"unknown question: {qid}")
