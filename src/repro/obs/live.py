"""Streaming telemetry: scrape the batch registries into a live plane.

The batch obs plane (:mod:`repro.obs.metrics`, :mod:`repro.obs.series`)
exports its state once, at the end of a run.  A production measurement
service needs the same numbers *while the run happens*: a Prometheus
scrape endpoint, an event stream for downstream collectors, and health
signals.  This module bridges the two worlds without touching the hot
instrument paths:

* :class:`TelemetryScraper` periodically snapshots the registries and
  computes **snapshot deltas** with the exact same
  :func:`~repro.obs.metrics.snapshot_delta` arithmetic fork workers use
  to ship their activity, so a scrape stream and a batch export can
  never disagree -- the final scrape's cumulative payload *is* the
  METRICS.json / SERIES.json payload.
* :class:`EventBus` is a bounded ring buffer of
  :class:`TelemetryEvent` records with pluggable sinks.  When the
  buffer is full the oldest event is dropped (and counted); a slow or
  absent consumer can never grow memory without bound.
* :func:`render_prometheus` renders the exported JSON payload shapes
  as Prometheus text format (version 0.0.4).  It deliberately operates
  on the *payload* (what ``METRICS.json`` holds) rather than a live
  registry, so serving a finished run's files and serving a live
  process share one code path -- and counter totals on ``/metrics``
  are byte-identical to the JSON export.
* :class:`MetricsHTTPServer` mounts ``/metrics`` + ``/healthz`` on a
  stdlib threading HTTP server (``repro serve-metrics``).
* :class:`JsonlSink` appends one OTLP-flavored JSON line per event.

Clock duality: in **live mode** a daemon thread scrapes on a
wall-clock interval (:meth:`LiveTelemetry.start`); in **batch mode**
the pipeline scrapes on simulated-month ticks -- the snapshot
collector calls :func:`month_tick` after each month it lands, which is
a no-op unless a pipeline was :func:`install`-ed for the run.  The
disabled path therefore costs one module-global ``None`` check.
"""

from __future__ import annotations

import json
import re
import threading
import time
from collections import deque
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from . import metrics as _metrics
from . import series as _series_mod
from .metrics import MetricsRegistry, render_key, shared_registry
from .series import SeriesRegistry, shared_series

__all__ = [
    "LIVE_SCHEMA_VERSION",
    "DEFAULT_BUS_CAPACITY",
    "TelemetryEvent",
    "EventBus",
    "TelemetryScraper",
    "LiveTelemetry",
    "JsonlSink",
    "MetricsHTTPServer",
    "render_prometheus",
    "install",
    "uninstall",
    "active",
    "month_tick",
]

#: Schema version stamped into every emitted telemetry event.
LIVE_SCHEMA_VERSION = 1

#: Ring-buffer slots before the oldest event is evicted.
DEFAULT_BUS_CAPACITY = 512


# ---------------------------------------------------------------------------
# events and the ring-buffer bus
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TelemetryEvent:
    """One item on the live stream.

    ``kind`` is ``"scrape"`` for registry deltas and ``"alert"`` for
    SLO rule firings; ``month`` carries the simulated-month logical
    clock when the event was driven by a batch month tick (``None`` on
    wall-clock scrapes).
    """

    seq: int
    kind: str
    unix_time: float
    month: Optional[int]
    payload: Dict[str, object]

    def to_json(self) -> Dict[str, object]:
        """A JSON-able rendering (payload shared, not copied)."""
        return {
            "schema_version": LIVE_SCHEMA_VERSION,
            "seq": self.seq,
            "kind": self.kind,
            "unix_time": self.unix_time,
            "month": self.month,
            "payload": self.payload,
        }


class EventBus:
    """A bounded, thread-safe ring buffer with push-style sinks.

    Publishing never blocks and never grows memory past *capacity*:
    when full, the oldest event is evicted and counted in
    :attr:`dropped`.  Sinks are called synchronously on the publishing
    thread, in subscription order, *outside* the buffer lock; a sink
    that raises propagates to the publisher (sinks here are small,
    deterministic writers -- hiding their failures would hide bugs).
    """

    def __init__(self, capacity: int = DEFAULT_BUS_CAPACITY):
        if capacity < 1:
            raise ValueError("event bus capacity must be >= 1")
        self._buffer: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._dropped = 0
        self._sinks: List[Callable[[TelemetryEvent], None]] = []

    @property
    def capacity(self) -> int:
        """Ring-buffer size."""
        return self._buffer.maxlen or 0

    @property
    def dropped(self) -> int:
        """Events evicted because the buffer was full."""
        return self._dropped

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent publish (0 before any)."""
        return self._seq

    def subscribe(self, sink: Callable[[TelemetryEvent], None]) -> None:
        """Add a callable invoked with every subsequently published event."""
        with self._lock:
            self._sinks.append(sink)

    def publish(
        self,
        kind: str,
        payload: Dict[str, object],
        month: Optional[int] = None,
        unix_time: Optional[float] = None,
    ) -> TelemetryEvent:
        """Append an event to the ring and fan it out to the sinks."""
        stamp = time.time() if unix_time is None else unix_time
        with self._lock:
            self._seq += 1
            event = TelemetryEvent(
                seq=self._seq, kind=kind, unix_time=stamp,
                month=month, payload=payload,
            )
            if len(self._buffer) == self._buffer.maxlen:
                self._dropped += 1
            self._buffer.append(event)
            sinks = list(self._sinks)
        for sink in sinks:
            sink(event)
        return event

    def events(self, kind: Optional[str] = None) -> List[TelemetryEvent]:
        """A detached copy of the buffered events, oldest first."""
        with self._lock:
            items = list(self._buffer)
        if kind is None:
            return items
        return [event for event in items if event.kind == kind]


# ---------------------------------------------------------------------------
# scraping: snapshot-delta over the batch registries
# ---------------------------------------------------------------------------

def _render_metrics_snapshot(snapshot: Dict) -> Dict[str, object]:
    """Render a registry snapshot as the METRICS.json payload shape."""
    return {
        "schema_version": _metrics.METRICS_SCHEMA_VERSION,
        "counters": {
            render_key(key): value
            for key, value in sorted(snapshot["counters"].items())
        },
        "gauges": {
            render_key(key): value
            for key, value in sorted(snapshot["gauges"].items())
        },
        "histograms": {
            render_key(key): payload
            for key, payload in sorted(snapshot["histograms"].items())
        },
    }


def _render_series_snapshot(snapshot: Dict) -> Dict[str, object]:
    """Render a series snapshot as the SERIES.json payload shape."""
    rendered: Dict[str, object] = {}
    for key, points in sorted(snapshot.items()):
        months = sorted(points)
        rendered[render_key(key)] = {
            "months": months,
            "values": [points[month] for month in months],
            "total": sum(points[month] for month in months),
        }
    return {"schema_version": _series_mod.SERIES_SCHEMA_VERSION, "series": rendered}


class TelemetryScraper:
    """Turns registry state into cumulative + delta scrape payloads.

    Each :meth:`scrape` takes one consistent snapshot pair, renders the
    cumulative state in the exact export payload shapes, and diffs
    against the previous scrape with the same ``snapshot_delta``
    arithmetic the fork-pool workers use.  The scrape itself is counted
    (``live.scrapes``) *before* the snapshot, so the cumulative payload
    always accounts for its own bookkeeping and the final scrape of a
    run matches the batch export exactly.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        series: Optional[SeriesRegistry] = None,
    ):
        self._registry = registry if registry is not None else shared_registry()
        self._series = series if series is not None else shared_series()
        self._lock = threading.Lock()
        self._metrics_before: Dict = {"counters": {}, "gauges": {}, "histograms": {}}
        self._series_before: Dict = {}
        self._scrapes = 0

    @property
    def scrapes(self) -> int:
        """Completed scrape count."""
        return self._scrapes

    def scrape(self) -> Dict[str, object]:
        """One scrape: cumulative payloads plus the delta since last time."""
        self._registry.inc("live.scrapes")
        with self._lock:
            metrics_after = self._registry.snapshot()
            series_after = self._series.snapshot()
            metrics_delta = _metrics.snapshot_delta(metrics_after, self._metrics_before)
            series_delta = _series_mod.snapshot_delta(series_after, self._series_before)
            self._metrics_before = metrics_after
            self._series_before = series_after
            self._scrapes += 1
            index = self._scrapes
        return {
            "scrape_index": index,
            "metrics": _render_metrics_snapshot(metrics_after),
            "series": _render_series_snapshot(series_after),
            "delta": {
                "counters": {
                    render_key(key): value
                    for key, value in sorted(metrics_delta["counters"].items())
                },
                "series": {
                    render_key(key): {
                        str(month): amount
                        for month, amount in sorted(points.items())
                    }
                    for key, points in sorted(series_delta.items())
                },
            },
        }


# ---------------------------------------------------------------------------
# Prometheus text-format rendering (exposition format 0.0.4)
# ---------------------------------------------------------------------------

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    clean = _NAME_SANITIZE.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return clean


def _prom_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_sample(
    name: str, labels: List[Tuple[str, str]], value: object
) -> str:
    if labels:
        body = ",".join(
            f'{_LABEL_SANITIZE.sub("_", k)}="{_prom_label_value(v)}"'
            for k, v in labels
        )
        return f"{name}{{{body}}} {value}"
    return f"{name} {value}"


def _split_rendered(rendered: str) -> Tuple[str, List[Tuple[str, str]]]:
    """Invert ``render_key``: ``name{a=b,c=d}`` -> name + label pairs."""
    if "{" not in rendered:
        return rendered, []
    name, _, rest = rendered.partition("{")
    pairs: List[Tuple[str, str]] = []
    for part in rest.rstrip("}").split(","):
        if not part:
            continue
        label, _, value = part.partition("=")
        pairs.append((label, value))
    return name, pairs


def render_prometheus(
    metrics_payload: Optional[Dict[str, object]] = None,
    series_payload: Optional[Dict[str, object]] = None,
) -> str:
    """Render export payloads as Prometheus text format.

    Counters become ``<name>_total`` counter families with their JSON
    totals rendered verbatim (``str`` of the exported integer), gauges
    keep their name, histograms expand to cumulative ``_bucket`` /
    ``_sum`` / ``_count`` samples, and month-series become
    ``<name>_monthly`` counter families with one sample per month
    carrying a ``month`` label (the ``_monthly`` suffix keeps a name
    that exists both as a counter and a series -- e.g.
    ``accesslog.requests`` -- from colliding).
    """
    lines: List[str] = []
    typed: Dict[str, str] = {}

    def emit(family: str, kind: str, sample: str) -> None:
        if typed.get(family) != kind:
            lines.append(f"# TYPE {family} {kind}")
            typed[family] = kind
        lines.append(sample)

    metrics_payload = metrics_payload or {}
    for rendered, value in metrics_payload.get("counters", {}).items():
        name, labels = _split_rendered(rendered)
        family = _prom_name(name) + "_total"
        emit(family, "counter", _prom_sample(family, labels, value))
    for rendered, value in metrics_payload.get("gauges", {}).items():
        name, labels = _split_rendered(rendered)
        family = _prom_name(name)
        emit(family, "gauge", _prom_sample(family, labels, value))
    for rendered, payload in metrics_payload.get("histograms", {}).items():
        name, labels = _split_rendered(rendered)
        family = _prom_name(name)
        if typed.get(family) != "histogram":
            lines.append(f"# TYPE {family} histogram")
            typed[family] = "histogram"
        running = 0
        for bound, count in zip(payload["bounds"], payload["counts"]):
            running += count
            lines.append(_prom_sample(
                family + "_bucket", labels + [("le", str(bound))], running
            ))
        running += payload["counts"][-1]
        lines.append(_prom_sample(
            family + "_bucket", labels + [("le", "+Inf")], running
        ))
        lines.append(_prom_sample(family + "_sum", labels, payload["sum"]))
        lines.append(_prom_sample(family + "_count", labels, payload["count"]))

    series_payload = series_payload or {}
    for rendered, entry in series_payload.get("series", {}).items():
        name, labels = _split_rendered(rendered)
        family = _prom_name(name) + "_monthly"
        for month, value in zip(entry["months"], entry["values"]):
            emit(family, "counter", _prom_sample(
                family, labels + [("month", str(month))], value
            ))
    return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------------
# sinks
# ---------------------------------------------------------------------------

class JsonlSink:
    """Append one OTLP-flavored JSON line per telemetry event.

    Scrape events carry only the *delta* since the previous scrape
    (cumulative state is reconstructable by summation and served by
    ``/metrics``); alert and other events ship their payload whole.
    """

    def __init__(self, path):
        self._path = path
        self._handle = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    def __call__(self, event: TelemetryEvent) -> None:
        record: Dict[str, object] = {
            "schemaVersion": LIVE_SCHEMA_VERSION,
            "timeUnixNano": int(event.unix_time * 1e9),
            "seq": event.seq,
            "kind": event.kind,
            "month": event.month,
        }
        if event.kind == "scrape":
            record["scrapeIndex"] = event.payload.get("scrape_index")
            record["deltas"] = event.payload.get("delta", {})
        else:
            record["payload"] = event.payload
        with self._lock:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()

    def close(self) -> None:
        """Flush and close the underlying file."""
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


# ---------------------------------------------------------------------------
# the in-process HTTP endpoint
# ---------------------------------------------------------------------------

class MetricsHTTPServer:
    """``/metrics`` + ``/healthz`` on a stdlib threading HTTP server.

    *source* is called per ``/metrics`` request and must return a
    ``(metrics_payload, series_payload)`` pair in the export JSON
    shapes; *health* (optional) is called per ``/healthz`` request and
    returns a JSON-able dict merged into the default health body.
    Construction binds but does not serve; call :meth:`start`.
    """

    def __init__(
        self,
        source: Callable[[], Tuple[Dict[str, object], Dict[str, object]]],
        health: Optional[Callable[[], Dict[str, object]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._source = source
        self._health = health
        self._requests = 0
        self._lock = threading.Lock()
        server = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.0"

            def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
                server._handle(self)

            def log_message(self, *args: object) -> None:
                pass  # quiet; the bus and CLI own user-facing output

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._thread: Optional[threading.Thread] = None

    # -- request plumbing ----------------------------------------------------

    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        with self._lock:
            self._requests += 1
        if request.path == "/metrics":
            metrics_payload, series_payload = self._source()
            body = render_prometheus(metrics_payload, series_payload)
            self._respond(
                request, 200, body, "text/plain; version=0.0.4; charset=utf-8"
            )
        elif request.path == "/healthz":
            payload: Dict[str, object] = {"status": "ok", "requests": self._requests}
            if self._health is not None:
                payload.update(self._health())
            self._respond(
                request, 200, json.dumps(payload, sort_keys=True) + "\n",
                "application/json",
            )
        else:
            self._respond(
                request, 404, f"no route for {request.path}\n", "text/plain"
            )

    @staticmethod
    def _respond(
        request: BaseHTTPRequestHandler, status: int, body: str, content_type: str
    ) -> None:
        encoded = body.encode("utf-8")
        request.send_response(status)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(encoded)))
        request.end_headers()
        request.wfile.write(encoded)

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0`` ephemeral binds)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the bound endpoint."""
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    @property
    def request_count(self) -> int:
        """GET requests handled so far (any route)."""
        return self._requests

    def start(self) -> "MetricsHTTPServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("metrics server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down the listener and join the serving thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


# ---------------------------------------------------------------------------
# the composed pipeline
# ---------------------------------------------------------------------------

class LiveTelemetry:
    """Scraper + bus + sinks + optional alert engine, as one pipeline.

    Batch mode: :func:`install` the pipeline and the snapshot collector
    drives it via :func:`month_tick`; the orchestrator takes one final
    scrape before exporting so the stream's last cumulative payload
    equals the batch export.  Live mode: :meth:`start` scrapes on a
    wall-clock interval.  An attached alert engine (anything with an
    ``evaluate(metrics, series)`` returning alert events) runs on every
    scrape; each firing publishes an ``alert`` event and increments
    ``alerts.fired{rule=...}``.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        series: Optional[SeriesRegistry] = None,
        capacity: int = DEFAULT_BUS_CAPACITY,
        alert_engine: Optional[object] = None,
    ):
        self._registry = registry if registry is not None else shared_registry()
        self.bus = EventBus(capacity)
        self.scraper = TelemetryScraper(registry=registry, series=series)
        self.alert_engine = alert_engine
        self._latest: Optional[Dict[str, object]] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._sinks_to_close: List[JsonlSink] = []

    def add_sink(self, sink: Callable[[TelemetryEvent], None]) -> None:
        """Subscribe *sink* to the bus; ``close()``-ables close with us."""
        self.bus.subscribe(sink)
        if hasattr(sink, "close"):
            self._sinks_to_close.append(sink)  # type: ignore[arg-type]

    # -- scraping ------------------------------------------------------------

    def scrape(self, month: Optional[int] = None) -> TelemetryEvent:
        """Scrape now; publish the scrape (and any alert firings)."""
        payload = self.scraper.scrape()
        self._latest = payload
        event = self.bus.publish("scrape", payload, month=month)
        if self.alert_engine is not None:
            fired = self.alert_engine.evaluate(
                metrics=payload["metrics"], series=payload["series"]
            )
            for alert in fired:
                self._registry.inc("alerts.fired", rule=alert.rule)
                self.bus.publish("alert", alert.to_json(), month=month)
        return event

    def latest(self) -> Optional[Dict[str, object]]:
        """The most recent scrape payload (None before the first)."""
        return self._latest

    # -- wall-clock live mode ------------------------------------------------

    def start(self, interval_seconds: float = 5.0) -> None:
        """Scrape every *interval_seconds* on a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("live scraper already started")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval_seconds):
                self.scrape()

        self._thread = threading.Thread(
            target=loop, name="repro-live-scraper", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the interval thread (if running) and close owned sinks."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        for sink in self._sinks_to_close:
            sink.close()

    # -- HTTP ----------------------------------------------------------------

    def serve(self, host: str = "127.0.0.1", port: int = 0) -> MetricsHTTPServer:
        """Mount ``/metrics`` (scrape-on-demand) + ``/healthz``; start it."""

        def source() -> Tuple[Dict[str, object], Dict[str, object]]:
            payload = self.scrape().payload
            return payload["metrics"], payload["series"]  # type: ignore[index]

        def health() -> Dict[str, object]:
            return {
                "scrapes": self.scraper.scrapes,
                "events": self.bus.last_seq,
                "dropped": self.bus.dropped,
            }

        return MetricsHTTPServer(source, health=health, host=host, port=port).start()


# ---------------------------------------------------------------------------
# the batch-mode hook: one installed pipeline per process
# ---------------------------------------------------------------------------

_ACTIVE: Optional[LiveTelemetry] = None


def install(pipeline: LiveTelemetry) -> LiveTelemetry:
    """Make *pipeline* the process's month-tick target; returns it."""
    global _ACTIVE
    _ACTIVE = pipeline
    return pipeline


def uninstall() -> None:
    """Detach the installed pipeline (month ticks become no-ops)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[LiveTelemetry]:
    """The installed pipeline, if any."""
    return _ACTIVE


def month_tick(month: int) -> Optional[TelemetryEvent]:
    """Scrape the installed pipeline at a simulated-month boundary.

    The batch pipeline's only obligation to the live plane: call this
    when a month's work lands.  Costs one ``None`` check when no
    pipeline is installed.
    """
    pipeline = _ACTIVE
    if pipeline is None:
        return None
    return pipeline.scrape(month=month)
