"""Tests for the Common-Crawl-style snapshot crawler."""

from repro.crawlers.commoncrawl import (
    SNAPSHOT_SPECS,
    SnapshotCrawler,
    month_label,
)
from repro.net.server import Website
from repro.net.transport import Network
from repro.proxy.reverse_proxy import ReverseProxy
from repro.proxy.rules import RuleSet


def make_net():
    net = Network()
    with_robots = Website("a.com")
    with_robots.set_robots_txt("User-agent: GPTBot\nDisallow: /")
    with_robots.add_page("/", "<p>a</p>")
    net.register(with_robots)

    without_robots = Website("b.com")
    without_robots.add_page("/", "<p>b</p>")
    net.register(without_robots)

    blocker_origin = Website("c.com")
    blocker_origin.set_robots_txt("User-agent: *\nDisallow:")
    proxy = ReverseProxy(
        blocker_origin, RuleSet.blocking_user_agents(["CCBot"]), "WAF"
    )
    net.register(proxy)
    return net


class TestMonthLabel:
    def test_origin(self):
        assert month_label(0) == "2022-10"

    def test_year_rollover(self):
        assert month_label(3) == "2023-01"

    def test_end_of_window(self):
        assert month_label(24) == "2024-10"


class TestSnapshotSpecs:
    def test_fifteen_snapshots(self):
        assert len(SNAPSHOT_SPECS) == 15

    def test_monotonic_months(self):
        months = [s.month_index for s in SNAPSHOT_SPECS]
        assert months == sorted(months)
        assert months[0] == 0 and months[-1] == 24

    def test_ids_unique(self):
        ids = [s.snapshot_id for s in SNAPSHOT_SPECS]
        assert len(set(ids)) == 15


class TestSnapshotCrawler:
    def test_robots_captured(self):
        crawler = SnapshotCrawler(make_net())
        snap = crawler.snapshot(SNAPSHOT_SPECS[0], ["a.com", "b.com", "c.com"])
        assert snap.records["a.com"].ok
        assert "GPTBot" in snap.records["a.com"].robots_txt

    def test_missing_robots_recorded_as_404(self):
        crawler = SnapshotCrawler(make_net())
        snap = crawler.snapshot(SNAPSHOT_SPECS[0], ["b.com"])
        record = snap.records["b.com"]
        assert not record.ok and record.missing

    def test_active_blocker_records_403(self):
        crawler = SnapshotCrawler(make_net())
        snap = crawler.snapshot(SNAPSHOT_SPECS[0], ["c.com"])
        record = snap.records["c.com"]
        assert record.status == 403 and not record.ok

    def test_unresolvable_site_records_error(self):
        crawler = SnapshotCrawler(make_net())
        snap = crawler.snapshot(SNAPSHOT_SPECS[0], ["ghost.com"])
        record = snap.records["ghost.com"]
        assert record.status == 0 and record.error

    def test_sites_with_robots(self):
        crawler = SnapshotCrawler(make_net())
        snap = crawler.snapshot(SNAPSHOT_SPECS[0], ["a.com", "b.com", "c.com"])
        assert snap.sites_with_robots() == ["a.com"]

    def test_redirects_not_followed(self):
        net = make_net()
        apex = Website("apex.com")
        apex.redirect_to_host = "www.apex.com"
        www = Website("www.apex.com")
        www.set_robots_txt("User-agent: *\nDisallow:")
        net.register(apex)
        net.register(www)
        crawler = SnapshotCrawler(net)
        snap = crawler.snapshot(SNAPSHOT_SPECS[0], ["apex.com", "www.apex.com"])
        assert snap.records["apex.com"].status == 301
        assert not snap.records["apex.com"].ok

    def test_www_fallback_in_record_for(self):
        net = make_net()
        apex = Website("apex.com")
        apex.redirect_to_host = "www.apex.com"
        www = Website("www.apex.com")
        www.set_robots_txt("User-agent: *\nDisallow:")
        net.register(apex)
        net.register(www)
        crawler = SnapshotCrawler(net)
        snap = crawler.snapshot(SNAPSHOT_SPECS[0], ["apex.com", "www.apex.com"])
        record = snap.record_for("apex.com")
        assert record is not None and record.ok

    def test_dedup_prefers_latest_non_error(self):
        crawler = SnapshotCrawler(make_net(), visits_per_site=3)
        snap = crawler.snapshot(SNAPSHOT_SPECS[0], ["a.com"])
        assert snap.records["a.com"].ok


class TestDedupOnAllErrorVisits:
    def test_latest_failure_mode_kept(self):
        from repro.net.errors import ConnectionRefused, ConnectionReset
        from repro.net.http import Request  # noqa: F401  (doc import)

        net = make_net()
        calls = {"n": 0}

        def factory(request):
            # First visit resets, later visits are refused: the record
            # must report the most recent failure mode.
            calls["n"] += 1
            if calls["n"] == 1:
                return ConnectionReset(request.host)
            return ConnectionRefused(request.host)

        net.inject_failure("a.com", factory)
        crawler = SnapshotCrawler(net, visits_per_site=3, retry_errored=0)
        record = crawler.crawl_site("a.com")
        assert record.status == 0
        assert "refused" in record.error.lower()

    def test_error_never_displaces_success(self):
        net = make_net()
        crawler = SnapshotCrawler(net, visits_per_site=2, retry_errored=0)
        # First visit succeeds; then the host turns flaky mid-crawl.
        original_fetch = crawler._fetch_once
        visits = {"n": 0}

        def flaky_fetch(domain):
            visits["n"] += 1
            if visits["n"] > 1:
                net.reset_connections(domain)
            return original_fetch(domain)

        crawler._fetch_once = flaky_fetch
        record = crawler.crawl_site("a.com")
        assert record.ok


class TestRetryPassesAndErrorBudget:
    def test_transient_error_healed_by_retry_pass(self):
        net = make_net()
        net.inject_flaky("a.com", failures=1)
        crawler = SnapshotCrawler(net, retry_errored=2)
        snap = crawler.snapshot(SNAPSHOT_SPECS[0], ["a.com", "b.com"])
        assert snap.records["a.com"].ok
        budget = snap.error_budget
        assert budget.n_sites == 2
        assert budget.n_errored_first_pass == 1
        assert budget.n_healed == 1
        assert budget.n_errored_final == 0
        assert budget.retry_passes == 1
        assert budget.heal_rate == 1.0

    def test_flaky_host_heals_after_exactly_n_failures(self):
        net = make_net()
        net.inject_flaky("a.com", failures=2)
        crawler = SnapshotCrawler(net, retry_errored=3)
        snap = crawler.snapshot(SNAPSHOT_SPECS[0], ["a.com"])
        assert snap.records["a.com"].ok
        # First pass errored, pass 1 errored (failure #2), pass 2 healed.
        assert snap.error_budget.retry_passes == 2
        assert snap.error_budget.n_healed == 1

    def test_permanent_error_survives_retries(self):
        net = make_net()
        crawler = SnapshotCrawler(net, retry_errored=2)
        snap = crawler.snapshot(SNAPSHOT_SPECS[0], ["ghost.example", "a.com"])
        assert snap.records["ghost.example"].error
        budget = snap.error_budget
        assert budget.n_errored_final == 1
        assert budget.n_healed == 0
        assert budget.retry_passes == 2
        assert sum(budget.errors_by_kind.values()) == 1

    def test_clean_crawl_costs_no_retry_passes(self):
        crawler = SnapshotCrawler(make_net(), retry_errored=2)
        snap = crawler.snapshot(SNAPSHOT_SPECS[0], ["a.com", "b.com"])
        budget = snap.error_budget
        assert budget.n_errored_first_pass == 0
        assert budget.retry_passes == 0
        assert budget.heal_rate == 1.0

    def test_retries_disabled_globally(self):
        from repro.net.chaos import retries_disabled

        net = make_net()
        net.inject_flaky("a.com", failures=1)
        crawler = SnapshotCrawler(net, retry_errored=2)
        with retries_disabled():
            snap = crawler.snapshot(SNAPSHOT_SPECS[0], ["a.com"])
        assert snap.records["a.com"].error
        assert snap.error_budget.retry_passes == 0
        assert snap.error_budget.n_errored_final == 1

    def test_healed_snapshot_equals_fault_free_snapshot(self):
        spec = SNAPSHOT_SPECS[0]
        clean = SnapshotCrawler(make_net()).snapshot(spec, ["a.com", "b.com"])
        flaky_net = make_net()
        flaky_net.inject_flaky("a.com", failures=1)
        healed = SnapshotCrawler(flaky_net, retry_errored=2).snapshot(
            spec, ["a.com", "b.com"]
        )
        # error_budget is excluded from equality: a healed snapshot is
        # the same measurement as a fault-free one.
        assert clean == healed
