"""Crawler behavior profiles: how a bot treats robots.txt.

Section 5's central finding is that compliance is a *behavioral*
property per crawler: most large AI data crawlers fetch and obey
robots.txt, Bytespider fetches it and ignores it, and most third-party
assistant crawlers never fetch it at all.  One third-party crawler had
"a bug in its implementation that caused it to incorrectly fetch the
robots.txt file", and one "did not fetch the robots.txt file most of
the time".  :class:`RobotsBehavior` enumerates these observed modes and
:class:`CrawlerProfile` binds a user agent to one of them.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..agents.ipranges import crawler_ip

__all__ = ["RobotsBehavior", "CrawlerProfile"]


class RobotsBehavior(enum.Enum):
    """How a crawler treats robots.txt."""

    #: Fetch robots.txt before crawling and obey its directives.
    FETCH_AND_OBEY = "fetch-and-obey"
    #: Fetch robots.txt (it shows in server logs) but ignore the rules.
    #: This is Bytespider's observed behavior.
    FETCH_AND_IGNORE = "fetch-and-ignore"
    #: Never fetch robots.txt; crawl regardless.  20 of 23 third-party
    #: assistant crawlers behave this way.
    NO_FETCH = "no-fetch"
    #: Request a wrong path (e.g. ``/robots.txt/`` or ``//robots.txt``)
    #: and then crawl as if no policy existed.
    BUGGY_FETCH = "buggy-fetch"
    #: Fetch robots.txt only every Nth visit; obey it when fetched.
    INTERMITTENT_FETCH = "intermittent-fetch"

    @property
    def ever_fetches(self) -> bool:
        """Whether server logs can ever show a robots.txt fetch."""
        return self is not RobotsBehavior.NO_FETCH

    @property
    def obeys(self) -> bool:
        """Whether the crawler honors directives when it has them."""
        return self in (
            RobotsBehavior.FETCH_AND_OBEY,
            RobotsBehavior.INTERMITTENT_FETCH,
        )


@dataclass
class CrawlerProfile:
    """Identity and behavior of one crawler.

    Attributes:
        token: Product token used in robots.txt group matching.
        user_agent: Full User-Agent header sent with requests.
        behavior: robots.txt treatment.
        source_ip: Address requests originate from; defaults to the
            crawler's assigned range.
        robots_cache_ttl: How long (simulation seconds) a fetched
            robots.txt is cached.  Large values model the crawlers that
            "may cache robots.txt and continue to fetch content even
            after it has changed" (Section 8.2).
        intermittent_period: For INTERMITTENT_FETCH, robots.txt is
            fetched on every Nth crawl only.
        buggy_robots_path: The wrong path a BUGGY_FETCH crawler requests.
        visits_unprompted: Whether the crawler shows up on its own in a
            passive measurement (vs. only when user-triggered).
        forbidden_robots_means_disallow: How an obedient crawler reads a
            403 on /robots.txt: True (the default, what production
            crawlers do) treats it like RFC 9309's unreachable case and
            stays out; False treats it as "no policy".
    """

    token: str
    user_agent: str
    behavior: RobotsBehavior = RobotsBehavior.FETCH_AND_OBEY
    source_ip: str = ""
    robots_cache_ttl: float = 0.0
    intermittent_period: int = 5
    buggy_robots_path: str = "/robots.txt/"
    visits_unprompted: bool = True
    forbidden_robots_means_disallow: bool = True
    #: Whether the crawler honors the non-standard Crawl-delay
    #: extension (Bing-style).  RFC-compliant crawlers ignore it.
    honors_crawl_delay: bool = False
    #: Whether the crawler seeds its frontier from sitemaps declared in
    #: robots.txt (search-style crawlers do; most AI crawlers do not).
    use_sitemaps: bool = False
    #: Seconds between content fetches when no Crawl-delay applies.
    default_fetch_interval: float = 0.0
    #: Whether expired robots.txt cache entries are revalidated with
    #: If-None-Match (a 304 keeps the cached policy without a refetch).
    revalidates_robots: bool = False
    # -- adversarial (anti-detection) knobs ---------------------------------
    #: User-Agent strings rotated round-robin per request (empty: always
    #: ``user_agent``).  Defeats UA-list rules; a behavioral layer sees
    #: the rotation itself as churn.
    ua_pool: Tuple[str, ...] = ()
    #: Source addresses rotated round-robin per request (empty: always
    #: ``source_ip``).  Defeats per-IP limits and verified-bot checks.
    ip_pool: Tuple[str, ...] = ()
    #: Max extra milliseconds of seeded jitter added to each politeness
    #: gap, so inter-request timing is not a perfectly regular beacon.
    stealth_gap_jitter_ms: int = 0
    #: Salt for the jitter (sha256 of seed|token|host|index -- no RNG,
    #: so stealth crawls replay byte-identically).
    stealth_seed: int = 0
    #: Charge politeness gaps (interval + jitter) to the simulated
    #: network clock, so server-side inter-arrival timing actually
    #: shows the pacing -- that clock charge *is* the evasion cost.
    paces_on_clock: bool = False

    def __post_init__(self) -> None:
        if not self.source_ip:
            self.source_ip = crawler_ip(self.token)

    # -- per-request identity (round-robin over the pools) ------------------

    def user_agent_for(self, index: int) -> str:
        """The User-Agent for the crawl's *index*-th request."""
        if not self.ua_pool:
            return self.user_agent
        return self.ua_pool[index % len(self.ua_pool)]

    def source_ip_for(self, index: int) -> str:
        """The source address for the crawl's *index*-th request."""
        if not self.ip_pool:
            return self.source_ip
        return self.ip_pool[index % len(self.ip_pool)]

    def gap_jitter_seconds(self, host: str, index: int) -> float:
        """Seeded jitter (seconds) added to the *index*-th pacing gap."""
        if self.stealth_gap_jitter_ms <= 0:
            return 0.0
        digest = hashlib.sha256(
            f"{self.stealth_seed}|{self.token}|{host}|{index}".encode("utf-8")
        ).hexdigest()
        return (int(digest[:8], 16) % (self.stealth_gap_jitter_ms + 1)) / 1000.0

    @classmethod
    def respectful(cls, token: str, user_agent: Optional[str] = None, **kwargs) -> "CrawlerProfile":
        """A compliant crawler profile."""
        return cls(
            token=token,
            user_agent=user_agent or f"{token}/1.0",
            behavior=RobotsBehavior.FETCH_AND_OBEY,
            **kwargs,
        )

    @classmethod
    def defiant(cls, token: str, user_agent: Optional[str] = None, **kwargs) -> "CrawlerProfile":
        """A crawler that fetches robots.txt but ignores it."""
        return cls(
            token=token,
            user_agent=user_agent or f"{token}/1.0",
            behavior=RobotsBehavior.FETCH_AND_IGNORE,
            **kwargs,
        )

    @classmethod
    def oblivious(cls, token: str, user_agent: Optional[str] = None, **kwargs) -> "CrawlerProfile":
        """A crawler that never looks at robots.txt."""
        return cls(
            token=token,
            user_agent=user_agent or f"{token}/1.0",
            behavior=RobotsBehavior.NO_FETCH,
            **kwargs,
        )

    @classmethod
    def stealth(
        cls,
        token: str,
        user_agent: Optional[str] = None,
        fetch_interval: float = 1.0,
        gap_jitter_ms: int = 400,
        seed: int = 0,
        **kwargs,
    ) -> "CrawlerProfile":
        """A paced scraper built to slip past behavioral scoring.

        Fetches robots.txt (so server logs show discipline) but ignores
        its rules, keeps one consistent User-Agent, and spaces content
        fetches by *fetch_interval* plus seeded jitter charged to the
        simulated clock -- trading crawl time for a human-shaped
        traffic fingerprint.  Combine with ``ua_pool``/``ip_pool`` via
        *kwargs* to measure how rotation changes the equilibrium.
        """
        return cls(
            token=token,
            user_agent=user_agent or f"{token}/1.0",
            behavior=RobotsBehavior.FETCH_AND_IGNORE,
            default_fetch_interval=fetch_interval,
            stealth_gap_jitter_ms=gap_jitter_ms,
            stealth_seed=seed,
            paces_on_clock=True,
            **kwargs,
        )
