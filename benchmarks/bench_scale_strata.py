"""Benchmark: the million-site scale plane, stratum by stratum.

Times the three pipeline stages of the sharded columnar plane --
population build, archive crawl (``collect_shard_archives``), and
streaming Figure 2-4 aggregation -- for each top-k stratum, and
records the tracemalloc peak of the aggregation stage.  The scale
plane's contract is that aggregation memory tracks the *shard* size,
not the stratum size: growing the population 10x (top-10k -> top-100k)
must keep peak streaming memory within 2x.

A second test measures shard-crawl worker efficiency (T1 / (N * TN) at
N=4).  Both land in ``benchmarks/output/SCALE.json`` for the
``scripts/bench.py`` gate: the memory ratio is always enforced; the
efficiency floor only on hosts with >= 4 CPUs (a single-core container
cannot exhibit parallel speedup).

Per-stage timings also land in ``BENCH_RESULTS.json`` under distinct
keys so the perf trajectory tracks each stratum separately.
"""

import json
import os
import time
import tracemalloc

from repro.measure.longitudinal import collect_shard_archives
from repro.measure.streaming import (
    streaming_allow_and_removal_trend,
    streaming_coverage_table,
    streaming_full_disallow_trend,
    streaming_per_agent_trend,
)
from repro.web.archive import ArchiveSet
from repro.web.population import (
    PopulationConfig,
    build_web_population,
    stratum_config,
)

from conftest import OUTPUT_DIR

#: A 1:100 base world: "top-100k" is then a 1,000-site list, small
#: enough to crawl three strata in one bench, large enough that the
#: 10x top-10k -> top-100k growth is real.
BASE = PopulationConfig(
    universe_size=1500, list_size=1000, top5k_cut=150, audit_size=200
)

STRATA = ("top-1k", "top-10k", "top-100k")

#: Shards are sized for a roughly constant per-shard site count across
#: strata -- the knob that makes streaming memory flat as sites grow.
TARGET_SHARD_SITES = 96

SCALE_PATH = OUTPUT_DIR / "SCALE.json"

#: Aggregating the 10x-larger stratum may cost at most this much more
#: peak memory than the smaller one.
MEMORY_BUDGET_RATIO = 2.0

EFFICIENCY_WORKERS = 4
EFFICIENCY_FLOOR = 0.7

#: Cross-test state: per-stratum measurements for the SCALE.json write.
_STATE = {}


def _aggregate(archive):
    """The full streaming figure battery over one open archive."""
    streaming_full_disallow_trend(archive)
    streaming_per_agent_trend(archive)
    streaming_allow_and_removal_trend(archive)
    streaming_coverage_table(archive)


def test_per_stratum_pipeline(tmp_path_factory, record_timing):
    root = tmp_path_factory.mktemp("scale")
    for stratum in STRATA:
        config = stratum_config(stratum, BASE)

        start = time.perf_counter()
        population = build_web_population(config)
        build_seconds = time.perf_counter() - start
        record_timing(f"bench_scale_strata::{stratum}::build", build_seconds)

        n_sites = len(population.stable)
        shards = max(1, -(-n_sites // TARGET_SHARD_SITES))
        start = time.perf_counter()
        archive_root = collect_shard_archives(
            population, root / stratum, shards=shards
        )
        collect_seconds = time.perf_counter() - start
        record_timing(f"bench_scale_strata::{stratum}::collect", collect_seconds)

        with ArchiveSet.open(archive_root) as archive:
            tracemalloc.start()
            start = time.perf_counter()
            _aggregate(archive)
            aggregate_seconds = time.perf_counter() - start
            _, peak_bytes = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        record_timing(
            f"bench_scale_strata::{stratum}::aggregate", aggregate_seconds
        )

        _STATE[stratum] = {
            "sites": n_sites,
            "shards": shards,
            "build_seconds": round(build_seconds, 6),
            "collect_seconds": round(collect_seconds, 6),
            "aggregate_seconds": round(aggregate_seconds, 6),
            "aggregate_peak_bytes": peak_bytes,
        }
    _STATE["population"] = population  # largest stratum, reused below

    small = _STATE["top-10k"]["aggregate_peak_bytes"]
    large = _STATE["top-100k"]["aggregate_peak_bytes"]
    ratio = large / small if small else float("inf")
    _STATE["memory_ratio"] = ratio
    growth = _STATE["top-100k"]["sites"] / _STATE["top-10k"]["sites"]
    assert growth >= 5.0, "strata must actually grow for the ratio to mean anything"
    assert ratio <= MEMORY_BUDGET_RATIO, (
        f"streaming aggregation peak grew {ratio:.2f}x while sites grew "
        f"{growth:.1f}x; budget is {MEMORY_BUDGET_RATIO:.1f}x (flat memory)"
    )


def test_worker_efficiency_and_scale_report(tmp_path_factory, record_timing):
    population = _STATE["population"]
    shards = max(EFFICIENCY_WORKERS, _STATE["top-100k"]["shards"])
    root = tmp_path_factory.mktemp("efficiency")

    start = time.perf_counter()
    collect_shard_archives(population, root / "serial", shards=shards, workers=1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    collect_shard_archives(
        population,
        root / "parallel",
        shards=shards,
        workers=EFFICIENCY_WORKERS,
        mode="auto",
    )
    parallel_seconds = time.perf_counter() - start
    record_timing(
        "bench_scale_strata::collect_parallel_x4", parallel_seconds
    )

    efficiency = (
        serial_seconds / (EFFICIENCY_WORKERS * parallel_seconds)
        if parallel_seconds
        else float("inf")
    )
    cpu_count = os.cpu_count() or 1

    strata_payload = {s: _STATE[s] for s in STRATA}
    OUTPUT_DIR.mkdir(exist_ok=True)
    SCALE_PATH.write_text(
        json.dumps(
            {
                "schema_version": 1,
                "cpu_count": cpu_count,
                "strata": strata_payload,
                "memory_ratio": round(_STATE["memory_ratio"], 4),
                "memory_budget_ratio": MEMORY_BUDGET_RATIO,
                "efficiency_workers": EFFICIENCY_WORKERS,
                "serial_collect_seconds": round(serial_seconds, 6),
                "parallel_collect_seconds": round(parallel_seconds, 6),
                "worker_efficiency": round(efficiency, 4),
                "efficiency_floor": EFFICIENCY_FLOOR,
            },
            indent=2,
        )
        + "\n"
    )

    lines = ["Scale strata: build / collect / aggregate seconds, peak KiB", ""]
    for stratum in STRATA:
        row = _STATE[stratum]
        lines.append(
            f"{stratum:>9}  sites={row['sites']:<5} shards={row['shards']:<3}"
            f" build={row['build_seconds']:.3f}s"
            f" collect={row['collect_seconds']:.3f}s"
            f" aggregate={row['aggregate_seconds']:.3f}s"
            f" peak={row['aggregate_peak_bytes'] / 1024:.0f}KiB"
        )
    lines.append("")
    lines.append(
        f"memory ratio top-100k/top-10k: {_STATE['memory_ratio']:.2f}x "
        f"(budget {MEMORY_BUDGET_RATIO:.1f}x); worker efficiency at "
        f"{EFFICIENCY_WORKERS} workers: {efficiency:.2f} "
        f"(floor {EFFICIENCY_FLOOR}, gated when cpu_count >= 4; "
        f"this host: {cpu_count})"
    )
    (OUTPUT_DIR / "scale_strata.txt").write_text("\n".join(lines) + "\n")

    # The floor is only meaningful with real cores to spread over.
    if cpu_count >= EFFICIENCY_WORKERS:
        assert efficiency >= EFFICIENCY_FLOOR, (
            f"shard-crawl efficiency {efficiency:.2f} at "
            f"{EFFICIENCY_WORKERS} workers is under the "
            f"{EFFICIENCY_FLOOR} floor"
        )
