"""Training-data assembly with real-time ai.txt checks.

Section 2.2 describes ai.txt's distinguishing property: it is read when
an AI model attempts to *download media*, so owners can change
permissions even for URLs collected long ago.  :class:`MediaHarvester`
models that stage of the pipeline: given a URL list (e.g. produced by
an earlier crawl), it re-consults each host's ai.txt at download time
and only keeps the media the current policy permits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.aitxt import AITXT_PATH, AiTxtPolicy
from ..net.errors import NetError
from ..net.http import Headers, Request
from ..net.transport import Network

__all__ = ["HarvestItem", "HarvestReport", "MediaHarvester"]


@dataclass(frozen=True)
class HarvestItem:
    """One media URL considered for training.

    Attributes:
        host: Source host.
        path: Media path.
        downloaded: Whether the harvester fetched it.
        reason: Why it was kept or skipped.
    """

    host: str
    path: str
    downloaded: bool
    reason: str


@dataclass
class HarvestReport:
    """The outcome of one harvesting pass."""

    items: List[HarvestItem] = field(default_factory=list)

    @property
    def downloaded(self) -> List[HarvestItem]:
        return [i for i in self.items if i.downloaded]

    @property
    def skipped(self) -> List[HarvestItem]:
        return [i for i in self.items if not i.downloaded]


class MediaHarvester:
    """Downloads media for training, honoring ai.txt in real time.

    Args:
        network: Transport to fetch over.
        user_agent: UA presented for both ai.txt and media fetches.
        respects_aitxt: When False the harvester models a trainer that
            ignores the protocol entirely (its legal-enforceability
            question is exactly the paper's point).
    """

    def __init__(
        self,
        network: Network,
        user_agent: str = "repro-trainer/1.0",
        respects_aitxt: bool = True,
    ):
        self.network = network
        self.user_agent = user_agent
        self.respects_aitxt = respects_aitxt

    def _fetch(self, host: str, path: str):
        return self.network.request(
            Request(host=host, path=path, headers=Headers({"User-Agent": self.user_agent}))
        )

    def _load_aitxt(self, host: str) -> Optional[AiTxtPolicy]:
        """Fetch ai.txt fresh -- the protocol's real-time property."""
        try:
            response = self._fetch(host, AITXT_PATH)
        except NetError:
            return None
        if response.status != 200:
            return None
        return AiTxtPolicy(response.text)

    def harvest(self, urls: List[Tuple[str, str]]) -> HarvestReport:
        """Attempt to download each ``(host, path)`` for training."""
        report = HarvestReport()
        for host, path in urls:
            if self.respects_aitxt:
                policy = self._load_aitxt(host)
                if policy is not None and not policy.may_train(path):
                    report.items.append(
                        HarvestItem(host, path, False, "ai.txt disallows training use")
                    )
                    continue
            try:
                response = self._fetch(host, path)
            except NetError as exc:
                report.items.append(HarvestItem(host, path, False, str(exc)))
                continue
            if response.status != 200:
                report.items.append(
                    HarvestItem(host, path, False, f"HTTP {response.status}")
                )
                continue
            reason = "no ai.txt served" if self.respects_aitxt else "protocol ignored"
            if self.respects_aitxt and self._load_aitxt(host) is not None:
                reason = "ai.txt permits training use"
            report.items.append(HarvestItem(host, path, True, reason))
        return report
