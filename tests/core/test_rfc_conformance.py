"""RFC 9309 conformance corpus.

Table-driven cases adapted from the behaviors Google's open-source
robots.txt parser documents and tests (the reference implementation the
paper relies on): user-agent grouping and case rules, path matching
with ``*``/``$``, percent-encoding, precedence, and the assorted
syntactic leniencies real files depend on.
"""

import pytest

from repro.core.policy import RobotsPolicy

# Each case: (robots.txt, user-agent, path, expected_allowed, label)
CASES = [
    # -- group selection -------------------------------------------------------
    ("User-agent: FooBot\nDisallow: /\n", "FooBot", "/x/y", False, "simple"),
    ("User-agent: FooBot\nDisallow: /\n", "BarBot", "/x/y", True, "other agent free"),
    ("", "FooBot", "/", True, "empty file allows"),
    ("User-agent: *\nDisallow: /\n", "FooBot", "/x", False, "wildcard group"),
    (
        "User-agent: FooBot\nAllow: /\nUser-agent: *\nDisallow: /\n",
        "FooBot", "/x", True, "specific shadows wildcard",
    ),
    (
        "User-agent: FooBot\nUser-agent: BarBot\nDisallow: /\n",
        "BarBot", "/x", False, "multi-agent group",
    ),
    (
        "user-agent: foobot\ndisallow: /\n",
        "FooBot", "/x", False, "lowercase directives and agent",
    ),
    (
        "USER-AGENT: FOOBOT\nDISALLOW: /\n",
        "FooBot", "/x", False, "uppercase directives and agent",
    ),
    (
        "User-agent: FooBot\nDisallow: /a\nUser-agent: FooBot\nDisallow: /b\n",
        "FooBot", "/b/x", False, "same-agent groups merge",
    ),
    (
        "User-agent: FooBot-News\nDisallow: /\nUser-agent: FooBot\nAllow: /\n",
        "FooBot-News", "/x", False, "longest agent token wins",
    ),
    # -- rules before groups / malformed -----------------------------------------
    ("Disallow: /\n", "FooBot", "/x", True, "orphan rule ignored"),
    (
        "Disallow: /a\nUser-agent: FooBot\nDisallow: /b\n",
        "FooBot", "/a/x", True, "orphan rule not inherited",
    ),
    ("this is garbage\nUser-agent: FooBot\nDisallow: /\n", "FooBot", "/x", False,
     "garbage line skipped"),
    # -- path matching ------------------------------------------------------------
    ("User-agent: FooBot\nDisallow: /fish\n", "FooBot", "/fish.html", False, "prefix"),
    ("User-agent: FooBot\nDisallow: /fish\n", "FooBot", "/catfish", True, "not substring"),
    ("User-agent: FooBot\nDisallow: /fish/\n", "FooBot", "/fish", True, "dir needs slash"),
    ("User-agent: FooBot\nDisallow: /*.php\n", "FooBot", "/x/y.php?q=1", False, "star ext"),
    ("User-agent: FooBot\nDisallow: /*.php$\n", "FooBot", "/x.php?q=1", True, "dollar anchor"),
    ("User-agent: FooBot\nDisallow: /fish*.php\n", "FooBot", "/fishheads/catfish.php", False,
     "star middle"),
    ("User-agent: FooBot\nDisallow: /a%3cd.html\n", "FooBot", "/a%3Cd.html", False,
     "percent case-insensitive"),
    ("User-agent: FooBot\nDisallow: /a%3Cd.html\n", "FooBot", "/a<d.html", False,
     "encoded matches decoded"),
    # -- precedence ------------------------------------------------------------------
    (
        "User-agent: FooBot\nAllow: /p\nDisallow: /\n",
        "FooBot", "/page", True, "longer allow wins",
    ),
    (
        "User-agent: FooBot\nAllow: /folder\nDisallow: /folder\n",
        "FooBot", "/folder/page", True, "tie goes to allow",
    ),
    (
        "User-agent: FooBot\nDisallow: /folder/private\nAllow: /folder\n",
        "FooBot", "/folder/private/x", False, "longer disallow wins",
    ),
    (
        "User-agent: FooBot\nAllow: /page\nDisallow: /*.html\n",
        "FooBot", "/page.html", False, "wildcard length counts",
    ),
    # -- empty values -----------------------------------------------------------------
    ("User-agent: FooBot\nDisallow:\n", "FooBot", "/x", True, "empty disallow"),
    ("User-agent: FooBot\nAllow:\nDisallow: /\n", "FooBot", "/x", False,
     "empty allow is no-op"),
    # -- whitespace and comments ---------------------------------------------------------
    ("  User-agent :  FooBot  \n  Disallow :  /  \n", "FooBot", "/x", False,
     "whitespace tolerated"),
    ("User-agent: FooBot # the bot\nDisallow: / # all\n", "FooBot", "/x", False,
     "inline comments stripped"),
    ("# intro\n\nUser-agent: FooBot\n# note\n\nDisallow: /\n", "FooBot", "/x", False,
     "comments and blanks anywhere"),
    # -- robots.txt itself ------------------------------------------------------------------
    ("User-agent: *\nDisallow: /\n", "FooBot", "/robots.txt", True,
     "robots.txt always fetchable"),
    # -- version suffixes in crawler UA strings ------------------------------------------------
    ("User-agent: FooBot\nDisallow: /\n", "FooBot/2.1", "/x", False,
     "crawler version ignored"),
    # -- sitemap interleaving -------------------------------------------------------------------
    (
        "User-agent: FooBot\nSitemap: https://e.com/s.xml\nDisallow: /\n",
        "FooBot", "/x", False, "sitemap does not break group",
    ),
    # -- unknown directives skipped ----------------------------------------------------------------
    (
        "User-agent: FooBot\nNoindex: /x\nDisallow: /\n",
        "FooBot", "/y", False, "unknown directive skipped",
    ),
    # -- $ inside pattern is literal-ish edge ------------------------------------------------------
    ("User-agent: FooBot\nDisallow: /x$\n", "FooBot", "/x", False, "anchored exact"),
    ("User-agent: FooBot\nDisallow: /x$\n", "FooBot", "/x/y", True, "anchored rejects longer"),
]


@pytest.mark.parametrize(
    "robots,agent,path,expected,label",
    CASES,
    ids=[case[4] for case in CASES],
)
def test_rfc_conformance(robots, agent, path, expected, label):
    policy = RobotsPolicy(robots)
    assert policy.is_allowed(agent, path) is expected, label
