"""Deterministic domain-name generation for the synthetic web.

Every site in the simulated populations needs a stable, unique,
realistic-looking domain.  Generation is purely positional: domain *i*
is always the same string, so experiments are reproducible and site
attributes can be derived from the domain alone.
"""

from __future__ import annotations

from typing import List

__all__ = ["domain_name", "domain_names", "artist_domain"]

_WORDS_A = [
    "daily", "global", "prime", "urban", "north", "bright", "swift",
    "blue", "clear", "open", "true", "fresh", "grand", "metro", "civic",
    "solar", "lunar", "rapid", "vivid", "noble", "arc", "peak", "core",
    "pulse", "nova", "echo", "terra", "astra", "delta", "vertex",
]

_WORDS_B = [
    "news", "review", "market", "journal", "times", "post", "wire",
    "digest", "report", "gazette", "store", "shop", "tech", "media",
    "hub", "base", "works", "labs", "forge", "press", "board", "index",
    "guide", "atlas", "vault", "point", "line", "stream", "field",
    "craft",
]

_TLDS = [".com", ".net", ".org", ".io", ".co", ".info", ".biz", ".us"]

_FIRST_NAMES = [
    "ava", "ben", "cora", "dane", "elle", "finn", "gia", "hugo", "iris",
    "jude", "kira", "liam", "mara", "nico", "orla", "pax", "quinn",
    "rhea", "sage", "theo", "uma", "vera", "wren", "xavi", "yara", "zane",
]

_LAST_NAMES = [
    "abbott", "blake", "carver", "duarte", "ellis", "flores", "grant",
    "hale", "ibarra", "jensen", "keller", "lane", "moreau", "nakata",
    "ortega", "pryce", "reyes", "sato", "torres", "ueda", "vance",
    "walsh", "xu", "yates", "zhou",
]


def domain_name(index: int) -> str:
    """The domain for site *index* (stable across runs).

    >>> domain_name(0)
    'dailynews.com'
    >>> domain_name(0) == domain_name(0)
    True
    """
    a = _WORDS_A[index % len(_WORDS_A)]
    b = _WORDS_B[(index // len(_WORDS_A)) % len(_WORDS_B)]
    tld = _TLDS[(index // (len(_WORDS_A) * len(_WORDS_B))) % len(_TLDS)]
    serial = index // (len(_WORDS_A) * len(_WORDS_B) * len(_TLDS))
    suffix = str(serial) if serial else ""
    return f"{a}{b}{suffix}{tld}"


def domain_names(count: int, start: int = 0) -> List[str]:
    """*count* consecutive domains starting at *start*."""
    return [domain_name(start + i) for i in range(count)]


def artist_domain(index: int) -> str:
    """A personal-site domain for artist *index*.

    >>> artist_domain(0)
    'avaabbottart.com'
    """
    first = _FIRST_NAMES[index % len(_FIRST_NAMES)]
    last = _LAST_NAMES[(index // len(_FIRST_NAMES)) % len(_LAST_NAMES)]
    serial = index // (len(_FIRST_NAMES) * len(_LAST_NAMES))
    suffix = str(serial) if serial else ""
    return f"{first}{last}{suffix}art.com"
