"""Unit tests for the experiment runners (tiny populations).

The benches exercise the runners at full scale with band assertions;
these tests pin down the *structure* of every runner's output -- ids,
rendered text, metric keys -- quickly enough for the main suite.
"""

import pytest

from repro.report.experiments import (
    build_longitudinal_bundle,
    run_appb2_parser_comparison,
    run_change_taxonomy,
    run_ext_adoption_by_category,
    run_figure2,
    run_figure3,
    run_figure4,
    run_sec22_meta_tags,
    run_sec62_active_blocking,
    run_sec63_cloudflare,
    run_sec81_mistakes,
    run_survey_crosstabs,
    run_survey_tables,
    run_table1_compliance,
    run_table2_artists,
    run_table3,
    run_tables9_12_codebooks,
)
from repro.web.population import PopulationConfig, build_web_population

TINY = PopulationConfig(
    universe_size=700, list_size=450, top5k_cut=60, audit_size=120, seed=23
)


@pytest.fixture(scope="module")
def bundle():
    return build_longitudinal_bundle(TINY)


@pytest.fixture(scope="module")
def population():
    return build_web_population(TINY)


class TestLongitudinalRunners:
    def test_figure2_structure(self, bundle):
        result = run_figure2(bundle)
        assert result.experiment_id == "figure2"
        assert "Figure 2" in result.text and "CSV:" in result.text
        assert {"final_top5k_pct", "final_other_pct"} <= set(result.metrics)

    def test_figure3_structure(self, bundle):
        result = run_figure3(bundle)
        assert result.experiment_id == "figure3"
        assert "GPTBot" in result.text
        assert "final_GPTBot" in result.metrics

    def test_figure4_structure(self, bundle):
        result = run_figure4(bundle)
        assert "Table 4" in result.text
        assert result.metrics["total_removals"] >= 0

    def test_table3_structure(self, bundle):
        result = run_table3(bundle)
        assert result.metrics["n_snapshots"] == 15

    def test_change_taxonomy_structure(self, bundle):
        result = run_change_taxonomy(bundle)
        assert "change kind" in result.text
        assert "n_no-change" in result.metrics

    def test_category_adoption_structure(self, bundle):
        result = run_ext_adoption_by_category(bundle)
        assert any(key.startswith("pct_") for key in result.metrics)


class TestPopulationRunners:
    def test_sec62(self, population):
        result = run_sec62_active_blocking(population=population)
        assert "95% CI" in result.text
        assert 0 <= result.metrics["pct_blocking"] <= 100

    def test_sec63(self, population):
        result = run_sec63_cloudflare(population=population)
        assert result.metrics["n_greybox_blocked_uas"] > 0

    def test_sec22(self, population):
        result = run_sec22_meta_tags(population=population)
        assert "noai" in result.text

    def test_appb2(self, population):
        result = run_appb2_parser_comparison(population=population)
        assert result.metrics["pct_sites_disagree"] >= 0

    def test_sec81(self, population):
        result = run_sec81_mistakes(population=population)
        assert 0 <= result.metrics["pct_mistakes"] <= 100


class TestStandaloneRunners:
    def test_table1(self):
        result = run_table1_compliance(n_apps=600)
        assert "Bytespider" in result.text
        assert result.metrics["n_visited"] == 9

    def test_table2(self):
        result = run_table2_artists(n_artists=400)
        assert "Squarespace" in result.text
        assert "ToS on AI training" in result.text

    def test_survey(self):
        result = run_survey_tables()
        assert "Table 5" in result.text and "Table 8" in result.text

    def test_codebooks(self):
        result = run_tables9_12_codebooks()
        assert "Table 12" in result.text

    def test_crosstabs(self):
        result = run_survey_crosstabs()
        assert "chi2" in result.text
