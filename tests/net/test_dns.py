"""Tests for repro.net.dns."""

from repro.net.dns import DnsZone, ProviderInfra

SQUARESPACE = ProviderInfra(
    name="Squarespace",
    infra_domains=("ext-cust.squarespace.com",),
    ip_networks=("198.185.159.0/24",),
)
CARBONMADE = ProviderInfra(
    name="Carbonmade",
    apex_domains=("carbonmade.com",),
    ip_networks=("203.0.113.0/28",),
)


class TestProviderInfra:
    def test_owns_subdomain(self):
        assert CARBONMADE.owns_subdomain("jane.carbonmade.com")
        assert not CARBONMADE.owns_subdomain("carbonmade.com")
        assert not CARBONMADE.owns_subdomain("carbonmade.com.evil.com")

    def test_owns_host(self):
        assert SQUARESPACE.owns_host("ext-cust.squarespace.com")
        assert SQUARESPACE.owns_host("a.ext-cust.squarespace.com")
        assert not SQUARESPACE.owns_host("squarespace.com.evil.net")

    def test_owns_address(self):
        assert SQUARESPACE.owns_address("198.185.159.145")
        assert not SQUARESPACE.owns_address("10.0.0.1")
        assert not SQUARESPACE.owns_address("not-an-ip")


class TestDnsZone:
    def test_a_record_resolution(self):
        zone = DnsZone()
        zone.add_a("example.com", "192.0.2.1")
        resolution = zone.resolve("example.com")
        assert resolution.address == "192.0.2.1"
        assert resolution.cname_chain == ()

    def test_cname_chain_followed(self):
        zone = DnsZone()
        zone.add_cname("art.example.com", "proxy.host.net")
        zone.add_cname("proxy.host.net", "ext-cust.squarespace.com")
        zone.add_a("ext-cust.squarespace.com", "198.185.159.145")
        resolution = zone.resolve("art.example.com")
        assert resolution.terminal_host == "ext-cust.squarespace.com"
        assert resolution.address == "198.185.159.145"

    def test_unresolvable(self):
        assert DnsZone().resolve("nope.com").address is None

    def test_cname_loop_bounded(self):
        zone = DnsZone()
        zone.add_cname("a.com", "b.com")
        zone.add_cname("b.com", "a.com")
        resolution = zone.resolve("a.com")
        assert resolution.address is None
        assert len(resolution.cname_chain) == DnsZone.MAX_CHAIN

    def test_invalid_a_record_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            DnsZone().add_a("x.com", "999.1.1.1")

    def test_remove(self):
        zone = DnsZone()
        zone.add_a("x.com", "192.0.2.1")
        zone.remove("x.com")
        assert zone.resolve("x.com").address is None


class TestAttribution:
    PROVIDERS = [SQUARESPACE, CARBONMADE]

    def test_subdomain_attribution(self):
        zone = DnsZone()
        assert zone.attribute("jane.carbonmade.com", self.PROVIDERS) == "Carbonmade"

    def test_cname_attribution(self):
        zone = DnsZone()
        zone.add_cname("www.artist.com", "ext-cust.squarespace.com")
        assert zone.attribute("www.artist.com", self.PROVIDERS) == "Squarespace"

    def test_a_record_attribution(self):
        zone = DnsZone()
        zone.add_a("artist.com", "198.185.159.7")
        assert zone.attribute("artist.com", self.PROVIDERS) == "Squarespace"

    def test_unattributed(self):
        zone = DnsZone()
        zone.add_a("self-hosted.net", "192.0.2.200")
        assert zone.attribute("self-hosted.net", self.PROVIDERS) is None

    def test_subdomain_beats_dns(self):
        zone = DnsZone()
        zone.add_a("jane.carbonmade.com", "198.185.159.9")
        assert zone.attribute("jane.carbonmade.com", self.PROVIDERS) == "Carbonmade"
