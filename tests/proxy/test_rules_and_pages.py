"""Tests for repro.proxy rules, challenges, and fingerprinting."""

from repro.net.http import Request
from repro.proxy.challenges import (
    PageKind,
    block_page,
    captcha_page,
    challenge_page,
    classify_page,
    labyrinth_page,
)
from repro.proxy.fingerprint import (
    AUTOMATION_HEADER,
    automation_signals,
    is_automated,
    is_library_client,
)
from repro.proxy.rules import Action, BlockRule, RuleSet
from repro.agents.useragent import DEFAULT_BROWSER_UA


def req(ua="", ip="198.51.100.1", path="/", **headers):
    merged = {"User-Agent": ua}
    merged.update(headers)
    return Request(host="e.com", path=path, headers=merged, client_ip=ip)


class TestPageClassification:
    def test_each_generator_classified(self):
        assert classify_page(block_page()) is PageKind.BLOCK
        assert classify_page(challenge_page()) is PageKind.CHALLENGE
        assert classify_page(captcha_page()) is PageKind.CAPTCHA
        assert classify_page(labyrinth_page()) is PageKind.LABYRINTH

    def test_ordinary_content(self):
        assert classify_page("<html><body>hello art</body></html>") is PageKind.CONTENT

    def test_handwritten_block_page_detected(self):
        assert classify_page("<h1>Access Denied</h1>") is PageKind.BLOCK

    def test_handwritten_challenge_detected(self):
        assert classify_page("Just a moment...") is PageKind.CHALLENGE

    def test_host_embedded_in_pages(self):
        assert "example.net" in block_page(host="example.net")
        assert "example.net" in challenge_page(host="example.net")

    def test_labyrinth_links_onward(self):
        assert "/archive/" in labyrinth_page(3)


class TestBlockRule:
    def test_ua_pattern_match(self):
        rule = BlockRule(Action.BLOCK, ua_patterns=["Bytespider"])
        assert rule.matches(req("Mozilla/5.0 (compatible; Bytespider)"))
        assert not rule.matches(req("Googlebot"))

    def test_trailing_slash_pattern(self):
        rule = BlockRule(Action.BLOCK, ua_patterns=["GPTBot/"])
        assert rule.matches(req("GPTBot/1.1"))
        assert not rule.matches(req("GPTBot"))

    def test_network_match(self):
        rule = BlockRule(Action.BLOCK, networks=["100.64.5.0/24"])
        assert rule.matches(req("x", ip="100.64.5.77"))
        assert not rule.matches(req("x", ip="100.64.6.1"))

    def test_path_prefix(self):
        rule = BlockRule(Action.BLOCK, path_prefix="/private/")
        assert rule.matches(req("x", path="/private/a"))
        assert not rule.matches(req("x", path="/public"))

    def test_conditions_are_anded(self):
        rule = BlockRule(
            Action.BLOCK, ua_patterns=["bot"], networks=["100.64.0.0/10"]
        )
        assert rule.matches(req("somebot", ip="100.64.1.1"))
        assert not rule.matches(req("somebot", ip="192.0.2.1"))
        assert not rule.matches(req("human", ip="100.64.1.1"))

    def test_empty_conditions_match_everything(self):
        assert BlockRule(Action.BLOCK).matches(req("anything"))

    def test_invalid_ip_never_matches_networks(self):
        rule = BlockRule(Action.BLOCK, networks=["100.64.0.0/10"])
        assert not rule.matches(req("x", ip="garbage"))


class TestRuleSet:
    def test_first_match_wins(self):
        rules = RuleSet(
            [
                BlockRule(Action.ALLOW, ua_patterns=["GoodBot"]),
                BlockRule(Action.BLOCK, ua_patterns=["Bot"]),
            ]
        )
        assert rules.decide(req("GoodBot/1.0")) is None
        assert rules.decide(req("BadBot/1.0")) is Action.BLOCK

    def test_no_match_returns_none(self):
        assert RuleSet().decide(req("x")) is None

    def test_matching_rule_returns_allow_rules_too(self):
        allow = BlockRule(Action.ALLOW, ua_patterns=["GoodBot"])
        rules = RuleSet([allow])
        assert rules.matching_rule(req("GoodBot")) is allow

    def test_blocking_user_agents_factory(self):
        rules = RuleSet.blocking_user_agents(["Claudebot", "anthropic-ai"])
        assert rules.decide(req("Claudebot/1.0")) is Action.BLOCK
        assert rules.decide(req("anthropic-ai")) is Action.BLOCK
        assert rules.decide(req(DEFAULT_BROWSER_UA)) is None


class TestFingerprint:
    def test_plain_browser_not_automated(self):
        assert not is_automated(req(DEFAULT_BROWSER_UA))

    def test_automation_header_detected(self):
        request = req(DEFAULT_BROWSER_UA, **{AUTOMATION_HEADER: "webdriver,headless"})
        assert automation_signals(request) == ["webdriver", "headless"]
        assert is_automated(request)

    def test_library_clients_detected(self):
        for ua in ("python-requests/2.32", "curl/8.0", "Scrapy/2.11"):
            assert is_library_client(ua)
            assert is_automated(req(ua))

    def test_self_identified_crawler_is_automation(self):
        assert is_automated(req("Mozilla/5.0 (compatible; GPTBot/1.1)"))

    def test_empty_ua_is_automation(self):
        assert is_automated(req(""))
