"""repro: reproduction of "Somesite I Used To Crawl" (IMC 2025).

A complete, self-contained model of the paper's measurement setting --
an RFC 9309 robots.txt engine, an HTTP substrate with in-memory and
real-socket transports, the Table 1 AI crawler fleet, reverse-proxy
active blocking (including a Cloudflare simulation), a synthetic web
population whose robots.txt files evolve over October 2022-October
2024, the artist hosting ecosystem, and the artist survey -- plus the
measurement pipelines that regenerate every table and figure in the
paper's evaluation.

Quick start::

    from repro.core import RobotsPolicy, classify
    policy = RobotsPolicy("User-agent: GPTBot\\nDisallow: /")
    policy.is_allowed("GPTBot", "/art/")        # False

    from repro.report import run_table1_compliance
    print(run_table1_compliance().text)

Subpackages: ``core`` (robots.txt engine), ``agents`` (UA registry),
``net`` (HTTP substrate), ``proxy`` (active blocking), ``crawlers``
(crawl engine + fleet), ``web`` (synthetic web), ``measure``
(methodology pipelines), ``survey`` (user study), ``report``
(experiment runners and rendering).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
