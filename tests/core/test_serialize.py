"""Tests for repro.core.serialize (authoring and surgical edits)."""

import pytest

from repro.core.classify import RestrictionLevel, classify, explicitly_allows
from repro.core.policy import RobotsPolicy
from repro.core.serialize import (
    RobotsBuilder,
    add_allow_group,
    add_disallow_group,
    agents_mentioned,
    remove_agent_rules,
)


class TestRobotsBuilder:
    def test_single_group(self):
        text = RobotsBuilder().group("*").disallow("/").build()
        assert "User-agent: *" in text
        assert "Disallow: /" in text

    def test_multi_agent_group(self):
        text = RobotsBuilder().group("GPTBot", "CCBot").disallow("/").build()
        policy = RobotsPolicy(text)
        assert not policy.is_allowed("GPTBot", "/x")
        assert not policy.is_allowed("CCBot", "/x")

    def test_allow_and_disallow(self):
        text = RobotsBuilder().group("*").disallow("/").allow("/pub/").build()
        policy = RobotsPolicy(text)
        assert policy.is_allowed("bot", "/pub/a")
        assert not policy.is_allowed("bot", "/priv")

    def test_sitemap_rendered(self):
        text = RobotsBuilder().group("*").disallow("").sitemap("https://e.com/s.xml").build()
        assert RobotsPolicy(text).sitemaps == ["https://e.com/s.xml"]

    def test_crawl_delay_integer_rendering(self):
        text = RobotsBuilder().group("*").crawl_delay(5).build()
        assert "Crawl-delay: 5" in text

    def test_comments_rendered(self):
        text = RobotsBuilder().comment("top").group("*", comment="grp").disallow("/").build()
        assert "# top" in text and "# grp" in text

    def test_rules_require_group(self):
        with pytest.raises(ValueError):
            RobotsBuilder().disallow("/")

    def test_group_requires_agents(self):
        with pytest.raises(ValueError):
            RobotsBuilder().group()

    def test_roundtrip_parses_cleanly(self):
        from repro.core.diagnostics import lint, Severity

        text = (
            RobotsBuilder()
            .group("Googlebot")
            .allow("/")
            .group("GPTBot", "ChatGPT-User")
            .disallow("/")
            .group("*")
            .disallow("/secret/")
            .build()
        )
        assert not [f for f in lint(text) if f.severity is not Severity.NOTE]


class TestAddGroups:
    def test_add_disallow_group_to_empty(self):
        text = add_disallow_group("", ["GPTBot"])
        assert classify(text, "GPTBot").level is RestrictionLevel.FULL

    def test_add_disallow_group_preserves_existing(self):
        base = "User-agent: *\nDisallow: /secret/\n"
        text = add_disallow_group(base, ["GPTBot"])
        policy = RobotsPolicy(text)
        assert not policy.is_allowed("GPTBot", "/")
        assert not policy.is_allowed("otherbot", "/secret/x")
        assert policy.is_allowed("otherbot", "/open")

    def test_add_disallow_multiple_agents_one_group(self):
        text = add_disallow_group("", ["GPTBot", "CCBot"])
        assert classify(text, "GPTBot").level is RestrictionLevel.FULL
        assert classify(text, "CCBot").level is RestrictionLevel.FULL

    def test_add_disallow_custom_paths(self):
        text = add_disallow_group("", ["GPTBot"], paths=["/img/", "/art/"])
        assert classify(text, "GPTBot").level is RestrictionLevel.PARTIAL

    def test_add_allow_group(self):
        text = add_allow_group("User-agent: *\nDisallow: /private/\n", ["GPTBot"])
        assert explicitly_allows(text, "GPTBot")


class TestRemoveAgentRules:
    def test_remove_sole_agent_group(self):
        base = "User-agent: GPTBot\nDisallow: /\n\nUser-agent: *\nDisallow: /x/\n"
        text = remove_agent_rules(base, ["GPTBot"])
        assert classify(text, "GPTBot").level is RestrictionLevel.NO_RESTRICTIONS
        assert "gptbot" not in text.lower()
        # Wildcard group untouched.
        assert not RobotsPolicy(text).is_allowed("bot", "/x/a")

    def test_remove_one_agent_from_shared_group(self):
        base = "User-agent: GPTBot\nUser-agent: CCBot\nDisallow: /\n"
        text = remove_agent_rules(base, ["GPTBot"])
        assert classify(text, "CCBot").level is RestrictionLevel.FULL
        assert classify(text, "GPTBot").level is RestrictionLevel.NO_RESTRICTIONS

    def test_remove_is_case_insensitive(self):
        base = "User-agent: gptbot\nDisallow: /\n"
        text = remove_agent_rules(base, ["GPTBot"])
        assert "gptbot" not in text.lower()

    def test_rest_of_file_preserved(self):
        base = (
            "# policy file\n"
            "User-agent: Googlebot\nAllow: /\n\n"
            "User-agent: GPTBot\nDisallow: /\n\n"
            "Sitemap: https://e.com/s.xml\n"
        )
        text = remove_agent_rules(base, ["GPTBot"])
        assert "# policy file" in text
        assert "User-agent: Googlebot" in text
        assert "Sitemap: https://e.com/s.xml" in text

    def test_remove_absent_agent_is_noop_semantically(self):
        base = "User-agent: *\nDisallow: /\n"
        text = remove_agent_rules(base, ["GPTBot"])
        assert not RobotsPolicy(text).is_allowed("bot", "/x")

    def test_remove_from_empty(self):
        assert remove_agent_rules("", ["GPTBot"]) == ""


class TestAgentsMentioned:
    def test_order_and_dedup(self):
        base = (
            "User-agent: GPTBot\nDisallow: /\n"
            "User-agent: CCBot\nUser-agent: gptbot\nDisallow: /a\n"
        )
        assert agents_mentioned(base) == ["gptbot", "ccbot"]

    def test_empty(self):
        assert agents_mentioned("") == []
