"""Thematic coding of open-ended survey responses (Appendix D.3).

The paper's first author performed iterative open coding following
Braun & Clarke's thematic-analysis approach; the codebooks in Tables
9-12 are the result.  This module encodes those codebooks and provides
a deterministic keyword coder, so the synthetic open responses (which
are generated *from* theme templates) can be re-coded by the analysis
pipeline without circularity at the statistics level: the pipeline
counts whatever the coder finds in the text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "Theme",
    "Codebook",
    "ACTIONS_CODEBOOK",
    "NO_ADOPT_CODEBOOK",
    "ENABLE_CODEBOOK",
    "DISTRUST_CODEBOOK",
    "code_response",
]


@dataclass(frozen=True)
class Theme:
    """One codebook theme.

    Attributes:
        name: Theme label.
        description: What the theme captures.
        example: A representative quote (from the paper's tables).
        keywords: Lowercased trigger phrases for the keyword coder.
    """

    name: str
    description: str
    example: str
    keywords: Tuple[str, ...]


@dataclass(frozen=True)
class Codebook:
    """A named collection of themes."""

    name: str
    themes: Tuple[Theme, ...]

    def theme_names(self) -> List[str]:
        return [t.name for t in self.themes]


#: Table 9: other actions taken by artists in response to AI art.
ACTIONS_CODEBOOK = Codebook(
    "other-actions",
    (
        Theme("modify-post", "Artists alter the content or format of shared artwork",
              "Overlaying watermarks or art filters to modify the artwork",
              ("watermark", "filter", "lower resolution", "modify the artwork")),
        Theme("switch-platforms", "Artists migrate to alternative sites",
              "Use Cara instead of Instagram",
              ("cara", "instead of instagram", "switch", "migrate", "left the platform")),
        Theme("raise-awareness", "Artists publicly highlight issues",
              "Spreading awareness about the damage AI-generated art does",
              ("awareness", "speaking out", "educate")),
        Theme("unionize", "Artists organize collectively",
              "Connecting with groups of professional artists",
              ("union", "collective", "organize", "groups of professional artists")),
        Theme("change-career", "Artists pivot professionally",
              "I left school and am taking a gap year to reevaluate my life",
              ("gap year", "career", "left school", "quit")),
        Theme("misc", "Additional strategies",
              "Using block lists to block AI art accounts",
              ("block list", "blocklist")),
    ),
)

#: Table 10: why artists would not adopt robots.txt.
NO_ADOPT_CODEBOOK = Codebook(
    "no-adopt-reasons",
    (
        Theme("efficacy", "Concern about efficacy given the voluntary nature",
              "if the companies can ignore it why would they respect it",
              ("ignore it", "voluntary", "won't stop", "not respect", "efficacy",
               "does not fully stop")),
        Theme("usability", "Concern about complexity of use",
              "It sounds like something difficult to use",
              ("difficult to use", "complicated", "hard to", "usability")),
        Theme("more-information", "Wants more information first",
              "Not informed enough about it",
              ("more information", "not informed", "research it", "learn more")),
        Theme("no-personal-website", "No personal website",
              "I do not have a personal website",
              ("no personal website", "don't have a website", "do not have a personal")),
        Theme("search-results", "Worried about search discoverability",
              "If it hides things from search engines then how will people find my work?",
              ("search engine", "find my work", "discoverab", "seo")),
    ),
)

#: Table 11: why artists would enable a blocking mechanism.
ENABLE_CODEBOOK = Codebook(
    "enable-reasons",
    (
        Theme("protection", "Want to protect their work",
              "To protect my original concepts and visual brand",
              ("protect", "safeguard")),
        Theme("consent", "Did not consent to crawling",
              "I havent given AI companies permission to use my work",
              ("consent", "permission", "without asking")),
        Theme("compensation", "Not compensated while companies profit",
              "I do not want other companies to profit off of it without fair compensation",
              ("compensat", "profit", "paid")),
        Theme("useful-mechanism", "Sees the mechanism as useful/reassuring",
              "Adds a sense of security and ease of use.",
              ("sense of security", "ease of use", "useful", "reassur")),
        Theme("legal-benefit", "Potentially useful in legal cases",
              "will probably benefit in a possible lawsuit in the future",
              ("lawsuit", "legal", "court", "evidence")),
        Theme("misc", "Other reasons",
              "if it seems legitimate I'll do it on principle",
              ("on principle",)),
    ),
)

#: Table 12: why artists distrust AI companies to respect robots.txt.
DISTRUST_CODEBOOK = Codebook(
    "distrust-reasons",
    (
        Theme("track-record", "History of unauthorized/unethical operations",
              "AI companies have already used data without consent",
              ("track record", "already used data", "history", "without consent before")),
        Theme("profit", "Monetary interest in scraping",
              "Money before morals.",
              ("money", "monetary", "profit motive")),
        Theme("perception", "Negative perception of AI companies",
              "AI companies are morally bankrupt.",
              ("morally bankrupt", "greedy", "unethical", "evil")),
        Theme("loophole", "Will find loopholes or workarounds",
              "They might start loopholes to get around it",
              ("loophole", "workaround", "get around")),
        Theme("legal-enforcement", "Lack of legislation or enforcement",
              "They have to be forced to respect it by law",
              ("by law", "legislation", "enforce", "regulation")),
        Theme("voluntary-nature", "robots.txt is only a voluntary signal",
              "robots.txt is just a warning sign",
              ("warning sign", "polite notice", "just a request", "voluntary")),
        Theme("misc", "Other reasons",
              "a lot of companies will not respect and will do it anyway",
              ("do it anyway",)),
    ),
)


def code_response(text: str, codebook: Codebook) -> List[str]:
    """Code one open response against *codebook* (multi-label).

    Returns matched theme names in codebook order; an empty list when
    nothing matches (analysis treats those as uncoded).

    >>> code_response("Money before morals.", DISTRUST_CODEBOOK)
    ['profit']
    """
    low = text.lower()
    matched: List[str] = []
    for theme in codebook.themes:
        if any(keyword in low for keyword in theme.keywords):
            matched.append(theme.name)
    return matched
