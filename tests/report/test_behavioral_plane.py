"""Cross-mode determinism for the behavioral detection plane.

The contract extends the log-plane one: with the behavioral layer
armed, experiment texts, metrics, and the exported ``BEHAVIORAL.json``
verdicts are byte-identical across serial/thread/fork scheduling at
any worker count -- and the adversarial stealth profiles measurably
evade detection where naive crawling is gated.
"""

import json
import multiprocessing

import pytest

from repro.net.logstore import LogStore
from repro.obs.metrics import shared_registry
from repro.obs.series import shared_series
from repro.obs.trace import shared_tracer
from repro.report.experiments import (
    run_behavioral_equilibrium,
    run_selective_compliance,
)
from repro.report.orchestrator import run_all
from repro.web.population import PopulationConfig
from repro.web.worldstore import WorldStore

SMALL = PopulationConfig(universe_size=500, list_size=300, top5k_cut=40,
                         audit_size=90, seed=7)

#: The behavioral experiments are WORLD_NONE; table1 rides along so the
#: archive also carries population-backed traffic.
SLICE = ["behavioral", "selective", "table1"]


@pytest.fixture(scope="module")
def store():
    return WorldStore()


def _reset():
    shared_registry().reset()
    shared_series().reset()
    shared_tracer().reset()


class TestCrossModeIdentity:
    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_texts_and_verdicts_identical_across_modes(self, store, tmp_path):
        run_all(SMALL, workers=1, experiments=SLICE, store=store)  # pre-warm
        texts = {}
        verdicts = {}
        for label, mode, workers in [
            ("serial", "auto", 1),
            ("thread2", "thread", 2),
            ("process3", "process", 3),
        ]:
            _reset()
            log_dir = tmp_path / label
            report = run_all(SMALL, workers=workers, experiments=SLICE,
                             store=store, mode=mode, log_dir=log_dir)
            texts[label] = [(r.experiment_id, r.text, sorted(r.metrics.items()))
                            for r in report.results]
            verdicts[label] = (log_dir / "BEHAVIORAL.json").read_bytes()
            with LogStore.open(log_dir) as committed:
                assert committed.n_records > 0
        assert texts["thread2"] == texts["serial"]
        assert texts["process3"] == texts["serial"]
        assert verdicts["thread2"] == verdicts["serial"]
        assert verdicts["process3"] == verdicts["serial"]

    def test_verdicts_export_next_to_features(self, store, tmp_path):
        run_all(SMALL, workers=1, experiments=["behavioral"], store=store,
                log_dir=tmp_path / "logs")
        payload = json.loads((tmp_path / "logs" / "BEHAVIORAL.json").read_text())
        assert payload["schema_version"] == 1
        assert (tmp_path / "logs" / "FEATURES.json").is_file()
        with LogStore.open(tmp_path / "logs") as committed:
            assert payload["n_records"] == committed.n_records
            assert payload["config_digest"] == committed.config_digest

    def test_verdicts_follow_features_into_telemetry_dir(self, store, tmp_path):
        run_all(SMALL, workers=1, experiments=["behavioral"], store=store,
                telemetry_dir=tmp_path / "tele", log_dir=tmp_path / "logs")
        assert (tmp_path / "tele" / "BEHAVIORAL.json").is_file()
        assert not (tmp_path / "logs" / "BEHAVIORAL.json").exists()


class TestEquilibrium:
    def test_stealth_evades_where_naive_is_gated(self):
        result = run_behavioral_equilibrium(seed=7, pages=24)
        m = result.metrics
        assert m["detection_rate_naive"] > 0.0
        assert m["detection_rate_full_stealth"] == 0.0
        assert m["detection_rate_full_stealth"] < m["detection_rate_naive"]
        # Evasion is paid for in simulated crawl time.
        assert m["sim_seconds_full_stealth"] > m["sim_seconds_naive"]
        assert m["pages_ok_full_stealth"] > m["pages_ok_naive"]

    def test_rotation_backfires_against_behavioral_scoring(self):
        result = run_behavioral_equilibrium(seed=7, pages=24)
        m = result.metrics
        # Rotating UAs past the list trips the churn signal instead of
        # helping: detection stays at least as high as the naive bot's.
        assert m["detection_rate_ua_rotate"] >= m["detection_rate_naive"]

    def test_runs_repeat_identically(self):
        first = run_behavioral_equilibrium(seed=7, pages=24)
        second = run_behavioral_equilibrium(seed=7, pages=24)
        assert first.text == second.text
        assert first.metrics == second.metrics


class TestSelectiveCompliance:
    def test_per_directive_matrix(self):
        result = run_selective_compliance(seed=7)
        m = result.metrics
        assert m["disallow_obeyed_obeys_all"] == 1.0
        assert m["delay_obeyed_obeys_all"] == 1.0
        assert m["disallow_obeyed_ignores_delay"] == 1.0
        assert m["delay_obeyed_ignores_delay"] == 0.0
        assert m["disallow_obeyed_ignores_disallow"] == 0.0
        assert m["delay_obeyed_ignores_disallow"] == 1.0
        assert m["disallow_obeyed_ignores_all"] == 0.0
        assert m["delay_obeyed_ignores_all"] == 0.0

    def test_runs_repeat_identically(self):
        first = run_selective_compliance(seed=7)
        second = run_selective_compliance(seed=7)
        assert first.text == second.text
        assert first.metrics == second.metrics
