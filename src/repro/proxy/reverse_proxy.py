"""Generic reverse proxy with rule-based active blocking.

A :class:`ReverseProxy` fronts an origin handler: it evaluates its
:class:`~repro.proxy.rules.RuleSet` against each request and either
serves an interstitial (block / challenge / captcha / decoy), raises a
transport error (connection reset), or forwards to the origin.  It also
optionally runs the fingerprint detector, modeling bot-management
products that block *all* automation, which is what makes 15% of
popular sites unmeasurable for the paper's UA-based detector
(Section 6.1).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..net.accesslog import AccessLog, LogEntry, clock_ticks, record_sim_request
from ..net.errors import ConnectionReset
from ..net.http import Request, Response
from ..net.transport import Handler, current_month
from .behavioral import (
    VERDICT_BLOCK,
    VERDICT_CHALLENGE,
    VERDICT_THROTTLE,
    BehavioralPolicy,
    BehavioralVerdict,
)
from .challenges import (
    block_page,
    captcha_page,
    challenge_page,
    labyrinth_page,
    throttle_page,
)
from .fingerprint import is_automated
from .rules import Action, RuleSet

__all__ = ["ReverseProxy", "ACTION_OUTCOMES"]

#: Rule action -> the ``outcome`` label recorded in the ``sim.requests``
#: series (the operator-view vocabulary: what the client experienced).
ACTION_OUTCOMES = {
    Action.BLOCK: "blocked_403",
    Action.CAPTCHA: "blocked_403",
    Action.CHALLENGE: "challenged",
    Action.FAKE_CONTENT: "decoy",
    Action.RESET: "reset",
}


class ReverseProxy:
    """Rule-evaluating reverse proxy in front of one origin.

    Args:
        origin: The wrapped origin handler.
        ruleset: Blocking rules evaluated per request.
        service_name: Name shown on interstitial pages.
        block_all_automation: When True, fingerprint-detected automation
            is served the automation interstitial regardless of rules
            (the "inherently blocks our tool" behavior).
        automation_action: What to serve fingerprint-detected clients.
        behavioral: Optional :class:`~repro.proxy.behavioral
            .BehavioralPolicy` evaluated *ahead of* the UA-list rules;
            its windows are fed from this proxy's access log, so every
            terminating layer's final status feeds back into scoring.

    The proxy exposes ``host`` (delegating to the origin) so it can be
    registered on a :class:`~repro.net.transport.Network` in the
    origin's place.
    """

    def __init__(
        self,
        origin: Handler,
        ruleset: Optional[RuleSet] = None,
        service_name: str = "reverse-proxy",
        block_all_automation: bool = False,
        automation_action: Action = Action.CAPTCHA,
        behavioral: Optional[BehavioralPolicy] = None,
    ):
        self.origin = origin
        self.ruleset = ruleset or RuleSet()
        self.service_name = service_name
        self.block_all_automation = block_all_automation
        self.automation_action = automation_action
        self.behavioral = behavioral
        self.access_log = AccessLog()
        self.now: float = 0.0

    @property
    def host(self) -> str:
        """The origin's hostname (routing key)."""
        return getattr(self.origin, "host", "")

    @property
    def category(self) -> str:
        """The origin's site category (series label pass-through)."""
        return getattr(self.origin, "category", "")

    def _record_outcome(
        self, request: Request, outcome: str, status: int = 0
    ) -> None:
        """Record a proxy-terminated request into the operator series.

        *status* is the interstitial's response status (0 for resets,
        which never produce a response); it feeds the wide-event log,
        not the series.
        """
        record_sim_request(
            request.user_agent,
            outcome,
            self.category,
            current_month(),
            host=request.host,
            path=request.path,
            status=status,
            ticks=clock_ticks(self.now),
        )

    # -- interstitial construction ------------------------------------------

    def _interstitial(self, action: Action, request: Request) -> Response:
        host = request.host
        if action is Action.BLOCK:
            return Response(status=403, body=block_page(self.service_name, host), url=request.url)
        if action is Action.CHALLENGE:
            return Response(status=403, body=challenge_page(self.service_name, host), url=request.url)
        if action is Action.CAPTCHA:
            return Response(status=403, body=captcha_page(self.service_name, host), url=request.url)
        if action is Action.FAKE_CONTENT:
            # Path-dependent decoy: every labyrinth page links to two
            # more, so a crawler that ignored robots.txt wanders an
            # endless generated maze instead of reaching real content
            # (Cloudflare's AI Labyrinth [110]).
            return Response(
                status=200,
                body=labyrinth_page(self._labyrinth_seed(request.path_only)),
                url=request.url,
            )
        raise ValueError(f"no interstitial for action {action}")

    @staticmethod
    def _labyrinth_seed(path: str) -> int:
        tail = path.rsplit("/", 1)[-1]
        if tail.isdigit():
            return int(tail)
        return sum(path.encode("utf-8")) % 1000

    # -- behavioral gate ----------------------------------------------------

    def _behavioral_decision(
        self, request: Request
    ) -> Optional[Tuple[BehavioralVerdict, Response]]:
        """Assess the request behaviorally; gate it when warranted.

        Runs ahead of every UA-list rule: a verdict response is fully
        recorded (series outcome + access log, which feeds the verdict
        back into the scoring window) before being returned.  ``None``
        means the request proceeds to the rule layers.
        """
        verdict = self.behavioral.assess(
            request.user_agent, request.host, current_month()
        )
        if verdict.verdict == VERDICT_THROTTLE:
            response = Response(
                status=429,
                body=throttle_page(self.service_name, request.host),
                headers={"Retry-After": "1"},
                url=request.url,
            )
            outcome = "throttled"
        elif verdict.verdict == VERDICT_CHALLENGE:
            response = self._interstitial(Action.CHALLENGE, request)
            outcome = ACTION_OUTCOMES[Action.CHALLENGE]
        elif verdict.verdict == VERDICT_BLOCK:
            response = self._interstitial(Action.BLOCK, request)
            outcome = ACTION_OUTCOMES[Action.BLOCK]
        else:
            return None
        self._record_outcome(request, outcome, response.status)
        self._log(request, response.status, response.content_length)
        return verdict, response

    # -- request handling ---------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Apply blocking policy, then forward to the origin."""
        if self.behavioral is not None:
            gated = self._behavioral_decision(request)
            if gated is not None:
                return gated[1]
        action = self.ruleset.decide(request)
        if action is None and self.block_all_automation and is_automated(request):
            action = self.automation_action
        if action is Action.RESET:
            self._record_outcome(request, ACTION_OUTCOMES[action])
            self._log(request, 0, 0)
            raise ConnectionReset(request.host)
        if action is not None:
            response = self._interstitial(action, request)
            self._record_outcome(request, ACTION_OUTCOMES[action], response.status)
            self._log(request, response.status, response.content_length)
            return response
        self._forward_clocks()
        response = self.origin.handle(request)
        self._log(request, response.status, response.content_length)
        return response

    def _forward_clocks(self) -> None:
        """Propagate the wall clock to the origin before forwarding.

        The month needs no forwarding: it rides the per-thread dispatch
        clock (:func:`repro.net.transport.current_month`).
        """
        if hasattr(self.origin, "now"):
            self.origin.now = self.now

    def _log(self, request: Request, status: int, size: int) -> None:
        entry = LogEntry(
            timestamp=self.now,
            client_ip=request.client_ip,
            method=request.method,
            path=request.path,
            status=status,
            body_bytes=size,
            user_agent=request.user_agent,
            host=request.host,
            month=current_month(),
        )
        self.access_log.append(entry)
        if self.behavioral is not None:
            self.behavioral.observe(entry)
