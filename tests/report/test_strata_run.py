"""Strata runs: archive-backed streaming battery via the orchestrator.

``run_strata`` crawls (or reopens) one sharded columnar archive per
stratum and computes the streaming figure battery from it; ``run_all``
delegates when ``strata=`` is given and refuses the combinations that
make no sense for archives (incremental stores, fault plans).
"""

import pytest

from repro.report.orchestrator import RunReport, run_all, run_strata
from repro.web.population import PopulationConfig
from repro.web.worldstore import WorldStore

BASE = PopulationConfig(
    universe_size=450, list_size=300, top5k_cut=40, audit_size=80, seed=7
)

STRATA = ["top-10k"]  # cutoff 30 at this scale: small but churn-stable


@pytest.fixture(scope="module")
def first_run(tmp_path_factory):
    archive_dir = tmp_path_factory.mktemp("archives")
    store = WorldStore()
    report = run_strata(
        STRATA, config=BASE, shards=2, archive_dir=archive_dir, store=store
    )
    return report, archive_dir, store


class TestRunStrata:
    def test_result_ids_are_stratum_suffixed(self, first_run):
        report, _, _ = first_run
        assert [r.experiment_id for r in report.results] == [
            "figure2@top-10k", "figure3@top-10k",
            "figure4@top-10k", "table3@top-10k",
        ]
        assert report.mode == "strata"
        for result in report.results:
            assert result.text.strip()
            assert result.title.endswith("[top-10k]")

    def test_timings_cover_every_experiment(self, first_run):
        report, _, _ = first_run
        payload = report.to_timings()
        keys = [entry["key"] for entry in payload["experiments"]]
        assert keys == ["figure2@top-10k", "figure3@top-10k",
                        "figure4@top-10k", "table3@top-10k"]
        assert all(entry["world"] == "archive"
                   for entry in payload["experiments"])

    def test_archive_persists_on_disk(self, first_run):
        _, archive_dir, _ = first_run
        shard_dirs = sorted((archive_dir / "top-10k").glob("shard-*"))
        assert len(shard_dirs) == 2
        assert all((d / "manifest.json").exists() for d in shard_dirs)

    def test_warm_rerun_reuses_archive_and_matches(self, first_run):
        report, archive_dir, store = first_run
        hits_before = store._archive_hits.value
        again = run_strata(
            STRATA, config=BASE, shards=2, archive_dir=archive_dir, store=store
        )
        assert store._archive_hits.value == hits_before + 1
        assert [r.text for r in again.results] == [
            r.text for r in report.results
        ]
        assert [r.metrics for r in again.results] == [
            r.metrics for r in report.results
        ]

    def test_unknown_stratum_is_a_keyerror(self, tmp_path):
        with pytest.raises(KeyError, match="unknown stratum"):
            run_strata(["top-5k"], config=BASE, archive_dir=tmp_path)


class TestRunAllDelegation:
    def test_run_all_forwards_strata(self, first_run):
        report, archive_dir, store = first_run
        delegated = run_all(
            config=BASE,
            strata=STRATA,
            shards=2,
            archive_dir=archive_dir,
            store=store,
        )
        assert isinstance(delegated, RunReport)
        assert delegated.mode == "strata"
        assert [r.experiment_id for r in delegated.results] == [
            r.experiment_id for r in report.results
        ]
        assert [r.text for r in delegated.results] == [
            r.text for r in report.results
        ]

    def test_refuses_incremental(self, tmp_path):
        with pytest.raises(ValueError, match="incremental"):
            run_all(config=BASE, strata=STRATA, archive_dir=tmp_path,
                    incremental=True)

    def test_refuses_fault_plans(self, tmp_path):
        with pytest.raises(ValueError, match="fault plans"):
            run_all(config=BASE, strata=STRATA, archive_dir=tmp_path,
                    fault_plan="flaky-resets")


class TestStreamingMatchesClassic:
    def test_stratum_figures_match_in_memory_battery(self, first_run):
        """The archive-backed figure2 equals the classic bundle run
        over the same stratum config (modulo the stratum-suffixed id)."""
        from repro.report.experiments import build_longitudinal_bundle, run_figure2
        from repro.web.population import stratum_config

        report, _, store = first_run
        bundle = build_longitudinal_bundle(
            stratum_config("top-10k", BASE), store=store
        )
        classic = run_figure2(bundle)
        streamed = next(
            r for r in report.results if r.experiment_id == "figure2@top-10k"
        )
        assert streamed.text == classic.text
        assert streamed.metrics == classic.metrics
