"""The crawl engine: frontier management plus robots.txt discipline.

:class:`Crawler` executes crawls for one :class:`CrawlerProfile` over a
:class:`~repro.net.transport.Network`.  The engine implements the full
observable protocol surface the Section 5 testbed measures:

* whether and when robots.txt is requested (including wrong-path
  fetches by buggy crawlers),
* whether directives are obeyed per fetch,
* robots.txt caching with a TTL (stale-cache crawlers keep using old
  rules after the file changes),
* BFS link discovery from returned HTML with a page budget.

All state a measurement would see ends up in the *server's* access
logs; the crawler additionally reports a :class:`CrawlResult` for
driver convenience.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..agents.darkvisitors import AI_USER_AGENT_TOKENS
from ..core.compiled import CompiledRobots, shared_policy_cache
from ..core.policy import RobotsPolicy
from ..net.errors import NetError
from ..net.http import Headers, Request, Response
from ..net.server import extract_links
from ..net.transport import Network
from ..obs.metrics import shared_registry
from ..obs.series import shared_series
from .profiles import CrawlerProfile, RobotsBehavior

__all__ = ["CrawlResult", "Crawler"]

#: The synthetic policy for unreachable robots.txt (RFC 9309 2.3.1),
#: compiled once for the whole fleet.
_DISALLOW_ALL = CompiledRobots("User-agent: *\nDisallow: /")

#: Tokens that get their own metric label.  Anything else (e.g. the
#: thousands of synthetic GPT-store app bots) is bucketed under
#: ``other`` so label cardinality stays bounded by the Table 1 roster.
_KNOWN_AGENT_LABELS = frozenset(AI_USER_AGENT_TOKENS)


@dataclass
class CrawlResult:
    """Outcome of one crawl of one host.

    Attributes:
        host: Crawled hostname.
        fetched: Paths fetched with their response status, in order.
        robots_fetched: Whether a (correct-path) robots.txt request was
            made during this crawl (a cached policy may have been used
            instead -- see ``robots_from_cache``).
        robots_from_cache: Whether the policy came from the crawler's
            cache rather than a fresh fetch.
        skipped: Paths the crawler declined to fetch because of
            robots.txt.
        errors: Transport errors encountered, as strings.
        time_spent: Simulated seconds consumed by politeness intervals
            (crawl-delay / default fetch interval) during this crawl.
    """

    host: str
    fetched: List[Tuple[str, int]] = field(default_factory=list)
    robots_fetched: bool = False
    robots_from_cache: bool = False
    skipped: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    time_spent: float = 0.0

    @property
    def content_fetches(self) -> List[str]:
        """Paths of non-robots fetches.

        Only the exact ``/robots.txt`` path is the policy file; lookalike
        paths (``/robots.txt.bak``, ``/robots.txt2``) are ordinary
        content a crawler fetched and must stay in this list.
        """
        return [path for path, _ in self.fetched if path != "/robots.txt"]


@dataclass
class _CacheEntry:
    policy: Optional[RobotsPolicy]
    fetched_at: float
    etag: Optional[str] = None


class Crawler:
    """A crawler instance bound to one profile and one network.

    >>> # Crawl flow is exercised in tests/crawlers/test_engine.py.
    """

    def __init__(self, profile: CrawlerProfile, network: Network):
        self.profile = profile
        self.network = network
        self._robots_cache: Dict[str, _CacheEntry] = {}
        self._crawl_count: Dict[str, int] = {}
        # Lifetime request index; drives round-robin UA/IP rotation for
        # adversarial profiles (a plain attribute read otherwise).
        self._requests_sent = 0
        # Counter handles are resolved once per crawler; each increment
        # on the crawl hot path is then a bool check plus a locked add.
        agent = profile.token if profile.token in _KNOWN_AGENT_LABELS else "other"
        registry = shared_registry()
        self._fetches_counter = registry.counter("crawler.fetches", agent=agent)
        self._robots_fetch_counter = registry.counter(
            "crawler.robots_fetches", agent=agent
        )
        self._robots_cached_counter = registry.counter(
            "crawler.robots_cache_hits", agent=agent
        )
        self._allow_counter = registry.counter(
            "crawler.robots_decisions", agent=agent, decision="allow"
        )
        self._deny_counter = registry.counter(
            "crawler.robots_decisions", agent=agent, decision="deny"
        )
        # Crawler-side time series on the simulated-month clock: what
        # each agent attempted vs what robots.txt denied it.  Only the
        # crawler can record ``robots_disallowed`` -- a skipped fetch
        # never reaches the server.
        series = shared_series()
        self._fetched_series = series.series(
            "crawl.requests", agent=agent, outcome="fetched"
        )
        self._denied_series = series.series(
            "crawl.requests", agent=agent, outcome="robots_disallowed"
        )
        self._error_series = series.series(
            "crawl.requests", agent=agent, outcome="error"
        )

    # -- plumbing -------------------------------------------------------------

    def _request(
        self, host: str, path: str, extra_headers: Optional[Dict[str, str]] = None
    ) -> Response:
        index = self._requests_sent
        self._requests_sent += 1
        headers = {"User-Agent": self.profile.user_agent_for(index)}
        if extra_headers:
            headers.update(extra_headers)
        return self.network.request(
            Request(
                host=host,
                path=path,
                headers=Headers(headers),
                client_ip=self.profile.source_ip_for(index),
            )
        )

    @property
    def now(self) -> float:
        """Simulation clock (delegates to the network)."""
        return self.network.now

    # -- robots.txt discipline --------------------------------------------------

    def _load_policy(self, host: str, result: CrawlResult) -> Optional[RobotsPolicy]:
        """Fetch/cache robots.txt per the profile's behavior.

        Returns the policy to obey, or None when the crawler either has
        no policy (404, transport error) or does not obey one.
        """
        behavior = self.profile.behavior

        if behavior is RobotsBehavior.NO_FETCH:
            return None

        if behavior is RobotsBehavior.BUGGY_FETCH:
            # Request the wrong path; whatever comes back is not a
            # usable policy, and the crawler proceeds unconstrained.
            try:
                self._request(host, self.profile.buggy_robots_path)
            except NetError as exc:
                result.errors.append(str(exc))
            return None

        if behavior is RobotsBehavior.INTERMITTENT_FETCH:
            count = self._crawl_count.get(host, 0)
            if count % self.profile.intermittent_period != 0:
                cached = self._robots_cache.get(host)
                if cached is not None:
                    result.robots_from_cache = True
                    self._robots_cached_counter.inc()
                    return cached.policy
                return None

        cached = self._robots_cache.get(host)
        if cached is not None and self.profile.robots_cache_ttl > 0:
            age = self.now - cached.fetched_at
            if age < self.profile.robots_cache_ttl:
                result.robots_from_cache = True
                self._robots_cached_counter.inc()
                return cached.policy

        conditional: Optional[Dict[str, str]] = None
        if (
            self.profile.revalidates_robots
            and cached is not None
            and cached.etag is not None
        ):
            conditional = {"If-None-Match": cached.etag}
        try:
            response = self._request(host, "/robots.txt", extra_headers=conditional)
        except NetError as exc:
            result.errors.append(str(exc))
            return None
        result.robots_fetched = True
        self._robots_fetch_counter.inc()
        result.fetched.append(("/robots.txt", response.status))
        if response.status == 304 and cached is not None:
            # Not modified: keep the cached policy, refresh its age.
            cached.fetched_at = self.now
            result.robots_from_cache = True
            self._robots_cached_counter.inc()
            return cached.policy
        # RFC 9309 section 2.3.1: a 4xx means "no policy, crawl freely";
        # a 5xx means robots.txt is *unreachable* and the crawler MUST
        # assume complete disallow.  (Actively-blocking sites that 403
        # the robots.txt fetch therefore keep obedient bots out.)
        policy: Optional[RobotsPolicy]
        if response.ok:
            # Content-addressed compile cache: every crawler in the
            # fleet shares one compiled policy per distinct body, the
            # same objects the analysis pipelines classify.
            policy = shared_policy_cache().policy(response.text)
        elif 500 <= response.status < 600:
            policy = _DISALLOW_ALL
        elif response.status == 403:
            # 403 is formally a 4xx, but a server that refuses the
            # robots.txt request is refusing the crawler; production
            # crawlers treat it as unreachable.  Configurable via the
            # profile for bots that interpret it as "no policy".
            policy = (
                _DISALLOW_ALL
                if self.profile.forbidden_robots_means_disallow
                else None
            )
        else:
            policy = None
        self._robots_cache[host] = _CacheEntry(
            policy=policy,
            fetched_at=self.now,
            etag=response.headers.get("ETag"),
        )
        return policy

    def _may_fetch(self, policy: Optional[RobotsPolicy], path: str) -> bool:
        if not self.profile.behavior.obeys:
            return True
        if policy is None:
            return True
        allowed = policy.is_allowed(self.profile.token, path)
        # Only genuine robots consultations count as decisions; bots
        # with no policy (or none they obey) never "decided" anything.
        (self._allow_counter if allowed else self._deny_counter).inc()
        if not allowed:
            self._denied_series.add(self.network.month)
        return allowed

    # -- public API ---------------------------------------------------------------

    def fetch(self, host: str, path: str) -> CrawlResult:
        """Fetch a single URL with full robots.txt discipline.

        This is the operation a user-triggered assistant crawler
        performs (Section 5.1's active measurement).
        """
        result = CrawlResult(host=host)
        self._crawl_count[host] = self._crawl_count.get(host, 0) + 1
        policy = self._load_policy(host, result)
        if not self._may_fetch(policy, path):
            result.skipped.append(path)
            return result
        try:
            response = self._request(host, path)
        except NetError as exc:
            result.errors.append(str(exc))
            self._error_series.add(self.network.month)
            return result
        # Booked only once a response exists: an errored attempt is not
        # a fetch, or crawler-side totals drift from the server-side
        # ``sim.requests`` series they must reconcile against.
        self._fetches_counter.inc()
        self._fetched_series.add(self.network.month)
        result.fetched.append((path, response.status))
        return result

    def crawl(
        self,
        host: str,
        start_path: str = "/",
        max_pages: int = 10,
        time_budget: Optional[float] = None,
    ) -> CrawlResult:
        """BFS-crawl a host from *start_path* up to *max_pages* pages.

        Args:
            time_budget: Simulated seconds available for this crawl.
                When the profile honors ``Crawl-delay`` (or has a
                default fetch interval), each content fetch after the
                first consumes that many seconds; the crawl stops when
                the budget runs out.  ``CrawlResult.time_spent`` records
                the consumption, so rate-limiting experiments can
                compare polite and impolite crawlers.
        """
        result = CrawlResult(host=host)
        self._crawl_count[host] = self._crawl_count.get(host, 0) + 1
        policy = self._load_policy(host, result)

        interval = self.profile.default_fetch_interval
        if self.profile.honors_crawl_delay and policy is not None:
            delay = policy.crawl_delay(self.profile.token)
            if delay is not None:
                interval = max(interval, delay)

        frontier: List[str] = [start_path]
        if self.profile.use_sitemaps and policy is not None and policy.sitemaps:
            from ..net.sitemap import discover_sitemap_urls

            for path in discover_sitemap_urls(
                self.network, host, policy.sitemaps,
                user_agent=self.profile.user_agent,
            ):
                if path not in frontier:
                    frontier.append(path)
        seen: Set[str] = set(frontier)
        fetched_pages = 0
        while frontier and fetched_pages < max_pages:
            path = frontier.pop(0)
            if not self._may_fetch(policy, path):
                result.skipped.append(path)
                continue
            # The politeness gap before this fetch: the base interval
            # plus any seeded stealth jitter (zero for normal profiles).
            gap = 0.0
            if fetched_pages > 0:
                gap = interval + self.profile.gap_jitter_seconds(
                    host, fetched_pages
                )
            if (
                time_budget is not None
                and fetched_pages > 0
                and result.time_spent + gap > time_budget
            ):
                break
            if gap and self.profile.paces_on_clock:
                # Stealth pacing is only worth anything if the *server*
                # sees it: charge the gap to the simulated wall clock,
                # which is exactly the evasion cost the equilibrium
                # experiments measure.
                self.network.now += gap
            try:
                response = self._request(host, path)
            except NetError as exc:
                result.errors.append(str(exc))
                self._error_series.add(self.network.month)
                continue
            self._fetches_counter.inc()
            self._fetched_series.add(self.network.month)
            if fetched_pages > 0:
                result.time_spent += gap
            result.fetched.append((path, response.status))
            fetched_pages += 1
            if response.ok and b"href" in response.body:
                for link in extract_links(response.text):
                    if not link.startswith("/"):
                        continue
                    if link not in seen:
                        seen.add(link)
                        frontier.append(link)
        return result

    def raw_fetch(self, host: str, path: str) -> Response:
        """One request with no robots.txt discipline at all.

        Exists for modeling protocol anomalies (e.g. ChatGPT-User's
        single unprompted visit that skipped robots.txt, Section 5.2.1)
        and for test instrumentation.  Normal crawling must go through
        :meth:`fetch` / :meth:`crawl`.
        """
        return self._request(host, path)

    def invalidate_robots_cache(self, host: Optional[str] = None) -> None:
        """Drop cached policies (all hosts when *host* is None)."""
        if host is None:
            self._robots_cache.clear()
        else:
            self._robots_cache.pop(host, None)
