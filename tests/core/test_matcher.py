"""Tests for repro.core.matcher, including RFC 9309 examples."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.matcher import (
    Rule,
    evaluate,
    first_match,
    match_priority,
    normalize_path,
    pattern_matches,
)


class TestNormalizePath:
    def test_empty_becomes_root(self):
        assert normalize_path("") == "/"

    def test_plain_path_unchanged(self):
        assert normalize_path("/a/b.html") == "/a/b.html"

    def test_percent_encoding_canonicalized(self):
        assert normalize_path("/a%3cd.html") == normalize_path("/a%3Cd.html")

    def test_decoded_and_encoded_forms_equal(self):
        assert normalize_path("/a<d.html") == normalize_path("/a%3Cd.html")

    def test_query_string_preserved(self):
        assert "?" not in normalize_path("/p") or True
        assert normalize_path("/search?q=1") .startswith("/search")


class TestPatternMatches:
    # Examples adapted from the Google robots.txt documentation.
    @pytest.mark.parametrize(
        "pattern,path,expected",
        [
            ("/", "/", True),
            ("/", "/anything", True),
            ("/fish", "/fish", True),
            ("/fish", "/fish.html", True),
            ("/fish", "/fishheads/yummy.html", True),
            ("/fish", "/Fish.asp", False),
            ("/fish", "/catfish", False),
            ("/fish*", "/fish", True),
            ("/fish*", "/fishheads", True),
            ("/fish/", "/fish/", True),
            ("/fish/", "/fish/salmon.htm", True),
            ("/fish/", "/fish", False),
            ("/*.php", "/filename.php", True),
            ("/*.php", "/folder/filename.php", True),
            ("/*.php", "/folder/filename.php?parameters", True),
            ("/*.php", "/folder/any.php.file.html", True),
            ("/*.php", "/", False),
            ("/*.php", "/windows.PHP", False),
            ("/*.php$", "/filename.php", True),
            ("/*.php$", "/folder/filename.php", True),
            ("/*.php$", "/filename.php?parameters", False),
            ("/*.php$", "/filename.php/", False),
            ("/fish*.php", "/fish.php", True),
            ("/fish*.php", "/fishheads/catfish.php?parameters", True),
            ("/fish*.php", "/Fish.PHP", False),
        ],
    )
    def test_google_documented_examples(self, pattern, path, expected):
        assert pattern_matches(pattern, path) is expected

    def test_empty_pattern_matches_nothing(self):
        assert not pattern_matches("", "/")

    def test_dollar_alone_matches_empty_normalized_root(self):
        # "$" anchors an empty pattern: only path "" (normalized "/")
        # of length zero would match; "/" does not end-match "".
        assert pattern_matches("/$", "/")
        assert not pattern_matches("/$", "/a")

    def test_multiple_wildcards(self):
        assert pattern_matches("/a*/b*/c", "/axx/byy/c")
        assert not pattern_matches("/a*/b*/c", "/axx/c")

    def test_wildcard_pieces_must_appear_in_order(self):
        assert not pattern_matches("/*b*a$", "/a-b")
        assert pattern_matches("/*b*a$", "/xbxa")

    def test_anchored_suffix_cannot_overlap_middle_match(self):
        # Pattern /*abc$ against /abc: the "abc" must come after pos 1.
        assert pattern_matches("/*abc$", "/abc")
        assert pattern_matches("/x*yz$", "/xAyz")
        assert not pattern_matches("/x*yzq$", "/xyz")

    def test_percent_encoding_in_pattern_and_path(self):
        assert pattern_matches("/a%3Cd.html", "/a<d.html")
        assert pattern_matches("/a<d.html", "/a%3cd.html")


class TestMatchPriority:
    def test_longer_pattern_higher_priority(self):
        assert match_priority("/fish/salmon") > match_priority("/fish")

    def test_priority_uses_normalized_length(self):
        assert match_priority("/a%3Cd") == match_priority("/a<d")


class TestEvaluate:
    def test_no_rules_allows(self):
        verdict = evaluate([], "/x")
        assert verdict.allowed and verdict.rule is None

    def test_single_disallow(self):
        verdict = evaluate([Rule(False, "/")], "/x")
        assert not verdict.allowed

    def test_longest_match_wins(self):
        rules = [Rule(False, "/"), Rule(True, "/public/")]
        assert evaluate(rules, "/public/page").allowed
        assert not evaluate(rules, "/private").allowed

    def test_tie_goes_to_allow(self):
        rules = [Rule(False, "/page"), Rule(True, "/page")]
        assert evaluate(rules, "/page").allowed

    def test_allow_root_vs_disallow_root_tie(self):
        rules = [Rule(True, "/"), Rule(False, "/")]
        assert evaluate(rules, "/anything").allowed

    def test_more_specific_disallow_beats_allow(self):
        rules = [Rule(True, "/folder"), Rule(False, "/folder/secret")]
        assert not evaluate(rules, "/folder/secret/x").allowed
        assert evaluate(rules, "/folder/open").allowed

    def test_empty_disallow_means_no_restriction(self):
        assert evaluate([Rule(False, "")], "/x").allowed

    def test_rule_order_irrelevant_for_longest_match(self):
        rules_a = [Rule(False, "/"), Rule(True, "/p/")]
        rules_b = [Rule(True, "/p/"), Rule(False, "/")]
        assert evaluate(rules_a, "/p/x").allowed == evaluate(rules_b, "/p/x").allowed

    def test_winning_rule_reported(self):
        rule = Rule(False, "/admin")
        assert evaluate([rule], "/admin/x").rule is rule


class TestFirstMatch:
    def test_first_match_order_dependent(self):
        rules = [Rule(False, "/"), Rule(True, "/p/")]
        assert not first_match(rules, "/p/x").allowed
        assert first_match(list(reversed(rules)), "/p/x").allowed

    def test_first_match_default_allow(self):
        assert first_match([], "/x").allowed


# -- Property-based tests ---------------------------------------------------

_paths = st.text(
    alphabet=st.sampled_from("abcdef/.-_0123456789"), min_size=0, max_size=30
).map(lambda s: "/" + s)


class TestProperties:
    @given(path=_paths)
    def test_root_disallow_blocks_every_path(self, path):
        assert not evaluate([Rule(False, "/")], path).allowed

    @given(path=_paths)
    def test_no_rules_always_allows(self, path):
        assert evaluate([], path).allowed

    @given(path=_paths)
    def test_prefix_pattern_matches_itself(self, path):
        assert pattern_matches(path, path)

    @given(path=_paths)
    def test_anchored_self_match(self, path):
        assert pattern_matches(path + "$", path)

    @given(path=_paths, suffix=st.text(alphabet="xyz", min_size=1, max_size=5))
    def test_prefix_match_extends(self, path, suffix):
        assert pattern_matches(path, path + suffix)

    @given(path=_paths)
    def test_normalize_idempotent(self, path):
        assert normalize_path(normalize_path(path)) == normalize_path(path)

    @given(
        path=_paths,
        rules=st.lists(
            st.tuples(st.booleans(), _paths).map(lambda t: Rule(t[0], t[1])),
            max_size=8,
        ),
    )
    def test_adding_matching_allow_never_blocks(self, path, rules):
        """Adding Allow rules can only flip verdicts toward allowed."""
        before = evaluate(rules, path).allowed
        after = evaluate(rules + [Rule(True, path)], path).allowed
        assert after or not before
        # In fact an exact allow always wins ties at max priority for
        # this path unless a longer disallow matches.
        if before:
            assert after
