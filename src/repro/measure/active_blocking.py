"""Section 6.1-6.2: detecting active blocking of AI crawlers.

The detector follows the paper's user-agent-differential methodology:

1. **Control case** -- visit each site with a headless browser
   presenting a typical Chrome UA (our simulated headless client leaks
   automation fingerprint signals, exactly like Selenium-driven
   Chromium).  Sites that do not return a 200 are excluded: we cannot
   tell UA-blocking apart from tool-blocking there.
2. **AI case** -- revisit with the ClaudeBot and anthropic-ai user
   agents (the two most-restricted agents without published IPs).
3. **Decision** -- a site actively blocks when status codes differ, a
   transport exception appears, or the content length changes
   significantly between control and AI crawls (block-page detection
   following Jones et al.).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..agents.useragent import DEFAULT_BROWSER_UA
from ..net.errors import NetError
from ..net.http import Headers, Request, Response
from ..net.transport import Network
from ..proxy.fingerprint import AUTOMATION_HEADER

__all__ = [
    "ProbeResult",
    "SiteBlockingVerdict",
    "probe",
    "detect_active_blocking",
    "survey_active_blocking",
    "BlockingSurvey",
]

#: The AI user agents used for the differential (Section 6.1).
AI_PROBE_UAS = ("Claudebot/1.0", "anthropic-ai")

#: Relative content-length difference treated as "significant".
LENGTH_DELTA_THRESHOLD = 0.30


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one probe request.

    Attributes:
        status: HTTP status (0 on transport error).
        content_length: Body size in bytes.
        error: Transport error text, if any.
    """

    status: int
    content_length: int
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.error is not None


def probe(
    network: Network,
    host: str,
    user_agent: str,
    as_headless_browser: bool = True,
    path: str = "/",
) -> ProbeResult:
    """Visit ``host`` once with ``user_agent`` and summarize the result.

    The probe client is a headless browser under automation, so it
    carries fingerprint signals regardless of the UA it presents --
    matching the paper's Selenium/Chromium tooling.
    """
    headers = {"User-Agent": user_agent}
    if as_headless_browser:
        headers[AUTOMATION_HEADER] = "webdriver,headless"
    try:
        response = network.request(
            Request(host=host, path=path, headers=Headers(headers))
        )
    except NetError as exc:
        return ProbeResult(status=0, content_length=0, error=str(exc))
    return ProbeResult(status=response.status, content_length=response.content_length)


@dataclass
class SiteBlockingVerdict:
    """Per-site outcome of the differential measurement.

    Attributes:
        host: The site probed.
        control: Control-case probe result.
        ai_probes: Results for each AI UA probed.
        excluded: The control case failed (site blocks the tool), so no
            inference is made.
        blocks_ai: Whether the site actively blocks based on AI UAs.
    """

    host: str
    control: ProbeResult
    ai_probes: Dict[str, ProbeResult] = field(default_factory=dict)
    excluded: bool = False
    blocks_ai: bool = False


def _differs(control: ProbeResult, ai: ProbeResult) -> bool:
    if ai.failed:
        return True
    if ai.status != control.status:
        return True
    if control.content_length == 0:
        return ai.content_length != 0
    delta = abs(ai.content_length - control.content_length) / control.content_length
    return delta > LENGTH_DELTA_THRESHOLD


def detect_active_blocking(
    network: Network,
    host: str,
    ai_user_agents: Sequence[str] = AI_PROBE_UAS,
) -> SiteBlockingVerdict:
    """Run the control/AI differential against one site."""
    control = probe(network, host, DEFAULT_BROWSER_UA)
    verdict = SiteBlockingVerdict(host=host, control=control)
    if control.failed or control.status != 200:
        verdict.excluded = True
        return verdict
    for user_agent in ai_user_agents:
        result = probe(network, host, user_agent)
        verdict.ai_probes[user_agent] = result
        if _differs(control, result):
            verdict.blocks_ai = True
    return verdict


@dataclass
class BlockingSurvey:
    """Aggregate results over a site list (the Section 6.2 numbers).

    Attributes:
        verdicts: Per-site verdicts in input order.
    """

    verdicts: List[SiteBlockingVerdict] = field(default_factory=list)

    @property
    def n_sites(self) -> int:
        return len(self.verdicts)

    @property
    def n_excluded(self) -> int:
        """Sites that inherently block the measurement tool (~15%)."""
        return sum(1 for v in self.verdicts if v.excluded)

    @property
    def n_blocking(self) -> int:
        """Sites inferred to actively block the AI UAs (~14% of all)."""
        return sum(1 for v in self.verdicts if v.blocks_ai)

    def blocking_hosts(self) -> List[str]:
        return [v.host for v in self.verdicts if v.blocks_ai]

    def excluded_hosts(self) -> List[str]:
        return [v.host for v in self.verdicts if v.excluded]


def survey_active_blocking(
    network: Network,
    hosts: Sequence[str],
    ai_user_agents: Sequence[str] = AI_PROBE_UAS,
) -> BlockingSurvey:
    """Run the detector over *hosts* and aggregate."""
    survey = BlockingSurvey()
    for host in hosts:
        survey.verdicts.append(detect_active_blocking(network, host, ai_user_agents))
    return survey
