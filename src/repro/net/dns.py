"""Simulated DNS, as used for hosting-provider attribution.

Section 4.4 attributes artist websites to hosting providers via DNS: a
site is hosted on provider P when it is a subdomain of P's domain
(``example.carbonmade.com``) or when its DNS record points at P's
infrastructure (an A record in P's address space or a CNAME into P's
infra domain).  This module provides the zone storage, a resolver that
follows CNAME chains, and the attribution predicate.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["DnsZone", "Resolution", "ProviderInfra"]


@dataclass(frozen=True)
class Resolution:
    """Result of resolving one hostname.

    Attributes:
        host: The queried hostname.
        cname_chain: CNAME targets followed, in order (possibly empty).
        address: The terminal A record, or None when resolution failed.
    """

    host: str
    cname_chain: Tuple[str, ...]
    address: Optional[str]

    @property
    def terminal_host(self) -> str:
        """The final hostname after following CNAMEs."""
        return self.cname_chain[-1] if self.cname_chain else self.host


@dataclass(frozen=True)
class ProviderInfra:
    """A hosting provider's DNS footprint.

    Attributes:
        name: Provider name (e.g. ``"Squarespace"``).
        apex_domains: Domains under which customer sites may live as
            subdomains (e.g. ``carbonmade.com`` for
            ``jane.carbonmade.com``).
        infra_domains: Domains CNAME targets land in (e.g.
            ``ext-cust.squarespace.com``).
        ip_networks: CIDR blocks for the provider's front-end A records.
    """

    name: str
    apex_domains: Tuple[str, ...] = ()
    infra_domains: Tuple[str, ...] = ()
    ip_networks: Tuple[str, ...] = ()

    def owns_subdomain(self, host: str) -> bool:
        """Whether *host* is a (proper) subdomain of an apex domain."""
        host = host.lower().rstrip(".")
        return any(
            host.endswith("." + apex.lower()) for apex in self.apex_domains
        )

    def owns_host(self, host: str) -> bool:
        """Whether *host* lies in an infra domain (or equals one)."""
        host = host.lower().rstrip(".")
        for domain in self.infra_domains:
            domain = domain.lower()
            if host == domain or host.endswith("." + domain):
                return True
        return False

    def owns_address(self, address: str) -> bool:
        """Whether *address* falls in the provider's CIDR blocks."""
        try:
            ip = ipaddress.ip_address(address)
        except ValueError:
            return False
        return any(
            ip in ipaddress.ip_network(block) for block in self.ip_networks
        )


class DnsZone:
    """A flat zone: A and CNAME records plus resolution and attribution.

    >>> zone = DnsZone()
    >>> zone.add_cname("art.example.com", "ext-cust.squarespace.com")
    >>> zone.add_a("ext-cust.squarespace.com", "198.185.159.145")
    >>> zone.resolve("art.example.com").address
    '198.185.159.145'
    """

    MAX_CHAIN = 8

    def __init__(self) -> None:
        self._a: Dict[str, str] = {}
        self._cname: Dict[str, str] = {}

    def add_a(self, host: str, address: str) -> None:
        """Add an A record (validates the address)."""
        ipaddress.ip_address(address)
        self._a[host.lower()] = address

    def add_cname(self, host: str, target: str) -> None:
        """Add a CNAME record."""
        self._cname[host.lower()] = target.lower()

    def remove(self, host: str) -> None:
        """Remove all records for *host*."""
        self._a.pop(host.lower(), None)
        self._cname.pop(host.lower(), None)

    def resolve(self, host: str) -> Resolution:
        """Resolve *host*, following up to :attr:`MAX_CHAIN` CNAMEs."""
        host = host.lower().rstrip(".")
        chain: List[str] = []
        current = host
        for _ in range(self.MAX_CHAIN):
            if current in self._cname:
                current = self._cname[current]
                chain.append(current)
                continue
            break
        return Resolution(
            host=host, cname_chain=tuple(chain), address=self._a.get(current)
        )

    def attribute(
        self, host: str, providers: Sequence[ProviderInfra]
    ) -> Optional[str]:
        """Which provider hosts *host*, per the Section 4.4 methodology.

        Checks, in order: subdomain of a provider apex; CNAME chain
        terminating in provider infra; terminal A record in a provider
        network.  Returns the provider name or None.
        """
        host = host.lower().rstrip(".")
        for provider in providers:
            if provider.owns_subdomain(host):
                return provider.name
        resolution = self.resolve(host)
        for provider in providers:
            for hop in resolution.cname_chain:
                if provider.owns_host(hop):
                    return provider.name
        if resolution.address is not None:
            for provider in providers:
                if provider.owns_address(resolution.address):
                    return provider.name
        return None
