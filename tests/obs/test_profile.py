"""Continuous profiling hooks: phase samplers and the PROFILE.json artifact."""

import json

import pytest

from repro.obs.analyze import TelemetryError
from repro.obs.profile import PROFILE_SCHEMA_VERSION, Profiler, load_profile


class TestPhases:
    def test_phase_records_wall_time_and_attrs(self):
        profiler = Profiler(memory=False, cpu=False)
        with profiler.phase("world_build", world="seeded"):
            pass
        (phase,) = profiler.phases
        assert phase.name == "world_build"
        assert phase.attrs == {"world": "seeded"}
        assert phase.seconds >= 0.0

    def test_memory_sampler_sees_allocations(self):
        profiler = Profiler(memory=True, cpu=False)
        with profiler.phase("alloc"):
            blob = [str(i) * 100 for i in range(2000)]
        del blob
        (phase,) = profiler.phases
        assert phase.memory_peak_bytes is not None
        assert phase.memory_peak_bytes > 100_000

    def test_memory_peaks_are_per_phase(self):
        profiler = Profiler(memory=True, cpu=False)
        with profiler.phase("big"):
            blob = [str(i) * 100 for i in range(5000)]
            del blob
        with profiler.phase("small"):
            pass
        big, small = profiler.phases
        # The peak resets per phase; a quiet phase must not inherit the
        # noisy neighbor's high-water mark.
        assert small.memory_peak_bytes < big.memory_peak_bytes

    def test_cpu_sampler_captures_hot_functions(self):
        profiler = Profiler(memory=False, cpu=True)
        with profiler.phase("spin"):
            sum(i * i for i in range(200_000))
        (phase,) = profiler.phases
        assert phase.cpu_seconds is not None
        assert phase.cpu_top  # entries like {"function": "file:line:name", ...}
        assert all("function" in entry for entry in phase.cpu_top)

    def test_nested_phases_record_independently(self):
        profiler = Profiler(memory=False, cpu=True)
        with profiler.phase("outer"):
            with profiler.phase("inner"):
                pass
        names = [phase.name for phase in profiler.phases]
        assert names == ["inner", "outer"]  # completion order
        outer = profiler.phases[1]
        assert outer.cpu_seconds is not None  # only the outermost samples CPU

    def test_phase_survives_exceptions(self):
        profiler = Profiler(memory=False, cpu=False)
        with pytest.raises(RuntimeError):
            with profiler.phase("doomed"):
                raise RuntimeError("boom")
        assert [phase.name for phase in profiler.phases] == ["doomed"]


class TestExport:
    def test_export_writes_schema_versioned_profile(self, tmp_path):
        profiler = Profiler(memory=False, cpu=False)
        with profiler.phase("only"):
            pass
        path = profiler.export(tmp_path)
        assert path.name == "PROFILE.json"
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == PROFILE_SCHEMA_VERSION
        assert [phase["name"] for phase in payload["phases"]] == ["only"]

    def test_load_round_trips(self, tmp_path):
        profiler = Profiler(memory=True, cpu=False)
        with profiler.phase("p", key="figure2"):
            pass
        profiler.export(tmp_path)
        payload = load_profile(tmp_path / "PROFILE.json")
        assert payload["phases"][0]["attrs"] == {"key": "figure2"}

    def test_load_missing_raises_telemetry_error(self, tmp_path):
        with pytest.raises(TelemetryError, match="missing telemetry artifact"):
            load_profile(tmp_path / "PROFILE.json")

    def test_load_corrupt_raises_telemetry_error(self, tmp_path):
        path = tmp_path / "PROFILE.json"
        path.write_text('{"schema_version": 99, "phases": []}')
        with pytest.raises(TelemetryError, match="corrupt PROFILE.json"):
            load_profile(path)

    def test_summary_lines_one_per_phase(self):
        profiler = Profiler(memory=False, cpu=False)
        with profiler.phase("a"):
            pass
        with profiler.phase("b"):
            pass
        lines = profiler.summary_lines()
        assert len(lines) == 2
        assert lines[0].startswith("a")
