"""Section 3: longitudinal robots.txt analysis over snapshots.

Pipeline: take a web population, run the Common-Crawl-style snapshotter
over the 15 snapshot specs, filter to the Stable-with-robots set (the
paper's "Stable Top 100K": ranked every month *and* a robots.txt in
every snapshot), then compute the statistics behind Figures 2-4 and
Tables 3-4:

* per-snapshot % of sites fully disallowing >= 1 AI user agent, split
  by Top-5K tier (Figure 2),
* per-snapshot per-agent % partially-or-fully disallowing (Figure 3),
* explicit-allow counts and restriction removals per period (Figure 4),
* domains explicitly allowing GPTBot with first-allow snapshot
  (Table 4),
* snapshot coverage statistics (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..agents.darkvisitors import AI_USER_AGENT_TOKENS
from ..core.classify import (
    RestrictionLevel,
    classify,
    explicitly_allows,
    fully_disallows_any,
)
from ..core.policy import RobotsPolicy
from ..crawlers.commoncrawl import (
    SNAPSHOT_SPECS,
    Snapshot,
    SnapshotCrawler,
    SnapshotSpec,
)
from ..net.transport import Network
from ..web.population import WebPopulation

__all__ = [
    "SnapshotSeries",
    "collect_snapshots",
    "stable_with_robots",
    "full_disallow_trend",
    "per_agent_trend",
    "allow_and_removal_trend",
    "first_allow_table",
    "snapshot_coverage_table",
]

#: Agents plotted individually in Figure 3.
FIGURE3_AGENTS = [
    "GPTBot",
    "CCBot",
    "ChatGPT-User",
    "anthropic-ai",
    "Google-Extended",
    "Bytespider",
    "ClaudeBot",
    "PerplexityBot",
]


@dataclass
class SnapshotSeries:
    """All snapshots for a population plus derived site sets.

    Attributes:
        snapshots: One :class:`Snapshot` per spec, in time order.
        stable_domains: Domains of the population's stable set.
        analysis_domains: Stable domains with a robots.txt in *every*
            snapshot -- the paper's Stable Top 100K analogue.
    """

    snapshots: List[Snapshot]
    stable_domains: List[str]
    analysis_domains: List[str]

    def robots_for(self, domain: str, snapshot: Snapshot) -> Optional[str]:
        """robots.txt content for *domain* in *snapshot* (www fallback)."""
        record = snapshot.record_for(domain)
        if record is None or not record.ok:
            return None
        return record.robots_txt


def collect_snapshots(
    population: WebPopulation,
    specs: Sequence[SnapshotSpec] = tuple(SNAPSHOT_SPECS),
) -> SnapshotSeries:
    """Run the snapshot crawler over the population's stable set.

    Each snapshot materializes the population at the snapshot's month
    and crawls every stable site's robots.txt with the CCBot client.
    """
    domains = [site.domain for site in population.stable]
    snapshots: List[Snapshot] = []
    for spec in specs:
        network = Network()
        population.materialize(network, month=spec.month_index)
        crawler = SnapshotCrawler(network)
        snapshots.append(crawler.snapshot(spec, domains))
    analysis = stable_with_robots(snapshots, domains)
    return SnapshotSeries(
        snapshots=snapshots, stable_domains=domains, analysis_domains=analysis
    )


def stable_with_robots(
    snapshots: Sequence[Snapshot], domains: Sequence[str]
) -> List[str]:
    """Domains with a successfully fetched robots.txt in every snapshot."""
    keep: List[str] = []
    for domain in domains:
        ok_everywhere = True
        for snapshot in snapshots:
            record = snapshot.record_for(domain)
            if record is None or not record.ok:
                ok_everywhere = False
                break
        if ok_everywhere:
            keep.append(domain)
    return keep


def full_disallow_trend(
    series: SnapshotSeries,
    top5k_domains: Set[str],
    agents: Sequence[str] = tuple(AI_USER_AGENT_TOKENS),
    require_explicit: bool = True,
) -> List[Tuple[str, float, float]]:
    """Figure 2: % of sites fully disallowing >= 1 AI UA per snapshot.

    Returns rows ``(snapshot_id, pct_top5k, pct_other)`` in time order,
    percentages in [0, 100].
    """
    top = [d for d in series.analysis_domains if d in top5k_domains]
    other = [d for d in series.analysis_domains if d not in top5k_domains]
    rows: List[Tuple[str, float, float]] = []
    for snapshot in series.snapshots:
        def rate(domains: List[str]) -> float:
            if not domains:
                return 0.0
            hits = 0
            for domain in domains:
                text = series.robots_for(domain, snapshot)
                if text is not None and fully_disallows_any(
                    text, agents, require_explicit=require_explicit
                ):
                    hits += 1
            return 100.0 * hits / len(domains)

        rows.append((snapshot.spec.snapshot_id, rate(top), rate(other)))
    return rows


def per_agent_trend(
    series: SnapshotSeries,
    agents: Sequence[str] = tuple(FIGURE3_AGENTS),
) -> Dict[str, List[Tuple[str, float]]]:
    """Figure 3: per-agent % of sites partially or fully disallowing.

    Returns, per agent, rows ``(snapshot_id, pct)`` over the analysis
    set.
    """
    out: Dict[str, List[Tuple[str, float]]] = {agent: [] for agent in agents}
    population = series.analysis_domains
    for snapshot in series.snapshots:
        policies: List[Optional[RobotsPolicy]] = []
        for domain in population:
            text = series.robots_for(domain, snapshot)
            policies.append(RobotsPolicy(text) if text is not None else None)
        for agent in agents:
            hits = 0
            for policy in policies:
                if policy is None:
                    continue
                if classify(policy, agent).level.disallows:
                    hits += 1
            pct = 100.0 * hits / len(population) if population else 0.0
            out[agent].append((snapshot.spec.snapshot_id, pct))
    return out


@dataclass
class AllowRemovalTrend:
    """Figure 4's two series plus per-domain detail.

    Attributes:
        explicit_allow_counts: ``(snapshot_id, count)`` of sites
            explicitly allowing >= 1 AI agent.
        removals_per_period: ``(snapshot_id, count)`` of sites that had
            an explicit full restriction on an agent in the previous
            snapshot and no restriction in this one.
        removal_domains: Domains that removed restrictions, with the
            snapshot where the removal was first observed.
    """

    explicit_allow_counts: List[Tuple[str, int]] = field(default_factory=list)
    removals_per_period: List[Tuple[str, int]] = field(default_factory=list)
    removal_domains: Dict[str, str] = field(default_factory=dict)


def allow_and_removal_trend(
    series: SnapshotSeries,
    agents: Sequence[str] = tuple(AI_USER_AGENT_TOKENS),
    removal_agent: str = "GPTBot",
) -> AllowRemovalTrend:
    """Figure 4: explicit allows over time and removals per period."""
    trend = AllowRemovalTrend()
    previous_restricted: Set[str] = set()
    first = True
    for snapshot in series.snapshots:
        allows = 0
        restricted_now: Set[str] = set()
        removed_now = 0
        for domain in series.analysis_domains:
            text = series.robots_for(domain, snapshot)
            if text is None:
                continue
            policy = RobotsPolicy(text)
            if any(explicitly_allows(policy, agent) for agent in agents):
                allows += 1
            level = classify(policy, removal_agent).level
            if level is RestrictionLevel.FULL:
                restricted_now.add(domain)
        if not first:
            for domain in previous_restricted - restricted_now:
                removed_now += 1
                trend.removal_domains.setdefault(domain, snapshot.spec.snapshot_id)
        trend.explicit_allow_counts.append((snapshot.spec.snapshot_id, allows))
        trend.removals_per_period.append(
            (snapshot.spec.snapshot_id, 0 if first else removed_now)
        )
        previous_restricted = restricted_now
        first = False
    return trend


def first_allow_table(
    series: SnapshotSeries, agent: str = "GPTBot"
) -> List[Tuple[str, str]]:
    """Table 4: domains explicitly allowing *agent*, with the first
    snapshot where the allow was observed."""
    rows: List[Tuple[str, str]] = []
    seen: Set[str] = set()
    for snapshot in series.snapshots:
        for domain in series.analysis_domains:
            if domain in seen:
                continue
            text = series.robots_for(domain, snapshot)
            if text is not None and explicitly_allows(text, agent):
                rows.append((domain, snapshot.spec.snapshot_id))
                seen.add(domain)
    return rows


def snapshot_coverage_table(series: SnapshotSeries) -> List[Tuple[str, str, int, int]]:
    """Table 3: per snapshot, sites present and sites with robots.txt.

    Returns rows ``(snapshot_id, label, n_sites, n_with_robots)``.
    """
    rows = []
    for snapshot in series.snapshots:
        n_sites = sum(
            1
            for domain in series.stable_domains
            if (record := snapshot.record_for(domain)) is not None
            and (record.ok or record.missing)
        )
        n_robots = sum(
            1
            for domain in series.stable_domains
            if (record := snapshot.record_for(domain)) is not None and record.ok
        )
        rows.append((snapshot.spec.snapshot_id, snapshot.spec.label, n_sites, n_robots))
    return rows
