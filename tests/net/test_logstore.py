"""Columnar wide-event log store: sink, writer/reader, validation."""

import json

import pytest

from repro.net.logstore import (
    LOGSTORE_SCHEMA_FINGERPRINT,
    LogShardReader,
    LogSink,
    LogStore,
    LogStoreError,
    ShardLogWriter,
    log_stream,
)


def _emit(sink, host, path="/", agent="GPTBot", outcome="served",
          category="art", month=0, status=200, ticks=0, robots=False,
          ua="Mozilla/5.0 (compatible; GPTBot/1.0)"):
    sink.emit(host, path, ua, agent, outcome, category, month, status,
              ticks, robots)


# -- sink streams & deltas ------------------------------------------------


def test_sink_orders_streams_by_label_not_emission_time():
    sink = LogSink()
    with log_stream("unit:b"):
        _emit(sink, "b.example", ticks=10)
    with log_stream("unit:a"):
        _emit(sink, "a.example", ticks=20)
    ordered = sink.ordered_events()
    assert [event[0] for event in ordered] == ["a.example", "b.example"]
    assert sink.stream_labels() == ["unit:a", "unit:b"]
    assert sink.event_count() == 2


def test_sink_nested_streams_restore_previous_label():
    sink = LogSink()
    with log_stream("outer"):
        _emit(sink, "one.example")
        with log_stream("outer/inner"):
            _emit(sink, "two.example")
        _emit(sink, "three.example")
    assert sink.stream_labels() == ["outer", "outer/inner"]
    outer = sink._streams["outer"]
    assert [event[0] for event in outer] == ["one.example", "three.example"]


def test_sink_marks_delta_merge_round_trip():
    parent = LogSink()
    with log_stream("shared"):
        _emit(parent, "pre.example")

    # A fork worker inherits pre-fork events; marks keep them out of
    # the shipped delta.
    worker = LogSink()
    worker.merge(parent.delta({}))  # simulate fork inheritance
    marks = worker.marks()
    with log_stream("shared"):
        _emit(worker, "work1.example")
    with log_stream("unit:x"):
        _emit(worker, "work2.example")
    delta = worker.delta(marks)
    assert set(delta) == {"shared", "unit:x"}
    assert [event[0] for event in delta["shared"]] == ["work1.example"]

    parent.merge(delta)
    assert [event[0] for event in parent.ordered_events()] == [
        "pre.example", "work1.example", "work2.example"
    ]


def test_sink_delta_empty_when_nothing_new():
    sink = LogSink()
    _emit(sink, "a.example")
    marks = sink.marks()
    assert sink.delta(marks) == {}


# -- round trip -----------------------------------------------------------


def test_commit_open_round_trip_preserves_every_field(tmp_path):
    sink = LogSink()
    with log_stream("unit"):
        _emit(sink, "site.example", path="/robots.txt", agent="CCBot",
              outcome="served", category="news", month=3, status=200,
              ticks=17, robots=True, ua="CCBot/2.0")
        _emit(sink, "site.example", path="/a?q=1", agent="CCBot",
              outcome="blocked_403", category="news", month=-1, status=403,
              ticks=42, robots=False, ua="CCBot/2.0")
    root = sink.commit(tmp_path / "logs", config_digest="deadbeef")

    with LogStore.open(root) as store:
        assert store.config_digest == "deadbeef"
        assert store.n_records == 2
        first, second = list(store.records())
    assert first.seq == 0 and second.seq == 1
    assert first.host == "site.example"
    assert first.path == "/robots.txt"
    assert first.user_agent == "CCBot/2.0"
    assert first.agent == "CCBot"
    assert first.outcome == "served"
    assert first.category == "news"
    assert (first.month, first.status, first.ticks) == (3, 200, 17)
    assert first.robots_fetch and not second.robots_fetch
    assert second.month == -1  # signed month survives the i16 column
    assert second.outcome == "blocked_403"


def test_commit_is_byte_identical_regardless_of_emission_order(tmp_path):
    def build(order):
        sink = LogSink()
        for label, host in order:
            with log_stream(label):
                _emit(sink, host, ticks=hash(host) % 1000)
        return sink

    a = build([("u:1", "x.example"), ("u:2", "y.example")])
    b = build([("u:2", "y.example"), ("u:1", "x.example")])
    a.commit(tmp_path / "a", config_digest="d", n_shards=2)
    b.commit(tmp_path / "b", config_digest="d", n_shards=2)

    files_a = sorted(p.relative_to(tmp_path / "a")
                     for p in (tmp_path / "a").rglob("*") if p.is_file())
    files_b = sorted(p.relative_to(tmp_path / "b")
                     for p in (tmp_path / "b").rglob("*") if p.is_file())
    assert files_a == files_b
    for rel in files_a:
        assert ((tmp_path / "a" / rel).read_bytes()
                == (tmp_path / "b" / rel).read_bytes()), rel


def test_commit_partitions_hosts_across_shards(tmp_path):
    sink = LogSink()
    with log_stream("unit"):
        for index in range(40):
            _emit(sink, f"site-{index}.example", ticks=index)
    sink.commit(tmp_path / "logs", n_shards=4)
    with LogStore.open(tmp_path / "logs") as store:
        assert store.n_shards == 4
        assert store.n_records == 40
        # The heap merge restores global sequence order across shards.
        seqs = [record.seq for record in store.records()]
        assert seqs == list(range(40))
        assert store.verify()["records"] == 40


def test_commit_writes_empty_shards_for_complete_id_set(tmp_path):
    sink = LogSink()
    with log_stream("unit"):
        _emit(sink, "only.example")
    sink.commit(tmp_path / "logs", n_shards=3)
    with LogStore.open(tmp_path / "logs") as store:
        assert store.n_shards == 3
        assert store.n_records == 1


def test_empty_sink_commit_yields_openable_empty_store(tmp_path):
    LogSink().commit(tmp_path / "logs")
    with LogStore.open(tmp_path / "logs") as store:
        assert store.n_records == 0
        assert list(store.records()) == []
        store.verify()


# -- validation & errors --------------------------------------------------


def _one_shard_store(tmp_path, **kwargs):
    sink = LogSink()
    with log_stream("unit"):
        _emit(sink, "site.example", ua="AgentOne/1.0")
        _emit(sink, "site.example", path="/two", ua="AgentTwo/2.0")
    return sink.commit(tmp_path / "logs", n_shards=1, **kwargs)


def test_open_missing_directory_is_one_line_error(tmp_path):
    with pytest.raises(LogStoreError, match="not a log store"):
        LogStore.open(tmp_path / "nope")


def test_shard_without_manifest_is_rejected(tmp_path):
    root = _one_shard_store(tmp_path)
    (root / "shard-0000" / "manifest.json").unlink()
    with pytest.raises(LogStoreError, match="no manifest"):
        LogStore.open(root)


def test_corrupt_manifest_is_rejected(tmp_path):
    root = _one_shard_store(tmp_path)
    (root / "shard-0000" / "manifest.json").write_text("{not json")
    with pytest.raises(LogStoreError, match="corrupt log-store manifest"):
        LogStore.open(root)


def test_stale_schema_fingerprint_is_rejected(tmp_path):
    root = _one_shard_store(tmp_path)
    manifest_path = root / "shard-0000" / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    assert manifest["schema_fingerprint"] == LOGSTORE_SCHEMA_FINGERPRINT
    manifest["schema_fingerprint"] = "0" * 64
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(LogStoreError, match="stale log-store schema"):
        LogStore.open(root)


def test_truncated_records_column_is_rejected(tmp_path):
    root = _one_shard_store(tmp_path)
    records = root / "shard-0000" / "records.bin"
    records.write_bytes(records.read_bytes()[:-4])
    with pytest.raises(LogStoreError, match="truncated log-store column"):
        LogStore.open(root)


def test_missing_column_file_is_rejected(tmp_path):
    root = _one_shard_store(tmp_path)
    (root / "shard-0000" / "hosts.txt").unlink()
    with pytest.raises(LogStoreError, match="missing log-store column"):
        LogStore.open(root)


def test_incomplete_shard_set_is_rejected(tmp_path):
    sink = LogSink()
    with log_stream("unit"):
        for index in range(10):
            _emit(sink, f"s{index}.example")
    root = sink.commit(tmp_path / "logs", n_shards=3)
    # Drop one shard wholesale: the remaining ids no longer cover 0..2.
    import shutil

    shutil.rmtree(root / "shard-0001")
    with pytest.raises(LogStoreError, match="incomplete log store"):
        LogStore.open(root)


def test_mixed_config_digests_are_rejected(tmp_path):
    root = tmp_path / "logs"
    for shard_id, digest in ((0, "aaaa"), (1, "bbbb")):
        writer = ShardLogWriter(root, shard_id, 2, config_digest=digest)
        writer.commit()
    with pytest.raises(LogStoreError, match="mixed config digests"):
        LogStore.open(root)


def test_verify_catches_ua_table_corruption(tmp_path):
    root = _one_shard_store(tmp_path)
    shard = root / "shard-0000"
    blob = bytearray((shard / "uas.bin").read_bytes())
    blob[0] ^= 0xFF
    (shard / "uas.bin").write_bytes(bytes(blob))
    # Same size, so open-time validation passes; verify() catches it
    # (as a digest mismatch, or as a corrupt table when the flipped
    # byte breaks UTF-8 decoding first).
    with LogStore.open(root) as store:
        with pytest.raises(LogStoreError, match="UA table"):
            store.verify()


def test_reader_ua_text_and_columns(tmp_path):
    root = _one_shard_store(tmp_path)
    with LogShardReader(root / "shard-0000") as reader:
        assert reader.ua_text(0) == "AgentOne/1.0"
        assert reader.ua_text(1) == "AgentTwo/2.0"
        assert list(reader.column("seq")) == [0, 1]
        with pytest.raises(KeyError):
            reader.column("nope")


def test_interner_cap_is_enforced(tmp_path):
    writer = ShardLogWriter(tmp_path / "logs", 0, 1)
    event = ["h", "/", "ua", "agent", "served", "cat", 0, 200, 0, False]
    for index in range(256):
        event[4] = f"outcome-{index}"  # outcome refs are u8
        writer.add(index, tuple(event))
    event[4] = "outcome-overflow"
    with pytest.raises(LogStoreError, match="too many distinct outcomes"):
        writer.add(256, tuple(event))
