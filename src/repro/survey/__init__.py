"""The artist user study: instrument, respondents, coding, analysis."""

from .analysis import SurveyAnalysis, analyze
from .crosstabs import (
    ContingencyTable,
    actions_by_impact,
    awareness_by_professional,
    build_contingency,
    chi_square,
    intent_by_familiarity,
)
from .coding import (
    ACTIONS_CODEBOOK,
    DISTRUST_CODEBOOK,
    ENABLE_CODEBOOK,
    NO_ADOPT_CODEBOOK,
    Codebook,
    Theme,
    code_response,
)
from .instrument import (
    ROBOTS_EXPLAINER,
    SURVEY,
    Question,
    QuestionType,
    question,
)
from .respondents import Respondent, filter_valid, generate_respondents

__all__ = [
    "SurveyAnalysis",
    "analyze",
    "ContingencyTable",
    "actions_by_impact",
    "awareness_by_professional",
    "build_contingency",
    "chi_square",
    "intent_by_familiarity",
    "ACTIONS_CODEBOOK",
    "DISTRUST_CODEBOOK",
    "ENABLE_CODEBOOK",
    "NO_ADOPT_CODEBOOK",
    "Codebook",
    "Theme",
    "code_response",
    "ROBOTS_EXPLAINER",
    "SURVEY",
    "Question",
    "QuestionType",
    "question",
    "Respondent",
    "filter_valid",
    "generate_respondents",
]
