"""Figure 4 + Table 4: explicit allows and restriction removals.

Paper shape: the number of sites explicitly allowing AI crawlers grows
over time (79 sites allow GPTBot by October 2024 out of 40,455);
restriction removals cluster around publisher data-deal months, with
484 sites removing GPTBot restrictions between August 2023 and October
2024.  Scaled to the paper's population, our counts should land near
those totals.
"""

from conftest import save_artifact

from repro.report.experiments import run_figure4


def test_figure4_allows_and_removals(benchmark, longitudinal_bundle, artifact_dir):
    result = benchmark.pedantic(
        run_figure4, args=(longitudinal_bundle,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, result)
    print(result.text)

    metrics = result.metrics
    assert metrics["final_explicit_allows"] >= 1
    assert metrics["total_removals"] >= 5
    # Paper equivalents: 484 removers, 79 allowers (generous bands for
    # small-population integer effects).
    assert 250 <= metrics["removals_paper_equivalent"] <= 900
    assert 25 <= metrics["allows_paper_equivalent"] <= 180
    assert metrics["n_table4_domains"] >= metrics["final_explicit_allows"] - 1
