"""Section 5: do AI crawlers respect robots.txt?

Reproduces the paper's testbed methodology end to end:

* **Setup** -- two logged websites (Section 5.1): one whose robots.txt
  disallows all crawlers with a wildcard rule, one that disallows every
  AI user agent individually.
* **Passive measurement** -- the crawler fleet roams for six months;
  compliance per crawler is then *derived from the server logs alone*
  (did the UA fetch robots.txt? did it fetch content it was forbidden?).
* **Active measurement** -- built-in assistants and GPT-store apps are
  triggered against per-app probe URLs; third-party crawlers are merged
  by shared registered domain or source IP (union-find), then each
  merged crawler is classified.

The output is the machine-checkable form of Table 1's "Respect in
Practice" column plus the Section 5.2.2 third-party breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..agents.darkvisitors import build_registry
from ..agents.registry import Compliance
from ..core.compiled import shared_policy_cache
from ..core.serialize import RobotsBuilder
from ..crawlers.assistant import GptApp, GptAppStore
from ..crawlers.engine import Crawler
from ..crawlers.fleet import FleetMember
from ..net.server import Website, render_page
from ..net.transport import Network

__all__ = [
    "WILDCARD_HOST",
    "PER_AGENT_HOST",
    "Testbed",
    "build_testbed",
    "run_passive_measurement",
    "PassiveObservation",
    "analyze_passive",
    "ActiveObservation",
    "run_active_measurement",
    "merge_third_party_crawlers",
    "classify_merged_crawler",
]

WILDCARD_HOST = "testbed-wildcard.example"
PER_AGENT_HOST = "testbed-peragent.example"


@dataclass
class Testbed:
    """The two measurement websites on a shared network."""

    network: Network
    wildcard_site: Website
    per_agent_site: Website

    def clear_logs(self) -> None:
        """Reset both sites' access logs."""
        self.wildcard_site.access_log.clear()
        self.per_agent_site.access_log.clear()


def build_testbed(agent_tokens: Sequence[str], network: Optional[Network] = None) -> Testbed:
    """Create the two testbed sites (Section 5.1's experiment setup)."""
    network = network or Network()

    wildcard = Website(WILDCARD_HOST)
    _fill_pages(wildcard)
    wildcard_robots = RobotsBuilder().group("*").disallow("/").build()
    wildcard.set_robots_txt(wildcard_robots)

    per_agent = Website(PER_AGENT_HOST)
    _fill_pages(per_agent)
    builder = RobotsBuilder()
    for token in agent_tokens:
        builder.group(token).disallow("/")
    per_agent_robots = builder.build()
    per_agent.set_robots_txt(per_agent_robots)

    # Pre-warm the content-addressed compile cache: every obedient
    # crawler in the fleet will resolve these two bodies to the same
    # compiled policy objects the analysis layer uses.
    cache = shared_policy_cache()
    cache.policy(wildcard_robots)
    cache.policy(per_agent_robots)

    network.register(wildcard)
    network.register(per_agent)
    return Testbed(network=network, wildcard_site=wildcard, per_agent_site=per_agent)


def _fill_pages(site: Website) -> None:
    site.add_page(
        "/",
        render_page(
            "Research testbed",
            paragraphs=["Basic text content."],
            links=["/page1", "/page2"],
            images=["/img/photo.png"],
        ),
    )
    site.add_page("/page1", render_page("Page 1", links=["/page2"]))
    site.add_page("/page2", render_page("Page 2"))


# -- passive measurement --------------------------------------------------------


def run_passive_measurement(
    fleet: Dict[str, FleetMember], testbed: Testbed, months: int = 6
) -> None:
    """Let unprompted crawlers roam the testbed for *months* steps."""
    for step in range(months):
        testbed.network.now = float(step * 30 * 86400)
        testbed.network.month = step
        for member in fleet.values():
            if not member.visits_unprompted:
                continue
            if member.passive_quirk == "single-visit-no-robots":
                # ChatGPT-User's anomaly: exactly one visit in the whole
                # window, fetching content without consulting robots.txt.
                if step == 0:
                    member.crawler.raw_fetch(WILDCARD_HOST, "/")
                continue
            member.crawler.crawl(WILDCARD_HOST)
            member.crawler.crawl(PER_AGENT_HOST)


@dataclass
class PassiveObservation:
    """Log-derived behavior of one user agent during the passive window.

    Attributes:
        token: Crawler token.
        visited: Any request seen from this UA.
        fetched_robots: robots.txt requested on at least one site.
        fetched_disallowed_content: Content fetched despite a robots.txt
            rule that forbids it.
        respects: Derived verdict (YES / NO / UNKNOWN-when-not-visited).
    """

    token: str
    visited: bool
    fetched_robots: bool
    fetched_disallowed_content: bool

    @property
    def respects(self) -> Compliance:
        if not self.visited:
            return Compliance.UNKNOWN
        if self.fetched_disallowed_content:
            return Compliance.NO
        return Compliance.YES


def analyze_passive(
    testbed: Testbed, agent_tokens: Sequence[str]
) -> Dict[str, PassiveObservation]:
    """Derive per-agent compliance from the testbed's server logs.

    Both testbed sites disallow every AI agent everywhere, so *any*
    content fetch by an AI UA is a violation; robots.txt fetches are
    always permitted.
    """
    logs = [testbed.wildcard_site.access_log, testbed.per_agent_site.access_log]
    out: Dict[str, PassiveObservation] = {}
    for token in agent_tokens:
        visited = any(log.entries(user_agent_contains=token) for log in logs)
        fetched_robots = any(log.fetched_robots(token) for log in logs)
        fetched_content = any(log.fetched_content(token) for log in logs)
        out[token] = PassiveObservation(
            token=token,
            visited=visited,
            fetched_robots=fetched_robots,
            fetched_disallowed_content=fetched_content,
        )
    return out


# -- active measurement -----------------------------------------------------------


@dataclass
class ActiveObservation:
    """What one triggered app's fetch looked like from the server side.

    Attributes:
        app_name: The GPT app triggered.
        contacted_domain: The backend domain the app declares/contacts.
        crawler_ips: Source IPs seen for this app's probe path.
        fetched_robots: Whether a correct robots.txt fetch occurred
            around the probe.
        fetched_buggy_robots: Whether a malformed robots path was hit.
        fetched_content: Whether the probe content path was retrieved.
    """

    app_name: str
    contacted_domain: str
    crawler_ips: Tuple[str, ...]
    fetched_robots: bool
    fetched_buggy_robots: bool
    fetched_content: bool


def run_active_measurement(
    store: GptAppStore,
    testbed: Testbed,
    host: str = WILDCARD_HOST,
    triggers_per_app: int = 3,
) -> List[ActiveObservation]:
    """Trigger every browsing app against per-app probe URLs.

    Each app is asked *triggers_per_app* times (the paper used two
    prompt formats; more triggers expose intermittent robots.txt
    fetching), each against a distinct probe path so server log entries
    can be attributed to the app.
    """
    site = testbed.wildcard_site if host == WILDCARD_HOST else testbed.per_agent_site
    observations: List[ActiveObservation] = []
    for app in store.browsing_apps():
        before = len(site.access_log)
        for attempt in range(triggers_per_app):
            app.trigger_fetch(host, f"/probe/{app.name}/{attempt}")
        entries = list(site.access_log)[before:]
        probe_prefix = f"/probe/{app.name}/"
        ips = tuple(dict.fromkeys(e.client_ip for e in entries))
        fetched_robots = any(e.path.split("?", 1)[0] == "/robots.txt" for e in entries)
        fetched_buggy = any(
            e.path.startswith("/robots.txt") and e.path != "/robots.txt"
            for e in entries
        )
        fetched_content = any(e.path.startswith(probe_prefix) for e in entries)
        observations.append(
            ActiveObservation(
                app_name=app.name,
                contacted_domain=app.service.registered_domain,
                crawler_ips=ips,
                fetched_robots=fetched_robots,
                fetched_buggy_robots=fetched_buggy,
                fetched_content=fetched_content,
            )
        )
    return observations


def merge_third_party_crawlers(
    observations: Sequence[ActiveObservation],
) -> List[List[ActiveObservation]]:
    """Union-find merge of apps sharing a registered domain or an IP.

    This is the Section 5.1 identity-resolution step that reduces
    hundreds of browsing apps to 23 distinct third-party crawlers.
    """
    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for index in range(len(observations)):
        parent[index] = index
    by_domain: Dict[str, int] = {}
    by_ip: Dict[str, int] = {}
    for index, obs in enumerate(observations):
        if obs.contacted_domain in by_domain:
            union(by_domain[obs.contacted_domain], index)
        else:
            by_domain[obs.contacted_domain] = index
        for ip in obs.crawler_ips:
            if ip in by_ip:
                union(by_ip[ip], index)
            else:
                by_ip[ip] = index

    groups: Dict[int, List[ActiveObservation]] = {}
    for index, obs in enumerate(observations):
        groups.setdefault(find(index), []).append(obs)
    return list(groups.values())


def classify_merged_crawler(group: Sequence[ActiveObservation]) -> str:
    """Classify one merged crawler's robots.txt treatment.

    Returns one of ``"respects"``, ``"buggy-fetch"``,
    ``"intermittent"``, ``"no-fetch"``, or ``"no-traffic"``.
    """
    fetched_robots = [o for o in group if o.fetched_robots]
    fetched_buggy = [o for o in group if o.fetched_buggy_robots]
    fetched_content = [o for o in group if o.fetched_content]
    made_requests = [
        o for o in group
        if o.fetched_content or o.fetched_robots or o.fetched_buggy_robots
    ]
    if not made_requests:
        return "no-traffic"
    if fetched_buggy and not fetched_robots:
        return "buggy-fetch"
    if not fetched_robots:
        return "no-fetch"
    if fetched_content:
        # It saw the (fully disallowing) policy on some triggers yet
        # still fetched content on others: intermittent consultation.
        return "intermittent"
    return "respects"
