"""Continuous profiling hooks: per-phase memory and CPU profiles.

Spans (:mod:`repro.obs.trace`) say *how long* each pipeline phase
took; this module says *where the time and memory went*.  A
:class:`Profiler` wraps the same phase boundaries the span tree uses
(world build, each experiment, stratum batteries) and samples two
stdlib profilers:

* :mod:`tracemalloc` -- allocation delta, end-of-phase current size,
  window peak, and the top allocation sites, per phase;
* :mod:`cProfile` -- total CPU and the hottest functions by
  cumulative time, for the **outermost** phase on its thread (the
  stdlib profiler is process-global, so nested or concurrent phases
  record memory only).

Profiles export as ``PROFILE.json`` into the telemetry directory next
to ``TRACE.jsonl`` (``repro reproduce --profile --telemetry-dir``) and
``repro stats`` renders them.  Like tracing, profiling is strictly
opt-in: nothing here runs unless a profiler is passed into the
orchestrator, so the batch hot path keeps its <1% obs budget.

Caveats, stated rather than hidden: cProfile observes only the thread
that entered the phase, so thread/fork experiment batteries report
scheduler-side CPU, not worker internals; tracemalloc numbers include
the profiler's own bookkeeping (small, but nonzero).
"""

from __future__ import annotations

import cProfile
import json
import pstats
import threading
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "PhaseProfile",
    "Profiler",
    "load_profile",
]

#: Schema version stamped into exported PROFILE.json payloads.
PROFILE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class PhaseProfile:
    """One profiled phase: wall time, memory movement, hot functions."""

    name: str
    seconds: float
    attrs: Dict[str, object] = field(default_factory=dict)
    memory_current_bytes: Optional[int] = None
    memory_peak_bytes: Optional[int] = None
    memory_delta_bytes: Optional[int] = None
    top_allocations: List[Dict[str, object]] = field(default_factory=list)
    cpu_seconds: Optional[float] = None
    cpu_top: List[Dict[str, object]] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        """A JSON-able rendering."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "attrs": dict(self.attrs),
            "memory_current_bytes": self.memory_current_bytes,
            "memory_peak_bytes": self.memory_peak_bytes,
            "memory_delta_bytes": self.memory_delta_bytes,
            "top_allocations": list(self.top_allocations),
            "cpu_seconds": self.cpu_seconds,
            "cpu_top": list(self.cpu_top),
        }


class Profiler:
    """Collects :class:`PhaseProfile` records via :meth:`phase` blocks.

    >>> profiler = Profiler()
    >>> with profiler.phase("build", sites=100):
    ...     _ = [bytearray(1024) for _ in range(10)]
    >>> profiler.phases[0].name
    'build'
    """

    def __init__(self, memory: bool = True, cpu: bool = True, top_n: int = 10):
        self.phases: List[PhaseProfile] = []
        self._memory = memory
        self._cpu = cpu
        self._top_n = top_n
        self._lock = threading.Lock()
        self._cpu_active = False
        self._local = threading.local()

    @contextmanager
    def phase(self, name: str, **attrs: object) -> Iterator[None]:
        """Profile the block as one named phase.

        Nested phases record memory only (the CPU profiler is
        process-global); each phase's ``memory_peak_bytes`` is the
        traced peak *since that phase started* (entering a nested
        phase resets the shared peak counter -- window-local peaks,
        by design).
        """
        depth = getattr(self._local, "depth", 0)
        self._local.depth = depth + 1

        owns_tracing = False
        before_current = None
        snapshot_before = None
        if self._memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                owns_tracing = True
            tracemalloc.reset_peak()
            before_current, _ = tracemalloc.get_traced_memory()
            snapshot_before = tracemalloc.take_snapshot()

        profile: Optional[cProfile.Profile] = None
        if self._cpu and depth == 0:
            with self._lock:
                if not self._cpu_active:
                    self._cpu_active = True
                    profile = cProfile.Profile()
            if profile is not None:
                try:
                    profile.enable()
                except ValueError:  # another profiler owns the hook
                    with self._lock:
                        self._cpu_active = False
                    profile = None

        started = time.perf_counter()
        try:
            yield
        finally:
            seconds = time.perf_counter() - started
            cpu_seconds = None
            cpu_top: List[Dict[str, object]] = []
            if profile is not None:
                profile.disable()
                with self._lock:
                    self._cpu_active = False
                cpu_seconds, cpu_top = _cpu_stats(profile, self._top_n)

            current = peak = delta = None
            allocations: List[Dict[str, object]] = []
            if self._memory and snapshot_before is not None:
                current, peak = tracemalloc.get_traced_memory()
                delta = current - (before_current or 0)
                snapshot_after = tracemalloc.take_snapshot()
                allocations = _allocation_stats(
                    snapshot_after, snapshot_before, self._top_n
                )
                if owns_tracing:
                    tracemalloc.stop()

            self._local.depth = depth
            record = PhaseProfile(
                name=name,
                seconds=seconds,
                attrs=dict(attrs),
                memory_current_bytes=current,
                memory_peak_bytes=peak,
                memory_delta_bytes=delta,
                top_allocations=allocations,
                cpu_seconds=cpu_seconds,
                cpu_top=cpu_top,
            )
            with self._lock:
                self.phases.append(record)

    # -- export ----------------------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        """A schema-versioned, JSON-able rendering of every phase."""
        with self._lock:
            phases = list(self.phases)
        return {
            "schema_version": PROFILE_SCHEMA_VERSION,
            "phases": [phase.to_json() for phase in phases],
        }

    def export(self, directory: Union[str, Path]) -> Path:
        """Write ``PROFILE.json`` into *directory* (created if needed)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / "PROFILE.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=False)
            handle.write("\n")
        return path

    def summary_lines(self) -> List[str]:
        """Human-oriented one-liners, for the CLI."""
        with self._lock:
            phases = list(self.phases)
        lines = []
        for phase in phases:
            parts = [f"{phase.name:<28} {phase.seconds:8.3f}s"]
            if phase.memory_peak_bytes is not None:
                parts.append(f"peak {phase.memory_peak_bytes / 1e6:8.2f} MB")
            if phase.memory_delta_bytes is not None:
                parts.append(f"delta {phase.memory_delta_bytes / 1e6:+8.2f} MB")
            if phase.cpu_seconds is not None:
                parts.append(f"cpu {phase.cpu_seconds:7.3f}s")
            lines.append("  ".join(parts))
        return lines


def _cpu_stats(profile: cProfile.Profile, top_n: int):
    """Total CPU seconds and the top functions by cumulative time."""
    stats = pstats.Stats(profile)
    total = sum(entry[2] for entry in stats.stats.values())  # tt per function
    ranked = sorted(
        stats.stats.items(), key=lambda item: item[1][3], reverse=True
    )
    top = [
        {
            "function": f"{path.rsplit('/', 1)[-1]}:{line}:{func}",
            "calls": calls,
            "cumulative_seconds": round(cumulative, 6),
            "total_seconds": round(internal, 6),
        }
        for (path, line, func), (calls, _, internal, cumulative, _) in ranked[:top_n]
    ]
    return round(total, 6), top


def _allocation_stats(after, before, top_n: int) -> List[Dict[str, object]]:
    """The top allocation sites by size growth between two snapshots."""
    diffs = after.compare_to(before, "lineno")
    return [
        {
            "site": str(stat.traceback),
            "size_delta_bytes": stat.size_diff,
            "count_delta": stat.count_diff,
        }
        for stat in diffs[:top_n]
        if stat.size_diff > 0
    ]


def load_profile(path: Union[str, Path]) -> Dict[str, object]:
    """Parse a ``PROFILE.json`` payload, validating its schema.

    Raises :class:`repro.obs.analyze.TelemetryError` on a missing or
    corrupt file, matching the other artifact loaders.
    """
    from .analyze import TelemetryError

    path = Path(path)
    if not path.is_file():
        raise TelemetryError(f"missing telemetry artifact: {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (ValueError, OSError) as exc:
        raise TelemetryError(f"corrupt PROFILE.json: {path}: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("schema_version") != PROFILE_SCHEMA_VERSION
        or not isinstance(payload.get("phases"), list)
    ):
        raise TelemetryError(f"corrupt PROFILE.json: {path}: unrecognized shape")
    return payload
