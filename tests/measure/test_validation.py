"""Tests for snapshot cross-validation (Section 3.1's methodology)."""

import pytest

from repro.crawlers.commoncrawl import SNAPSHOT_SPECS, SnapshotCrawler
from repro.measure.validation import cross_validate_snapshot
from repro.net.transport import Network
from repro.web.population import PopulationConfig, build_web_population

CONFIG = PopulationConfig(
    universe_size=900, list_size=600, top5k_cut=80, audit_size=150, seed=17
)


@pytest.fixture(scope="module")
def world():
    population = build_web_population(CONFIG)
    # Take the snapshot where churn is plausible: post-announcement.
    spec = SNAPSHOT_SPECS[7]  # 2023-50 (Feb/Mar 2024)
    network = Network()
    population.materialize(network, month=spec.month_index)
    snapshot = SnapshotCrawler(network).snapshot(
        spec, [s.domain for s in population.stable]
    )
    return population, snapshot


class TestCrossValidation:
    def test_same_time_crawl_agrees_perfectly(self, world):
        population, snapshot = world
        report = cross_validate_snapshot(
            population, snapshot, p_lagged=0.0, seed=1
        )
        assert report.n_compared > 100
        assert report.agreement_rate == 1.0
        assert report.unexplained == []

    def test_lagged_crawl_shows_small_timing_disagreement(self, world):
        population, snapshot = world
        report = cross_validate_snapshot(
            population, snapshot, p_lagged=0.25, seed=2
        )
        # Like the paper: some disagreement, all explained by timing.
        assert report.unexplained == []
        assert report.disagreement_rate < 0.05
        if report.n_timing_disagreements:
            assert report.agreement_rate < 1.0

    def test_sampling(self, world):
        population, snapshot = world
        report = cross_validate_snapshot(
            population, snapshot, sample_size=50, p_lagged=0.0, seed=3
        )
        assert report.n_compared <= 50

    def test_deterministic(self, world):
        population, snapshot = world
        a = cross_validate_snapshot(population, snapshot, seed=9)
        b = cross_validate_snapshot(population, snapshot, seed=9)
        assert a.n_agree == b.n_agree
        assert a.lagged_domains == b.lagged_domains
