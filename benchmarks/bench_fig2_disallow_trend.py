"""Figure 2: % of sites fully disallowing >= 1 AI crawler over time.

Paper shape: near-zero in late 2022, a surge after the August 2023
GPTBot/ChatGPT-User announcement, reaching 12-14% for the Stable Top 5K
and 8-10% for the rest of the Stable Top 100K by the end of the window,
with the top tier consistently above the rest.
"""

from conftest import save_artifact

from repro.report.experiments import run_figure2


def test_figure2_full_disallow_trend(benchmark, longitudinal_bundle, artifact_dir):
    result = benchmark.pedantic(
        run_figure2, args=(longitudinal_bundle,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, result)
    print(result.text)

    metrics = result.metrics
    # Paper bands: top tier 12-14%, others 8-10% (we allow simulation
    # slack of ~2 points either side).
    assert 10.0 <= metrics["final_top5k_pct"] <= 17.0
    assert 6.5 <= metrics["final_other_pct"] <= 12.0
    assert metrics["final_top5k_pct"] > metrics["final_other_pct"]
    assert metrics["initial_other_pct"] < 4.0
    assert metrics["final_other_pct"] > 2 * metrics["initial_other_pct"]
