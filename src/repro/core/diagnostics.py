"""Linting of robots.txt files.

Section 8.1 of the paper reports that roughly 1% of the studied sites
have mistakes in their robots.txt, citing paths that do not start with
``/`` and non-existent directives.  This module detects those mistake
classes (and several adjacent ones) so the reproduction can sweep a
population and report the error rate
(``benchmarks/bench_sec81_mistakes.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Union

from .lexer import LineKind, canonical_directive, tokenize
from .parser import parse

__all__ = ["Severity", "Finding", "lint", "has_mistakes"]

#: Extension directives that are widespread enough not to be flagged as
#: author mistakes, even though RFC 9309 does not define them.
_TOLERATED_EXTENSIONS = frozenset(
    {"sitemap", "site-map", "crawl-delay", "crawldelay", "host", "clean-param", "noindex", "request-rate", "visit-time"}
)


class Severity(enum.Enum):
    """How serious a lint finding is."""

    #: The file deviates from the RFC in a way a compliant parser
    #: silently tolerates (e.g. a tolerated extension directive).
    NOTE = "note"
    #: An author mistake that changes or risks changing interpretation.
    WARNING = "warning"
    #: A construct that compliant parsers must discard entirely.
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One lint finding.

    Attributes:
        line_number: 1-based line the finding refers to (0 = whole file).
        severity: Finding severity.
        code: Stable machine-readable identifier.
        message: Human-readable explanation.
    """

    line_number: int
    severity: Severity
    code: str
    message: str


def lint(source: Union[str, bytes]) -> List[Finding]:
    """Lint robots.txt *source*, returning all findings in line order.

    Detected mistake classes:

    * ``path-missing-slash`` -- an allow/disallow value that is neither
      empty nor starts with ``/`` or a wildcard (the paper's canonical
      example of an author mistake).
    * ``unknown-directive`` -- a directive name the protocol does not
      define and that is not a tolerated extension.
    * ``missing-colon`` -- a line with no ``:`` separator.
    * ``rule-before-group`` -- allow/disallow before any user-agent line
      (discarded by compliant parsers).
    * ``empty-user-agent`` -- a ``User-agent:`` line with no value.
    * ``empty-file`` -- a file with no directives at all.
    * ``crawl-delay`` -- use of the deprecated non-standard extension.

    >>> [f.code for f in lint("User-agent: *\\nDisallow: secret/")]
    ['path-missing-slash']
    """
    findings: List[Finding] = []
    lines = tokenize(source)
    parsed = parse(source)

    any_directive = False
    for line in lines:
        if line.is_directive:
            any_directive = True
        if line.kind is LineKind.MALFORMED:
            findings.append(
                Finding(
                    line.number,
                    Severity.ERROR,
                    "missing-colon",
                    f"line has no ':' separator: {line.value!r}",
                )
            )
        elif line.kind in (LineKind.ALLOW, LineKind.DISALLOW):
            value = line.value
            if value and not value.startswith(("/", "*")):
                findings.append(
                    Finding(
                        line.number,
                        Severity.WARNING,
                        "path-missing-slash",
                        f"rule path does not start with '/': {value!r}",
                    )
                )
        elif line.kind is LineKind.USER_AGENT:
            if not line.value:
                findings.append(
                    Finding(
                        line.number,
                        Severity.WARNING,
                        "empty-user-agent",
                        "User-agent line has no value",
                    )
                )
        elif line.kind is LineKind.CRAWL_DELAY:
            findings.append(
                Finding(
                    line.number,
                    Severity.NOTE,
                    "crawl-delay",
                    "Crawl-delay is a non-standard extension ignored by "
                    "compliant parsers",
                )
            )
        elif line.kind is LineKind.UNKNOWN_DIRECTIVE:
            if canonical_directive(line.key) not in _TOLERATED_EXTENSIONS:
                findings.append(
                    Finding(
                        line.number,
                        Severity.WARNING,
                        "unknown-directive",
                        f"non-existent directive {line.key!r}",
                    )
                )

    for rule in parsed.orphan_rules:
        findings.append(
            Finding(
                rule.line_number,
                Severity.WARNING,
                "rule-before-group",
                "allow/disallow rule appears before any User-agent line "
                "and is ignored by compliant parsers",
            )
        )

    if not any_directive:
        findings.append(
            Finding(0, Severity.NOTE, "empty-file", "file contains no directives")
        )

    # Whole-file findings (line 0) sort after per-line findings.
    findings.sort(key=lambda f: (f.line_number == 0, f.line_number))
    return findings


def has_mistakes(source: Union[str, bytes]) -> bool:
    """Whether the file contains author mistakes (warning or error).

    This is the per-site predicate behind the paper's ~1% mistake rate;
    notes (tolerated extensions, empty files) do not count.
    """
    return any(
        f.severity in (Severity.WARNING, Severity.ERROR) for f in lint(source)
    )
