"""Tests for the crawl engine and behavior profiles."""

import pytest

from repro.crawlers.engine import Crawler
from repro.crawlers.profiles import CrawlerProfile, RobotsBehavior
from repro.net.server import Website, render_page
from repro.net.transport import Network


def make_world(robots=None):
    net = Network()
    site = Website("target.com")
    site.add_page("/", render_page("Home", links=["/a", "/b"]))
    site.add_page("/a", render_page("A", links=["/a/deep"]))
    site.add_page("/a/deep", render_page("Deep"))
    site.add_page("/b", render_page("B"))
    if robots is not None:
        site.set_robots_txt(robots)
    net.register(site)
    return net, site


class TestRobotsBehaviorEnum:
    def test_ever_fetches(self):
        assert RobotsBehavior.FETCH_AND_OBEY.ever_fetches
        assert RobotsBehavior.FETCH_AND_IGNORE.ever_fetches
        assert RobotsBehavior.BUGGY_FETCH.ever_fetches
        assert not RobotsBehavior.NO_FETCH.ever_fetches

    def test_obeys(self):
        assert RobotsBehavior.FETCH_AND_OBEY.obeys
        assert RobotsBehavior.INTERMITTENT_FETCH.obeys
        assert not RobotsBehavior.FETCH_AND_IGNORE.obeys
        assert not RobotsBehavior.NO_FETCH.obeys


class TestProfileDefaults:
    def test_source_ip_assigned_from_range(self):
        profile = CrawlerProfile.respectful("GPTBot")
        assert profile.source_ip.startswith("100.64.13.")

    def test_factories(self):
        assert CrawlerProfile.respectful("X").behavior is RobotsBehavior.FETCH_AND_OBEY
        assert CrawlerProfile.defiant("X").behavior is RobotsBehavior.FETCH_AND_IGNORE
        assert CrawlerProfile.oblivious("X").behavior is RobotsBehavior.NO_FETCH


class TestObedientCrawler:
    def test_fetches_robots_first(self):
        net, site = make_world("User-agent: *\nDisallow:")
        crawler = Crawler(CrawlerProfile.respectful("TestBot"), net)
        crawler.crawl("target.com")
        paths = [e.path for e in site.access_log]
        assert paths[0] == "/robots.txt"

    def test_respects_full_disallow(self):
        net, site = make_world("User-agent: TestBot\nDisallow: /")
        crawler = Crawler(CrawlerProfile.respectful("TestBot"), net)
        result = crawler.crawl("target.com")
        assert result.content_fetches == []
        assert "/" in result.skipped
        assert not site.access_log.fetched_content("TestBot")

    def test_respects_partial_disallow(self):
        net, site = make_world("User-agent: *\nDisallow: /a")
        crawler = Crawler(CrawlerProfile.respectful("TestBot"), net)
        result = crawler.crawl("target.com")
        assert "/" in result.content_fetches
        assert "/b" in result.content_fetches
        assert "/a" not in result.content_fetches
        assert "/a" in result.skipped

    def test_crawls_everything_without_robots(self):
        net, site = make_world(None)
        crawler = Crawler(CrawlerProfile.respectful("TestBot"), net)
        result = crawler.crawl("target.com")
        assert set(result.content_fetches) == {"/", "/a", "/b", "/a/deep"}

    def test_max_pages_budget(self):
        net, _ = make_world(None)
        crawler = Crawler(CrawlerProfile.respectful("TestBot"), net)
        result = crawler.crawl("target.com", max_pages=2)
        assert len(result.content_fetches) == 2

    def test_single_fetch_respects_robots(self):
        net, _ = make_world("User-agent: TestBot\nDisallow: /")
        crawler = Crawler(CrawlerProfile.respectful("TestBot"), net)
        result = crawler.fetch("target.com", "/a")
        assert result.skipped == ["/a"]
        assert result.content_fetches == []

    def test_wildcard_group_governs_unnamed_crawler(self):
        net, _ = make_world("User-agent: *\nDisallow: /")
        crawler = Crawler(CrawlerProfile.respectful("RandomBot"), net)
        assert crawler.crawl("target.com").content_fetches == []


class TestDefiantCrawler:
    def test_fetches_robots_but_ignores_it(self):
        net, site = make_world("User-agent: Bytespider\nDisallow: /")
        crawler = Crawler(
            CrawlerProfile.defiant("Bytespider", "Bytespider"), net
        )
        result = crawler.crawl("target.com")
        assert result.robots_fetched
        assert site.access_log.fetched_robots("Bytespider")
        assert site.access_log.fetched_content("Bytespider")
        assert len(result.content_fetches) == 4


class TestObliviousCrawler:
    def test_never_touches_robots(self):
        net, site = make_world("User-agent: *\nDisallow: /")
        crawler = Crawler(CrawlerProfile.oblivious("Ghost"), net)
        result = crawler.crawl("target.com")
        assert not result.robots_fetched
        assert not site.access_log.fetched_robots("Ghost")
        assert len(result.content_fetches) == 4


class TestBuggyCrawler:
    def test_fetches_wrong_path(self):
        net, site = make_world("User-agent: *\nDisallow: /")
        profile = CrawlerProfile(
            token="Buggy",
            user_agent="BuggyBot/0.1",
            behavior=RobotsBehavior.BUGGY_FETCH,
        )
        result = Crawler(profile, net).crawl("target.com")
        # The wrong path shows in server logs but not as a robots fetch.
        wrong = site.access_log.entries(path="/robots.txt/")
        assert len(wrong) == 1
        assert not site.access_log.fetched_robots("BuggyBot")
        # And the crawler proceeds as if unrestricted.
        assert len(result.content_fetches) == 4


class TestIntermittentCrawler:
    def _profile(self):
        return CrawlerProfile(
            token="Flaky",
            user_agent="FlakyBot/1.0",
            behavior=RobotsBehavior.INTERMITTENT_FETCH,
            intermittent_period=3,
        )

    def test_fetches_only_every_nth_crawl(self):
        net, site = make_world("User-agent: *\nDisallow:")
        crawler = Crawler(self._profile(), net)
        for _ in range(6):
            crawler.fetch("target.com", "/")
        robots_hits = site.access_log.entries(
            user_agent_contains="FlakyBot", path="/robots.txt"
        )
        assert len(robots_hits) == 2  # crawls 3 and 6

    def test_obeys_when_it_has_a_policy(self):
        net, _ = make_world("User-agent: *\nDisallow: /")
        crawler = Crawler(self._profile(), net)
        first = crawler.fetch("target.com", "/a")   # no robots fetched yet
        assert first.content_fetches == ["/a"]
        second = crawler.fetch("target.com", "/a")
        third = crawler.fetch("target.com", "/a")   # fetches robots, obeys
        assert third.skipped == ["/a"] or second.skipped == ["/a"]


class TestRobotsCaching:
    def test_stale_cache_keeps_old_policy(self):
        net, site = make_world("User-agent: *\nDisallow:")
        profile = CrawlerProfile.respectful("Cachy", robots_cache_ttl=100.0)
        crawler = Crawler(profile, net)
        net.now = 0.0
        assert crawler.fetch("target.com", "/a").content_fetches == ["/a"]
        # Site tightens its policy; crawler cache is still warm.
        site.set_robots_txt("User-agent: *\nDisallow: /")
        net.now = 50.0
        result = crawler.fetch("target.com", "/a")
        assert result.robots_from_cache
        assert result.content_fetches == ["/a"]
        # After TTL expiry the new policy bites.
        net.now = 200.0
        result = crawler.fetch("target.com", "/a")
        assert result.skipped == ["/a"]

    def test_invalidate_cache(self):
        net, site = make_world("User-agent: *\nDisallow:")
        profile = CrawlerProfile.respectful("Cachy", robots_cache_ttl=1e9)
        crawler = Crawler(profile, net)
        crawler.fetch("target.com", "/a")
        site.set_robots_txt("User-agent: *\nDisallow: /")
        crawler.invalidate_robots_cache("target.com")
        assert crawler.fetch("target.com", "/a").skipped == ["/a"]


class TestErrorHandling:
    def test_dns_failure_recorded(self):
        net = Network()
        crawler = Crawler(CrawlerProfile.respectful("X"), net)
        result = crawler.fetch("missing.com", "/")
        assert result.errors
        assert result.content_fetches == []

    def test_robots_transport_error_treated_as_no_policy(self):
        net, _ = make_world("User-agent: *\nDisallow: /")
        net.refuse_connections("target.com")
        crawler = Crawler(CrawlerProfile.respectful("X"), net)
        result = crawler.crawl("target.com")
        assert result.errors


class TestRobotsStatusSemantics:
    """RFC 9309 section 2.3.1: 4xx vs 5xx on /robots.txt."""

    def _site_with_status(self, status):
        from repro.net.http import Response
        from repro.net.server import Website, render_page

        class StatusRobotsSite(Website):
            def _respond(self, request):
                if request.path_only == "/robots.txt":
                    return Response(status=status, body="err", url=request.url)
                return super()._respond(request)

        net = Network()
        site = StatusRobotsSite("target.com")
        site.add_page("/", render_page("Home"))
        net.register(site)
        return net

    def test_404_means_crawl_freely(self):
        net = self._site_with_status(404)
        result = Crawler(CrawlerProfile.respectful("Bot"), net).fetch("target.com", "/")
        assert result.content_fetches == ["/"]

    def test_500_means_complete_disallow(self):
        net = self._site_with_status(500)
        result = Crawler(CrawlerProfile.respectful("Bot"), net).fetch("target.com", "/")
        assert result.skipped == ["/"]
        assert result.content_fetches == []

    def test_503_means_complete_disallow(self):
        net = self._site_with_status(503)
        result = Crawler(CrawlerProfile.respectful("Bot"), net).fetch("target.com", "/")
        assert result.skipped == ["/"]

    def test_403_default_keeps_obedient_bot_out(self):
        net = self._site_with_status(403)
        result = Crawler(CrawlerProfile.respectful("Bot"), net).fetch("target.com", "/")
        assert result.skipped == ["/"]

    def test_403_lenient_profile_crawls(self):
        net = self._site_with_status(403)
        profile = CrawlerProfile.respectful("Bot")
        profile.forbidden_robots_means_disallow = False
        result = Crawler(profile, net).fetch("target.com", "/")
        assert result.content_fetches == ["/"]

    def test_5xx_does_not_constrain_defiant_bot(self):
        net = self._site_with_status(500)
        result = Crawler(CrawlerProfile.defiant("Bad"), net).fetch("target.com", "/")
        assert result.content_fetches == ["/"]


class TestCrawlDelayPoliteness:
    ROBOTS = "User-agent: *\nCrawl-delay: 10\nDisallow: /private/\n"

    def _crawler(self, honors, net):
        profile = CrawlerProfile(
            token="SlowBot",
            user_agent="SlowBot/1.0",
            honors_crawl_delay=honors,
        )
        return Crawler(profile, net)

    def test_honoring_crawler_consumes_time(self):
        net, _ = make_world(self.ROBOTS)
        result = self._crawler(True, net).crawl("target.com")
        # Four pages: three inter-fetch gaps of 10s.
        assert len(result.content_fetches) == 4
        assert result.time_spent == 30.0

    def test_budget_limits_fetches(self):
        net, _ = make_world(self.ROBOTS)
        result = self._crawler(True, net).crawl("target.com", time_budget=25.0)
        # First fetch free, then 10s each: fetches at t=0,10,20.
        assert len(result.content_fetches) == 3
        assert result.time_spent == 20.0

    def test_rfc_compliant_crawler_ignores_crawl_delay(self):
        net, _ = make_world(self.ROBOTS)
        result = self._crawler(False, net).crawl("target.com", time_budget=25.0)
        assert len(result.content_fetches) == 4
        assert result.time_spent == 0.0

    def test_default_interval_applies_without_crawl_delay(self):
        net, _ = make_world("User-agent: *\nDisallow:")
        profile = CrawlerProfile(
            token="Paced", user_agent="Paced/1.0", default_fetch_interval=5.0
        )
        result = Crawler(profile, net).crawl("target.com", time_budget=11.0)
        assert len(result.content_fetches) == 3  # t=0, 5, 10

    def test_crawl_delay_exceeding_budget_fetches_one_page(self):
        net, _ = make_world("User-agent: *\nCrawl-delay: 100\nDisallow: /x/")
        result = self._crawler(True, net).crawl("target.com", time_budget=50.0)
        assert len(result.content_fetches) == 1


class TestConditionalRevalidation:
    def _crawler(self, net, ttl=100.0):
        profile = CrawlerProfile.respectful(
            "Revalidator", robots_cache_ttl=ttl
        )
        profile.revalidates_robots = True
        return Crawler(profile, net)

    def test_304_on_unchanged_robots(self):
        net, site = make_world("User-agent: *\nDisallow: /a\n")
        crawler = self._crawler(net)
        net.now = 0.0
        crawler.fetch("target.com", "/b")
        net.now = 200.0  # past TTL -> revalidate
        result = crawler.fetch("target.com", "/b")
        robots_hits = [s for p, s in result.fetched if p == "/robots.txt"]
        assert robots_hits == [304]
        assert result.robots_from_cache
        # Policy still enforced from cache.
        assert crawler.fetch("target.com", "/a").skipped == ["/a"]

    def test_changed_robots_returns_fresh_200(self):
        net, site = make_world("User-agent: *\nDisallow: /a\n")
        crawler = self._crawler(net)
        net.now = 0.0
        crawler.fetch("target.com", "/b")
        site.set_robots_txt("User-agent: *\nDisallow: /\n")
        net.now = 200.0
        result = crawler.fetch("target.com", "/b")
        robots_hits = [s for p, s in result.fetched if p == "/robots.txt"]
        assert robots_hits == [200]
        assert result.skipped == ["/b"]  # new policy applied immediately

    def test_server_emits_etag_and_304(self):
        from repro.net.http import Request

        net, site = make_world("User-agent: *\nDisallow:\n")
        first = net.request(Request(host="target.com", path="/robots.txt"))
        etag = first.headers["ETag"]
        second = net.request(
            Request(host="target.com", path="/robots.txt",
                    headers={"If-None-Match": etag})
        )
        assert second.status == 304
        assert second.content_length == 0

    def test_non_revalidating_crawler_refetches_fully(self):
        net, site = make_world("User-agent: *\nDisallow: /a\n")
        profile = CrawlerProfile.respectful("Plain", robots_cache_ttl=100.0)
        crawler = Crawler(profile, net)
        net.now = 0.0
        crawler.fetch("target.com", "/b")
        net.now = 200.0
        result = crawler.fetch("target.com", "/b")
        robots_hits = [s for p, s in result.fetched if p == "/robots.txt"]
        assert robots_hits == [200]


class TestFetchTelemetryOnErrors:
    def _flaky_world(self):
        net, site = make_world("User-agent: *\nDisallow:")
        return net, site

    def test_errored_fetch_not_counted_as_fetched(self):
        from repro.obs.metrics import shared_registry
        from repro.obs.series import shared_series

        net, site = self._flaky_world()
        crawler = Crawler(CrawlerProfile.defiant("ErrBot"), net)
        registry = shared_registry()
        series = shared_series()
        fetched_before = registry.counter_value("crawler.fetches", agent="other")
        net.month = 3
        net.reset_connections("target.com")
        result = crawler.fetch("target.com", "/a")
        assert result.errors and not result.fetched
        assert (
            registry.counter_value("crawler.fetches", agent="other")
            == fetched_before
        )
        assert (
            series.series("crawl.requests", agent="other", outcome="error")
            .value_at(3) >= 1
        )

    def test_successful_fetch_still_counted(self):
        from repro.obs.metrics import shared_registry

        net, site = self._flaky_world()
        crawler = Crawler(CrawlerProfile.defiant("OkBot"), net)
        registry = shared_registry()
        before = registry.counter_value("crawler.fetches", agent="other")
        crawler.fetch("target.com", "/a")
        assert registry.counter_value("crawler.fetches", agent="other") == before + 1

    def test_crawl_errors_booked_as_errors_not_fetches(self):
        from repro.obs.metrics import shared_registry

        net, site = self._flaky_world()
        crawler = Crawler(CrawlerProfile.oblivious("CrawlErrBot"), net)
        registry = shared_registry()
        before = registry.counter_value("crawler.fetches", agent="other")
        net.reset_connections("target.com")
        result = crawler.crawl("target.com", max_pages=3)
        assert result.errors and not result.fetched
        assert registry.counter_value("crawler.fetches", agent="other") == before


class TestContentFetchesExactPath:
    def test_robots_lookalike_paths_are_content(self):
        net, site = make_world()
        site.add_page("/robots.txt.bak", "old robots backup")
        crawler = Crawler(CrawlerProfile.oblivious("LookalikeBot"), net)
        result = crawler.fetch("target.com", "/robots.txt.bak")
        assert result.content_fetches == ["/robots.txt.bak"]

    def test_exact_robots_path_excluded(self):
        net, site = make_world("User-agent: *\nDisallow:")
        crawler = Crawler(CrawlerProfile.respectful("ExactBot"), net)
        result = crawler.fetch("target.com", "/a")
        assert "/robots.txt" not in result.content_fetches
        assert result.content_fetches == ["/a"]
