"""GPT apps and third-party AI assistant crawlers.

Section 5.1's active measurement enumerates the top 5k GPT apps, asks
each to fetch a controlled URL, observes which backend crawler made the
request, and merges crawlers that share an IP address or registered
domain -- yielding 23 distinct third-party assistant crawlers.  Of
those (Section 5.2.2): one fetched and respected robots.txt, one had a
buggy robots.txt fetch, one fetched it only some of the time, and the
remaining twenty never fetched it.

This module builds that world: third-party services with domains, IP
pools, and behavior profiles; a synthetic app store where browsing-
capable apps are backed by those services; and the trigger mechanism
the measurement uses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..net.transport import Network
from .engine import Crawler, CrawlResult
from .profiles import CrawlerProfile, RobotsBehavior

__all__ = [
    "ThirdPartyService",
    "GptApp",
    "GptAppStore",
    "build_third_party_services",
    "build_app_store",
]

_SERVICE_NAMES = [
    "mixerbox", "webpilot", "linkreader", "browserop", "scholarly",
    "aaronchat", "pagepeek", "fetchwise", "siteglance", "quicklook",
    "webweaver", "readerly", "summarly", "surfacer", "deeplink",
    "pagesense", "crawlmate", "linklens", "webscholar", "contentscout",
    "infodiver", "sitewhisper", "webharvest",
]


@dataclass
class ThirdPartyService:
    """One third-party browsing backend used by GPT apps.

    Attributes:
        name: Service name (also its registered domain's label).
        domains: Registered domains the service operates under; apps
            backed by the same service contact one of these.
        ip_pool: Source addresses its crawler uses.
        crawler: The executable crawler for this service.
    """

    name: str
    domains: List[str]
    ip_pool: List[str]
    crawler: Crawler

    @property
    def registered_domain(self) -> str:
        """The service's primary registered domain."""
        return self.domains[0]


@dataclass
class GptApp:
    """One app in the GPT store.

    Attributes:
        name: App display name.
        can_browse: Whether the app can retrieve Web content.
        service: The backing third-party service (None for non-browsing
            apps and apps using the built-in ChatGPT-User crawler).
        uses_builtin: Whether browsing goes through the built-in
            ChatGPT-User crawler instead of a third party.
    """

    name: str
    can_browse: bool
    service: Optional[ThirdPartyService] = None
    uses_builtin: bool = False

    def trigger_fetch(self, host: str, path: str = "/") -> Optional[CrawlResult]:
        """Ask the app to fetch a URL; returns None when it cannot browse."""
        if not self.can_browse or self.service is None:
            return None
        return self.service.crawler.fetch(host, path)


def build_third_party_services(
    network: Network, seed: int = 7, count: int = 23
) -> List[ThirdPartyService]:
    """Build *count* third-party assistant crawler services.

    The behavior mix matches Section 5.2.2 exactly: index 0 respects
    robots.txt, index 1 has the buggy fetcher, index 2 fetches
    intermittently, and the rest never fetch robots.txt.
    """
    rng = random.Random(seed)
    services: List[ThirdPartyService] = []
    for index in range(count):
        name = _SERVICE_NAMES[index % len(_SERVICE_NAMES)]
        if index >= len(_SERVICE_NAMES):
            name = f"{name}{index}"
        if index == 0:
            behavior = RobotsBehavior.FETCH_AND_OBEY
        elif index == 1:
            behavior = RobotsBehavior.BUGGY_FETCH
        elif index == 2:
            behavior = RobotsBehavior.INTERMITTENT_FETCH
        else:
            behavior = RobotsBehavior.NO_FETCH
        ip_pool = [f"100.96.{index}.{host}" for host in (10, 11, 12)]
        # Third-party assistant crawlers rarely send distinctive UAs;
        # model a mix of branded and library user agents.
        if rng.random() < 0.5:
            user_agent = f"Mozilla/5.0 (compatible; {name}-bot/1.0; +https://{name}.com/bot)"
        else:
            user_agent = rng.choice(
                ["python-requests/2.31.0", "axios/1.6.2", "Go-http-client/2.0"]
            )
        profile = CrawlerProfile(
            token=f"{name}-bot",
            user_agent=user_agent,
            behavior=behavior,
            source_ip=ip_pool[0],
            intermittent_period=3,
        )
        services.append(
            ThirdPartyService(
                name=name,
                domains=[f"{name}.com"],
                ip_pool=ip_pool,
                crawler=Crawler(profile, network),
            )
        )
    return services


@dataclass
class GptAppStore:
    """The synthetic GPT app store.

    Attributes:
        apps: All apps, in popularity order.
        services: The distinct third-party services backing them.
    """

    apps: List[GptApp] = field(default_factory=list)
    services: List[ThirdPartyService] = field(default_factory=list)

    def browsing_apps(self) -> List[GptApp]:
        """Apps that can retrieve Web content via a third party."""
        return [a for a in self.apps if a.can_browse and a.service is not None]


def build_app_store(
    network: Network,
    seed: int = 7,
    n_apps: int = 5000,
    browse_fraction: float = 0.3,
    builtin_fraction: float = 0.4,
    services: Optional[Sequence[ThirdPartyService]] = None,
) -> GptAppStore:
    """Build a store of *n_apps* apps over the third-party services.

    Args:
        browse_fraction: Fraction of apps that can retrieve Web content.
        builtin_fraction: Of browsing apps, fraction that use the
            built-in ChatGPT-User crawler rather than a third party.

    Multiple apps share each backing service, which is what makes the
    measurement's merge-by-domain-or-IP step (Section 5.1) necessary
    and meaningful.
    """
    rng = random.Random(seed)
    service_list = list(services) if services is not None else build_third_party_services(network, seed=seed)
    apps: List[GptApp] = []
    for index in range(n_apps):
        name = f"gpt-app-{index:04d}"
        if rng.random() >= browse_fraction:
            apps.append(GptApp(name=name, can_browse=False))
            continue
        if rng.random() < builtin_fraction:
            apps.append(GptApp(name=name, can_browse=True, uses_builtin=True))
            continue
        service = rng.choice(service_list)
        apps.append(GptApp(name=name, can_browse=True, service=service))
    return GptAppStore(apps=apps, services=service_list)
