"""Active blocking: rules, interstitials, fingerprinting, reverse proxies."""

from .behavioral import (
    BehavioralConfig,
    BehavioralPolicy,
    BehavioralScorer,
    BehavioralVerdict,
    BehavioralWindow,
    score_log_store,
    write_verdicts,
)
from .challenges import (
    PageKind,
    block_page,
    captcha_page,
    challenge_page,
    classify_page,
    labyrinth_page,
    throttle_page,
)
from .cloudflare import CloudflareProxy, CloudflareSettings
from .fingerprint import (
    AUTOMATION_HEADER,
    automation_signals,
    is_automated,
    is_library_client,
)
from .reverse_proxy import ReverseProxy
from .rules import Action, BlockRule, RuleSet

__all__ = [
    "BehavioralConfig",
    "BehavioralPolicy",
    "BehavioralScorer",
    "BehavioralVerdict",
    "BehavioralWindow",
    "score_log_store",
    "write_verdicts",
    "PageKind",
    "block_page",
    "captcha_page",
    "challenge_page",
    "classify_page",
    "labyrinth_page",
    "throttle_page",
    "CloudflareProxy",
    "CloudflareSettings",
    "AUTOMATION_HEADER",
    "automation_signals",
    "is_automated",
    "is_library_client",
    "ReverseProxy",
    "Action",
    "BlockRule",
    "RuleSet",
]
