"""The AI crawler fleet: Table 1's crawlers as executable bots.

Each real crawler from Table 1 is instantiated with the behavior the
paper *observed* (Section 5.2), so the compliance measurement pipeline
can re-derive Table 1's "Respect in Practice" column from server logs
instead of reading it off a constant:

* Seven crawlers visit unprompted and obey robots.txt: Amazonbot,
  Applebot, CCBot, ClaudeBot, GPTBot, Meta-ExternalAgent,
  OAI-SearchBot.
* Bytespider visits unprompted, fetches robots.txt, and ignores it.
* ChatGPT-User is user-triggered and obeys, but exhibited one
  anomalous unprompted visit without a robots.txt fetch
  (Section 5.2.1); the quirk is modeled explicitly.
* The remaining Table 1 crawlers never visited the testbed.

Meta's assistant crawling uses the ``FacebookExternalHit`` /
``Meta-ExternalAgent`` user agents -- never the documented
``Meta-ExternalFetcher`` (Section 5.2.2); :func:`build_builtin_assistants`
encodes that discrepancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..agents.darkvisitors import build_registry
from ..net.transport import Network
from ..obs.metrics import shared_registry
from .engine import Crawler
from .profiles import CrawlerProfile, RobotsBehavior

__all__ = [
    "FleetMember",
    "PASSIVE_VISITORS",
    "build_fleet",
    "build_builtin_assistants",
    "FACEBOOK_EXTERNAL_HIT_UA",
]

#: The UA Meta actually uses for user-triggered fetches, alternating
#: with Meta-ExternalAgent.
FACEBOOK_EXTERNAL_HIT_UA = (
    "facebookexternalhit/1.1 (+http://www.facebook.com/externalhit_uatext.php)"
)

#: Crawlers that visited the paper's testbed unprompted during the
#: six-month passive window (Section 5.2.1), in Table 1 order.
PASSIVE_VISITORS = [
    "Amazonbot",
    "Applebot",
    "Bytespider",
    "CCBot",
    "ChatGPT-User",
    "ClaudeBot",
    "GPTBot",
    "Meta-ExternalAgent",
    "OAI-SearchBot",
]

#: Behavior overrides; everything else defaults to FETCH_AND_OBEY.
_BEHAVIOR: Dict[str, RobotsBehavior] = {
    "Bytespider": RobotsBehavior.FETCH_AND_IGNORE,
}


@dataclass
class FleetMember:
    """One crawler of the fleet plus its measurement-relevant quirks.

    Attributes:
        crawler: The executable crawler.
        visits_unprompted: Whether it appears in passive measurements.
        passive_quirk: ``"single-visit-no-robots"`` for ChatGPT-User's
            anomalous passive appearance, else None.
    """

    crawler: Crawler
    visits_unprompted: bool
    passive_quirk: Optional[str] = None

    @property
    def token(self) -> str:
        """The crawler's product token."""
        return self.crawler.profile.token


def build_fleet(network: Network) -> Dict[str, FleetMember]:
    """Instantiate the Table 1 crawler fleet on *network*.

    Returns a mapping from product token to :class:`FleetMember` for
    every *real* crawler (control tokens like Google-Extended have no
    crawler to instantiate).
    """
    registry = build_registry()
    fleet: Dict[str, FleetMember] = {}
    for agent in registry.real_crawlers():
        behavior = _BEHAVIOR.get(agent.token, RobotsBehavior.FETCH_AND_OBEY)
        profile = CrawlerProfile(
            token=agent.token,
            user_agent=agent.full_user_agent,
            behavior=behavior,
        )
        quirk = "single-visit-no-robots" if agent.token == "ChatGPT-User" else None
        fleet[agent.token] = FleetMember(
            crawler=Crawler(profile, network),
            visits_unprompted=agent.token in PASSIVE_VISITORS,
            passive_quirk=quirk,
        )
    metrics = shared_registry()
    metrics.inc("fleet.builds")
    metrics.set_gauge("fleet.size", len(fleet))
    for agent in registry.real_crawlers():
        metrics.inc("fleet.members", category=agent.category.value)
    return fleet


def build_builtin_assistants(network: Network) -> Dict[str, Crawler]:
    """The built-in AI assistant crawlers used in the active measurement.

    Returns crawlers keyed by assistant name:

    * ``"ChatGPT"`` -- OpenAI's ChatGPT-User, which obeys robots.txt.
    * ``"Meta"`` -- Meta's assistant, which obeys robots.txt but
      identifies as FacebookExternalHit rather than the documented
      Meta-ExternalFetcher.
    """
    chatgpt = Crawler(
        CrawlerProfile(
            token="ChatGPT-User",
            user_agent=(
                "Mozilla/5.0 AppleWebKit/537.36 (compatible; ChatGPT-User/1.0; "
                "+https://openai.com/bot)"
            ),
            behavior=RobotsBehavior.FETCH_AND_OBEY,
        ),
        network,
    )
    meta = Crawler(
        CrawlerProfile(
            token="Meta-ExternalAgent",
            user_agent=FACEBOOK_EXTERNAL_HIT_UA,
            behavior=RobotsBehavior.FETCH_AND_OBEY,
            source_ip="100.64.15.7",
        ),
        network,
    )
    return {"ChatGPT": chatgpt, "Meta": meta}
