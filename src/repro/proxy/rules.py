"""Blocking rules: the policy language of active blockers.

A :class:`BlockRule` matches requests on user-agent patterns, source
networks, and path prefixes, and prescribes an :class:`Action`.  A
:class:`RuleSet` evaluates rules in order, first match wins -- the same
discipline as Apache ``.htaccess`` deny rules or a WAF rule list
(Section 2.2, "Active blocking").
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from ..agents.useragent import matches_any
from ..net.http import Request
from ..obs.metrics import metrics_enabled, shared_registry

__all__ = ["Action", "BlockRule", "RuleSet"]

#: ``(action value, rule label)`` -> counter handle; decide() runs per
#: proxied request, so the registry probe happens once per rule kind.
_RULE_MATCH_COUNTERS: dict = {}


def _count_rule_match(action: "Action", label: str) -> None:
    key = (action.value, label)
    counter = _RULE_MATCH_COUNTERS.get(key)
    if counter is None:
        counter = shared_registry().counter(
            "proxy.rule_matches", action=action.value, rule=label or "unlabeled"
        )
        _RULE_MATCH_COUNTERS[key] = counter
    counter.inc()


class Action(enum.Enum):
    """What a matching rule does to the request."""

    #: Return 403 with a block page.
    BLOCK = "block"
    #: Return a browser-verification interstitial.
    CHALLENGE = "challenge"
    #: Return a captcha wall.
    CAPTCHA = "captcha"
    #: Drop the connection (observable as a transport error).
    RESET = "reset"
    #: Serve decoy content (Cloudflare Labyrinth style).
    FAKE_CONTENT = "fake-content"
    #: Explicitly allow, short-circuiting later rules.
    ALLOW = "allow"


@dataclass
class BlockRule:
    """One matching rule.

    All specified conditions must hold (AND); unspecified conditions
    match everything.

    Attributes:
        action: What to do on match.
        ua_patterns: Substring patterns against the User-Agent header
            (Cloudflare-style; a trailing ``/`` requires the version
            separator).  Empty means "any UA".
        networks: CIDR blocks the client IP must fall into.
        path_prefix: Required path prefix.
        label: Human-readable rule name for logs and tests.
    """

    action: Action
    ua_patterns: Sequence[str] = ()
    networks: Sequence[str] = ()
    path_prefix: str = ""
    label: str = ""

    def matches(self, request: Request) -> bool:
        """Whether this rule applies to *request*."""
        if self.ua_patterns and not matches_any(request.user_agent, list(self.ua_patterns)):
            return False
        if self.networks and not self._ip_matches(request.client_ip):
            return False
        if self.path_prefix and not request.path_only.startswith(self.path_prefix):
            return False
        return True

    def _ip_matches(self, address: str) -> bool:
        try:
            ip = ipaddress.ip_address(address)
        except ValueError:
            return False
        return any(ip in ipaddress.ip_network(block) for block in self.networks)


@dataclass
class RuleSet:
    """An ordered rule list with first-match-wins evaluation.

    >>> rules = RuleSet([BlockRule(Action.BLOCK, ua_patterns=["Bytespider"])])
    >>> rules.decide(Request(host="e.com", headers={"User-Agent": "Bytespider"}))
    <Action.BLOCK: 'block'>
    """

    rules: List[BlockRule] = field(default_factory=list)

    def add(self, rule: BlockRule) -> "RuleSet":
        """Append a rule; returns self for chaining."""
        self.rules.append(rule)
        return self

    def decide(self, request: Request) -> Optional[Action]:
        """The action of the first matching rule, or None.

        An :attr:`Action.ALLOW` match returns None (request passes) and
        stops evaluation, which is how allowlist-before-blocklist
        configurations are expressed.
        """
        for rule in self.rules:
            if rule.matches(request):
                if metrics_enabled():
                    _count_rule_match(rule.action, rule.label)
                if rule.action is Action.ALLOW:
                    return None
                return rule.action
        return None

    def matching_rule(self, request: Request) -> Optional[BlockRule]:
        """The first matching rule itself (including ALLOW), or None."""
        for rule in self.rules:
            if rule.matches(request):
                return rule
        return None

    @classmethod
    def blocking_user_agents(
        cls, patterns: Iterable[str], action: Action = Action.BLOCK, label: str = ""
    ) -> "RuleSet":
        """A one-rule set blocking the given UA patterns."""
        return cls([BlockRule(action, ua_patterns=list(patterns), label=label)])
