"""Section 3 end to end: the longitudinal robots.txt study, scaled down.

Run with::

    python examples/longitudinal_study.py [list_size]

Builds a simulated web (default 1,500-site monthly lists), crawls all
fifteen Common-Crawl-style snapshots, and prints the Figure 2 trend,
the Figure 3 per-agent table, and the Figure 4 allow/removal series.
"""

import sys

from repro.report import (
    build_longitudinal_bundle,
    run_figure2,
    run_figure3,
    run_figure4,
    run_table3,
)
from repro.web import PopulationConfig


def main() -> None:
    list_size = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    config = PopulationConfig(
        universe_size=int(list_size * 1.5),
        list_size=list_size,
        top5k_cut=max(list_size // 10, 50),
        audit_size=max(list_size // 4, 100),
    )
    print(f"building the simulated web ({list_size}-site monthly lists) "
          "and crawling 15 snapshots...")
    bundle = build_longitudinal_bundle(config)
    print(f"stable sites: {len(bundle.series.stable_domains)}; "
          f"analysis set (robots.txt in every snapshot): "
          f"{len(bundle.series.analysis_domains)}\n")

    for runner in (run_table3, run_figure2, run_figure3, run_figure4):
        result = runner(bundle)
        print(result.text)
        print()


if __name__ == "__main__":
    main()
