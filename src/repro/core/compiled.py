"""Compiled robots.txt policies and the content-addressed compile cache.

The measurement pipelines evaluate the *same* robots.txt bodies against
the *same* user agents thousands of times: every figure re-visits every
site in every snapshot, and most sites never change between snapshots.
Two layers remove that redundancy:

* :class:`CompiledRobots` -- a drop-in :class:`RobotsPolicy` whose
  per-agent rule resolution is memoized and whose rule patterns are
  percent-normalized **once** at compile time (see
  :class:`~repro.core.matcher.CompiledPattern`), so each query only
  normalizes the request path.
* :class:`CompiledPolicyCache` -- a content-addressed cache keyed by
  ``sha256(robots_bytes)``: each unique robots.txt body in a process is
  parsed and compiled exactly once, no matter how many domains,
  snapshots, crawlers, or figures reference it.

A process-wide shared cache (:func:`shared_policy_cache`) serves both
the analysis pipelines (:mod:`repro.measure`) and the crawl testbed
(:mod:`repro.crawlers.engine`), so the same compiled object answers for
a given body everywhere.  Compiled policies are immutable after parse
and safe to share across threads; the cache itself is lock-protected so
parallel snapshot collection can use it.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple, Union

from .matcher import CompiledPattern, Rule, Verdict, compile_pattern, normalize_path
from .parser import ParsedRobots
from .policy import AgentRules, RobotsPolicy

__all__ = [
    "CompiledRuleSet",
    "CompiledRobots",
    "CompiledPolicyCache",
    "compile_rules",
    "evaluate_compiled",
    "shared_policy_cache",
]


#: A compiled rule: the precomputed pattern plus the original rule (the
#: original is retained so verdicts can report the winning source line).
CompiledRule = Tuple[CompiledPattern, Rule]


def compile_rules(rules: Iterable[Rule]) -> Tuple[CompiledRule, ...]:
    """Compile a merged rule set, dropping empty (match-nothing) rules."""
    out = []
    for rule in rules:
        compiled = compile_pattern(rule.path)
        if compiled is None:
            continue
        out.append((compiled, rule))
    return tuple(out)


def evaluate_compiled(
    compiled_rules: Iterable[CompiledRule], path: str, *, normalized: bool = False
) -> Verdict:
    """Longest-match evaluation over pre-compiled rules.

    Behaviorally identical to :func:`repro.core.matcher.evaluate` (same
    precedence, same allow-wins tie break, same winning rule), but no
    per-query pattern normalization happens.  Pass ``normalized=True``
    when *path* already went through :func:`normalize_path`.
    """
    if not normalized:
        path = normalize_path(path)
    best_priority = -1
    best_rule: Optional[Rule] = None
    for pattern, rule in compiled_rules:
        if not pattern.matches(path):
            continue
        if best_rule is None or pattern.priority > best_priority or (
            pattern.priority == best_priority and rule.allow and not best_rule.allow
        ):
            best_priority = pattern.priority
            best_rule = rule
    if best_rule is None:
        return Verdict(allowed=True, rule=None)
    return Verdict(allowed=best_rule.allow, rule=best_rule)


@dataclass(frozen=True)
class CompiledRuleSet:
    """The compiled form of one agent's merged rules.

    Attributes:
        rules: Compiled rules in merge order.
        explicit: Mirrors :attr:`~repro.core.policy.AgentRules.explicit`.
        crawl_delay: Mirrors
            :attr:`~repro.core.policy.AgentRules.crawl_delay`.
    """

    rules: Tuple[CompiledRule, ...]
    explicit: bool
    crawl_delay: Optional[float] = None


class CompiledRobots(RobotsPolicy):
    """A :class:`RobotsPolicy` with memoized, pre-compiled agent rules.

    Group resolution (:meth:`rules_for`) runs once per distinct user
    agent; path verdicts evaluate against compiled patterns.  All
    answers are identical to the base class -- this is purely a
    performance representation.

    >>> policy = CompiledRobots("User-agent: GPTBot\\nDisallow: /")
    >>> policy.is_allowed("GPTBot", "/page")
    False
    """

    #: SHA-256 content address of the source body, stamped by
    #: :class:`CompiledPolicyCache` (None for directly constructed
    #: policies, which never pass through a digest computation).
    content_digest: Optional[str] = None

    def __init__(self, source: Union[str, bytes, ParsedRobots]):
        super().__init__(source)
        self._agent_rules: Dict[str, AgentRules] = {}
        self._compiled_rules: Dict[str, CompiledRuleSet] = {}

    def rules_for(self, user_agent: str) -> AgentRules:
        """Memoized group resolution (see the base class for semantics)."""
        cached = self._agent_rules.get(user_agent)
        if cached is None:
            cached = super().rules_for(user_agent)
            self._agent_rules[user_agent] = cached
        return cached

    def compiled_rules_for(self, user_agent: str) -> CompiledRuleSet:
        """The compiled rule set applying to *user_agent* (memoized)."""
        cached = self._compiled_rules.get(user_agent)
        if cached is None:
            agent_rules = self.rules_for(user_agent)
            cached = CompiledRuleSet(
                rules=compile_rules(agent_rules.rules),
                explicit=agent_rules.explicit,
                crawl_delay=agent_rules.crawl_delay,
            )
            self._compiled_rules[user_agent] = cached
        return cached

    def verdict(self, user_agent: str, path: str) -> Verdict:
        """Full evaluation result, via the compiled representation."""
        return evaluate_compiled(self.compiled_rules_for(user_agent).rules, path)


def policy_digest(source: Union[str, bytes]) -> str:
    """Content address of a robots.txt body: hex SHA-256 of its bytes."""
    data = source if isinstance(source, bytes) else source.encode("utf-8", "surrogateescape")
    return hashlib.sha256(data).hexdigest()


class CompiledPolicyCache:
    """Content-addressed cache of :class:`CompiledRobots` objects.

    ``cache.policy(text)`` parses and compiles each distinct body once
    per cache; subsequent calls with byte-identical content return the
    same object.  Thread-safe.

    ``max_policies`` bounds the number of distinct compiled bodies held
    (None = unbounded, the default): when full, the oldest-inserted
    policy is evicted, counted in :attr:`evictions`.  Hit/miss/eviction
    tallies are kept as plain ints on the hot path -- they are
    scheduling-dependent for shared caches, so :meth:`publish` exports
    them to the metrics registry as **gauges** (process-local
    observations), never as deterministic counters.
    """

    def __init__(self, max_policies: Optional[int] = None) -> None:
        self._lock = threading.Lock()
        self._by_digest: Dict[str, CompiledRobots] = {}
        self._by_source: Dict[Union[str, bytes], CompiledRobots] = {}
        self.max_policies = max_policies
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._by_digest)

    def _evict_oldest(self) -> None:
        """Drop the oldest-inserted policy (lock held by caller)."""
        digest, evicted = next(iter(self._by_digest.items()))
        del self._by_digest[digest]
        for source in [s for s, p in self._by_source.items() if p is evicted]:
            del self._by_source[source]
        self.evictions += 1

    def policy(self, source: Union[str, bytes]) -> CompiledRobots:
        """The compiled policy for *source*, compiling on first sight."""
        with self._lock:
            # Exact-text fast path: CPython caches str hashes and the
            # crawl pipelines intern bodies, so for the hot repeated
            # queries this is a plain dict probe with no SHA-256 pass.
            cached = self._by_source.get(source)
            if cached is not None:
                self.hits += 1
                return cached
        key = policy_digest(source)
        with self._lock:
            cached = self._by_digest.get(key)
            if cached is not None:
                self.hits += 1
                self._by_source[source] = cached
                return cached
            self.misses += 1
        compiled = CompiledRobots(source)
        # Stamp the content address: persistent caches key on it, and
        # stamping here means they never re-hash the body text.
        compiled.content_digest = key
        with self._lock:
            if (
                self.max_policies is not None
                and key not in self._by_digest
                and len(self._by_digest) >= self.max_policies
            ):
                self._evict_oldest()
            # setdefault: a racing thread may have compiled the same
            # body; both results are equivalent, keep the first.
            compiled = self._by_digest.setdefault(key, compiled)
            self._by_source[source] = compiled
            return compiled

    def publish(self, registry=None, prefix: str = "policy_cache") -> None:
        """Export occupancy and hit/miss/eviction tallies as gauges."""
        from ..obs.metrics import shared_registry

        registry = registry if registry is not None else shared_registry()
        registry.set_gauge(f"{prefix}.hits", self.hits)
        registry.set_gauge(f"{prefix}.misses", self.misses)
        registry.set_gauge(f"{prefix}.evictions", self.evictions)
        registry.set_gauge(f"{prefix}.entries", len(self._by_digest))

    def clear(self) -> None:
        """Drop every cached policy and reset the hit/miss counters."""
        with self._lock:
            self._by_digest.clear()
            self._by_source.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0


_SHARED_CACHE = CompiledPolicyCache()


def shared_policy_cache() -> CompiledPolicyCache:
    """The process-wide compile cache shared by analysis and crawlers."""
    return _SHARED_CACHE
