"""Serve simulated websites over real TCP sockets.

The paper's Section 5 testbed is two real websites on a cloud host with
request logging.  For integration-level fidelity, this module exposes
any in-memory :class:`~repro.net.transport.Handler` (a website or a
reverse proxy stack) on a localhost socket using the standard library's
threading HTTP server, plus a matching blocking client built on
``http.client``.  The compliance experiment's integration tests run the
crawler fleet over genuine TCP through this bridge; the large sweeps use
the in-memory transport with identical semantics.
"""

from __future__ import annotations

import http.client
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from .http import Headers, Request, Response
from .transport import Handler

__all__ = ["RealHttpServer", "fetch_real"]


class RealHttpServer:
    """Expose a handler on a localhost TCP port.

    Use as a context manager::

        with RealHttpServer(site) as server:
            response = fetch_real(f"http://{server.address}/robots.txt")

    The ``Host`` header (minus port) is used as the virtual-host routing
    key, falling back to the handler's own host, so a single socket can
    front a multi-host handler such as a Network adapter.
    """

    def __init__(self, handler: Handler, host: str = "127.0.0.1", port: int = 0):
        self._handler = handler
        self._default_host = getattr(handler, "host", "")
        outer = self

        class _RequestBridge(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def _serve(self, method: str) -> None:
                host_header = self.headers.get("Host", "")
                vhost = host_header.split(":", 1)[0] or outer._default_host
                # Standard proxy convention: an X-Forwarded-For header
                # carries the original client address across the bridge
                # (the RemoteNetwork client uses it so IP-sensitive
                # handlers behave identically over TCP).
                client_ip = (
                    self.headers.get("X-Forwarded-For")
                    or self.client_address[0]
                ).split(",")[0].strip()
                passthrough = {}
                for name in ("User-Agent", "X-Automation"):
                    value = self.headers.get(name)
                    if value is not None:
                        passthrough[name] = value
                request = Request(
                    host=vhost,
                    path=self.path,
                    method=method,
                    headers=Headers(passthrough),
                    client_ip=client_ip,
                    scheme="http",
                )
                try:
                    response = outer._handler.handle(request)
                except Exception:  # noqa: BLE001 - surface as 500 like a real server
                    self.send_error(500)
                    return
                assert isinstance(response.body, bytes)
                self.send_response(response.status)
                sent_type = False
                for name, value in response.headers:
                    self.send_header(name, value)
                    if name.lower() == "content-type":
                        sent_type = True
                if not sent_type:
                    self.send_header("Content-Type", "text/html; charset=utf-8")
                self.send_header("Content-Length", str(len(response.body)))
                self.end_headers()
                if method != "HEAD":
                    self.wfile.write(response.body)

            def do_GET(self) -> None:  # noqa: N802 - stdlib naming
                self._serve("GET")

            def do_HEAD(self) -> None:  # noqa: N802 - stdlib naming
                self._serve("HEAD")

            def log_message(self, *args) -> None:  # silence stderr
                pass

        self._server = ThreadingHTTPServer((host, port), _RequestBridge)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        """``host:port`` the server listens on."""
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    @property
    def port(self) -> int:
        """The bound TCP port."""
        return self._server.server_address[1]

    def start(self) -> "RealHttpServer":
        """Start serving on a background thread."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "RealHttpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def fetch_real(
    url: str,
    user_agent: str = "repro-client/1.0",
    host_header: Optional[str] = None,
    timeout: float = 10.0,
    extra_headers: Optional[dict] = None,
) -> Response:
    """Fetch *url* over real TCP with ``http.client``.

    Args:
        host_header: Override the ``Host`` header, enabling virtual-host
            selection while connecting to a localhost socket.
        extra_headers: Additional request headers to send.
    """
    scheme_rest = url.split("://", 1)
    rest = scheme_rest[1] if len(scheme_rest) == 2 else scheme_rest[0]
    netloc, _, path = rest.partition("/")
    path = "/" + path
    conn = http.client.HTTPConnection(netloc, timeout=timeout)
    try:
        headers = {"User-Agent": user_agent, "Connection": "close"}
        if host_header:
            headers["Host"] = host_header
        if extra_headers:
            headers.update(extra_headers)
        conn.request("GET", path, headers=headers)
        raw = conn.getresponse()
        body = raw.read()
        return Response(
            status=raw.status,
            body=body,
            headers=Headers({k: v for k, v in raw.getheaders()}),
            url=url,
        )
    finally:
        conn.close()


class NetworkHandler:
    """Adapter exposing a whole :class:`Network` as one Handler.

    Lets :class:`RealHttpServer` front an entire simulated internet on
    a single socket; virtual hosts are selected by the ``Host`` header.
    """

    def __init__(self, network):
        self._network = network
        self.host = ""
        self.now = 0.0

    def handle(self, request: Request) -> Response:
        self._network.now = self.now
        return self._network.request(request)


class RemoteNetwork:
    """A Network-compatible transport that sends requests over TCP.

    Point it at a :class:`RealHttpServer` fronting a
    :class:`NetworkHandler` and any crawler or measurement pipeline
    built against the in-memory :class:`~repro.net.transport.Network`
    runs unchanged over genuine sockets -- the transport-equivalence
    property the integration tests verify.
    """

    def __init__(self, address: str):
        self.address = address
        self.now: float = 0.0
        # Network-interface parity: crawlers stamp their series on the
        # transport's month clock; a remote transport is unclocked.
        self.month: int = -1

    def request(self, request: Request) -> Response:
        extra = {"X-Forwarded-For": request.client_ip}
        automation = request.headers.get("X-Automation")
        if automation is not None:
            extra["X-Automation"] = automation
        response = fetch_real(
            f"http://{self.address}{request.path}",
            user_agent=request.user_agent,
            host_header=request.host,
            extra_headers=extra,
        )
        response.url = request.url
        return response
