"""Streaming Figure 2-4 / Table 3-4 aggregations over shard archives.

The in-memory aggregations in :mod:`repro.measure.longitudinal` hold
every :class:`~repro.crawlers.commoncrawl.SiteRecord` of every snapshot
at once -- fine at the paper's scale, quadratic trouble in a
million-site world.  This module recomputes the same statistics from a
:class:`~repro.web.archive.ArchiveSet` **shard by shard**: one shard's
columns and distinct robots bodies are resident at a time, global state
is a handful of per-spec counters, and peak memory is O(largest shard)
regardless of how many sites the archive holds.

Every function is bit-identical to its in-memory twin.  The two
ordering-sensitive outputs (Figure 4's removal domains, Table 4's
first-allow rows) are reconstructed by sorting shard-local events on
``(spec index, global rank)`` -- exactly the (snapshot-outer,
rank-inner) order the in-memory sweeps produce, because the analysis
set iterates in global rank order.

Classification work stays content-addressed: each shard gets a fresh
:class:`~repro.measure.cache.PolicyCache` (dropped with the shard), and
an optional persistent body-fact store -- the archive's own
:class:`~repro.web.archive.ArchiveBodyStore` or an
:class:`~repro.measure.incremental.IncrementalStore` -- carries
verdicts across shards, runs, and backends.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..agents.darkvisitors import AI_USER_AGENT_TOKENS
from ..core.classify import RestrictionLevel
from ..core.compiled import CompiledPolicyCache
from ..obs.metrics import metrics_enabled
from ..obs.series import shared_series
from ..obs.trace import span
from ..web.archive import ArchiveSet, ShardReader
from .cache import PolicyCache
from .longitudinal import FIGURE3_AGENTS, AllowRemovalTrend

__all__ = [
    "ShardAnalysis",
    "streaming_full_disallow_trend",
    "streaming_per_agent_trend",
    "streaming_allow_and_removal_trend",
    "streaming_first_allow_table",
    "streaming_coverage_table",
    "streaming_analysis_domains",
]


class ShardAnalysis:
    """One shard's records resolved the way the analysis layer sees them.

    Applies the "www."-variant record fallback (Appendix B.1) to every
    ``(spec, domain)`` cell -- variants co-shard by construction
    (:func:`repro.web.sharding.shard_of` normalizes the host), so
    resolution never leaves the shard -- then splits the shard's rows
    into the analysis set (a usable robots.txt in every spec, the
    stable-with-robots rule) and the rest.

    Attributes:
        reader: The underlying :class:`ShardReader`.
        analysis_rows: Shard-local row indices in the analysis set.
        eff_bodies: Per spec, the effective body reference per analysis
            row (resolution applied; always ``>= 0`` for analysis rows).
        ok_counts: Per spec, resolved rows with a fetched robots.txt.
        present_counts: Per spec, resolved rows that are ok *or*
            affirmatively missing (404) -- Table 3's "sites" column.
    """

    def __init__(self, reader: ShardReader):
        self.reader = reader
        n = reader.n_domains
        specs = reader.specs
        variant = self._variant_rows(reader)
        per_spec_eff: List[List[int]] = []
        self.ok_counts: List[int] = []
        self.present_counts: List[int] = []
        analysis_mask = [True] * n
        for spec_index in range(len(specs)):
            statuses = reader.statuses(spec_index)
            body_refs = reader.body_refs(spec_index)

            def usable(row: int) -> bool:
                status = statuses[row]
                return (status == 200 and body_refs[row] >= 0) or status == 404

            effective: List[int] = []
            ok_count = 0
            present = 0
            for row in range(n):
                resolved = row
                if not usable(row):
                    alt = variant[row]
                    if alt >= 0 and usable(alt):
                        resolved = alt
                effective.append(
                    body_refs[resolved] if statuses[resolved] == 200 else -1
                )
                if statuses[resolved] == 200 and body_refs[resolved] >= 0:
                    ok_count += 1
                    present += 1
                elif statuses[resolved] == 404:
                    present += 1
                    analysis_mask[row] = False
                else:
                    analysis_mask[row] = False
            per_spec_eff.append(effective)
            self.ok_counts.append(ok_count)
            self.present_counts.append(present)
        self.analysis_rows: List[int] = [
            row for row in range(n) if analysis_mask[row]
        ]
        self.eff_bodies: List[List[int]] = [
            [effective[row] for row in self.analysis_rows]
            for effective in per_spec_eff
        ]

    @staticmethod
    def _variant_rows(reader: ShardReader) -> List[int]:
        """Per row, the shard-local row of its "www." variant (-1: none)."""
        index = reader.domain_index()
        variant: List[int] = []
        for domain in reader.domains:
            if domain.startswith("www."):
                alt = index.get(domain[4:], -1)
            else:
                alt = index.get("www." + domain, -1)
            variant.append(alt)
        return variant

    def body_counts(self, spec_index: int) -> Dict[int, int]:
        """``{body ref: analysis domains serving it}`` for one spec."""
        counts: Dict[int, int] = {}
        for ref in self.eff_bodies[spec_index]:
            counts[ref] = counts.get(ref, 0) + 1
        return counts


def _shard_cache(store) -> PolicyCache:
    # A shard-private compiled cache, NOT the process-shared one: the
    # shared cache is content-addressed over every body it ever sees,
    # which would grow resident compiled policies (and their source
    # text) with the archive, not the shard.  Dropping this cache with
    # the shard is what keeps streaming memory O(shard).
    cache = PolicyCache(compiled=CompiledPolicyCache())
    if store is not None:
        cache.attach_store(store)
    return cache


def streaming_analysis_domains(archive: ArchiveSet) -> List[str]:
    """The archive's analysis set in global rank order (the streaming
    twin of :func:`repro.measure.longitudinal.stable_with_robots`)."""
    found: List[Tuple[int, str]] = []
    for reader in archive.readers:
        view = ShardAnalysis(reader)
        found.extend(
            (reader.ranks[row], reader.domains[row])
            for row in view.analysis_rows
        )
    found.sort()
    return [domain for _, domain in found]


def streaming_full_disallow_trend(
    archive: ArchiveSet,
    agents: Sequence[str] = tuple(AI_USER_AGENT_TOKENS),
    require_explicit: bool = True,
    store=None,
) -> List[Tuple[str, float, float]]:
    """Figure 2, streamed: % fully disallowing >= 1 AI UA per snapshot,
    split by Top-5K tier.  Rows ``(snapshot_id, pct_top, pct_other)``."""
    specs = archive.specs
    agents = tuple(agents)
    hits = [[0, 0] for _ in specs]
    sizes = [0, 0]
    with span(
        "measure.full_disallow_trend",
        n_agents=len(agents),
        shards=len(archive.readers),
        streaming=True,
    ):
        for reader in archive.readers:
            view = ShardAnalysis(reader)
            cache = _shard_cache(store)
            tier_of = [
                0 if reader.tiers[row] else 1 for row in view.analysis_rows
            ]
            for row_tier in tier_of:
                sizes[row_tier] += 1
            verdict: Dict[int, bool] = {}
            for spec_index in range(len(specs)):
                shard_hits = [0, 0]
                for ref, row_tier in zip(view.eff_bodies[spec_index], tier_of):
                    flag = verdict.get(ref)
                    if flag is None:
                        flag = cache.fully_disallows_any(
                            reader.body_text(ref),
                            agents,
                            require_explicit=require_explicit,
                        )
                        verdict[ref] = flag
                    if flag:
                        shard_hits[row_tier] += 1
                hits[spec_index][0] += shard_hits[0]
                hits[spec_index][1] += shard_hits[1]
                if metrics_enabled():
                    month = specs[spec_index].month_index
                    registry = shared_series()
                    registry.add(
                        "measure.sites_full_disallow",
                        month,
                        shard_hits[0],
                        tier="top5k",
                    )
                    registry.add(
                        "measure.sites_full_disallow",
                        month,
                        shard_hits[1],
                        tier="other",
                    )
            reader.drop_body_cache()
    n_top, n_other = sizes
    return [
        (
            spec.snapshot_id,
            100.0 * hits[spec_index][0] / n_top if n_top else 0.0,
            100.0 * hits[spec_index][1] / n_other if n_other else 0.0,
        )
        for spec_index, spec in enumerate(specs)
    ]


def streaming_per_agent_trend(
    archive: ArchiveSet,
    agents: Sequence[str] = tuple(FIGURE3_AGENTS),
    store=None,
) -> Dict[str, List[Tuple[str, float]]]:
    """Figure 3, streamed: per-agent % partially-or-fully disallowing."""
    specs = archive.specs
    agents = list(agents)
    hits = {agent: [0] * len(specs) for agent in agents}
    n_analysis = 0
    for reader in archive.readers:
        view = ShardAnalysis(reader)
        cache = _shard_cache(store)
        n_analysis += len(view.analysis_rows)
        verdict: Dict[Tuple[int, str], bool] = {}
        for spec_index in range(len(specs)):
            counts = view.body_counts(spec_index)
            for agent in agents:
                agent_hits = 0
                for ref, count in counts.items():
                    key = (ref, agent)
                    flag = verdict.get(key)
                    if flag is None:
                        flag = cache.classification(
                            reader.body_text(ref), agent
                        ).level.disallows
                        verdict[key] = flag
                    if flag:
                        agent_hits += count
                hits[agent][spec_index] += agent_hits
                if metrics_enabled():
                    shared_series().add(
                        "measure.sites_disallowing",
                        specs[spec_index].month_index,
                        agent_hits,
                        agent=agent,
                    )
        reader.drop_body_cache()
    return {
        agent: [
            (
                spec.snapshot_id,
                100.0 * hits[agent][spec_index] / n_analysis
                if n_analysis
                else 0.0,
            )
            for spec_index, spec in enumerate(specs)
        ]
        for agent in agents
    }


def streaming_allow_and_removal_trend(
    archive: ArchiveSet,
    agents: Sequence[str] = tuple(AI_USER_AGENT_TOKENS),
    removal_agent: str = "GPTBot",
    store=None,
) -> AllowRemovalTrend:
    """Figure 4, streamed: explicit allows over time, removals per
    period, and removal domains in first-observed order."""
    specs = archive.specs
    agents = tuple(agents)
    allow_counts = [0] * len(specs)
    removal_counts = [0] * len(specs)
    #: ``(first spec index with a removal, global rank, domain)``.
    removal_events: List[Tuple[int, int, str]] = []
    for reader in archive.readers:
        view = ShardAnalysis(reader)
        cache = _shard_cache(store)
        allow_verdict: Dict[int, bool] = {}
        full_verdict: Dict[int, bool] = {}

        def is_full(ref: int) -> bool:
            flag = full_verdict.get(ref)
            if flag is None:
                flag = (
                    cache.classification(
                        reader.body_text(ref), removal_agent
                    ).level
                    is RestrictionLevel.FULL
                )
                full_verdict[ref] = flag
            return flag

        previous_restricted: Optional[List[bool]] = None
        first_removal: Dict[int, int] = {}
        for spec_index in range(len(specs)):
            for ref, count in view.body_counts(spec_index).items():
                flag = allow_verdict.get(ref)
                if flag is None:
                    flag = cache.allows_any(reader.body_text(ref), agents)
                    allow_verdict[ref] = flag
                if flag:
                    allow_counts[spec_index] += count
            restricted_now = [
                is_full(ref) for ref in view.eff_bodies[spec_index]
            ]
            if previous_restricted is not None:
                for position, row in enumerate(view.analysis_rows):
                    if previous_restricted[position] and not restricted_now[position]:
                        removal_counts[spec_index] += 1
                        first_removal.setdefault(row, spec_index)
            previous_restricted = restricted_now
        removal_events.extend(
            (spec_index, reader.ranks[row], reader.domains[row])
            for row, spec_index in first_removal.items()
        )
        reader.drop_body_cache()
    trend = AllowRemovalTrend()
    for spec_index, spec in enumerate(specs):
        trend.explicit_allow_counts.append(
            (spec.snapshot_id, allow_counts[spec_index])
        )
        trend.removals_per_period.append(
            (spec.snapshot_id, removal_counts[spec_index])
        )
    # The in-memory sweep records removal domains snapshot-outer /
    # rank-inner; sorting the shard-local events on (spec, rank)
    # reproduces that insertion order exactly.
    removal_events.sort()
    for spec_index, _, domain in removal_events:
        trend.removal_domains.setdefault(
            domain, specs[spec_index].snapshot_id
        )
    return trend


def streaming_first_allow_table(
    archive: ArchiveSet, agent: str = "GPTBot", store=None
) -> List[Tuple[str, str]]:
    """Table 4, streamed: domains explicitly allowing *agent* with the
    first snapshot where the allow was observed."""
    specs = archive.specs
    events: List[Tuple[int, int, str]] = []
    for reader in archive.readers:
        view = ShardAnalysis(reader)
        cache = _shard_cache(store)
        verdict: Dict[int, bool] = {}
        for position, row in enumerate(view.analysis_rows):
            for spec_index in range(len(specs)):
                ref = view.eff_bodies[spec_index][position]
                flag = verdict.get(ref)
                if flag is None:
                    flag = cache.explicitly_allows(reader.body_text(ref), agent)
                    verdict[ref] = flag
                if flag:
                    events.append(
                        (spec_index, reader.ranks[row], reader.domains[row])
                    )
                    break
        reader.drop_body_cache()
    events.sort()
    return [
        (domain, specs[spec_index].snapshot_id)
        for spec_index, _, domain in events
    ]


def streaming_coverage_table(
    archive: ArchiveSet,
) -> List[Tuple[str, str, int, int]]:
    """Table 3, streamed: per snapshot, sites present and with robots."""
    specs = archive.specs
    n_sites = [0] * len(specs)
    n_robots = [0] * len(specs)
    for reader in archive.readers:
        view = ShardAnalysis(reader)
        for spec_index in range(len(specs)):
            n_sites[spec_index] += view.present_counts[spec_index]
            n_robots[spec_index] += view.ok_counts[spec_index]
    return [
        (spec.snapshot_id, spec.label, n_sites[spec_index], n_robots[spec_index])
        for spec_index, spec in enumerate(specs)
    ]
