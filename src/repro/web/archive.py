"""Columnar, shard-partitioned snapshot archive for million-site worlds.

One archive holds everything the longitudinal analysis needs about a
crawled snapshot series -- per-site status, robots body, and error for
every snapshot spec -- in a form that is compact on disk, cheap to
write from parallel shard workers, and streamable at O(shard) memory:

* **One directory per shard** (``shard-0000/`` ...), self-contained:
  a shard can be written, validated, and aggregated without touching
  any other shard.  Shard membership is the deterministic sha256
  assignment of :func:`repro.web.sharding.shard_of`.
* **Columnar record storage.**  Per spec, three parallel columns over
  the shard's domains: ``u16`` HTTP status, ``i32`` body reference,
  ``i32`` error reference (10 bytes per record), little-endian
  struct-packed in ``records.bin`` and mmap-ed on read.
* **Content-addressed bodies, stored once.**  Distinct robots.txt
  bodies are interned into ``bodies.bin`` with an offset/length index
  and a SHA-256 per body -- the same content address the policy cache
  and the incremental store key on, which is what lets the archive
  double as the per-body facts backend (:class:`ArchiveBodyStore`).
* **Atomic manifest-last commit.**  Data files are written first; the
  manifest (schema fingerprint, config digest, spec table, per-file
  byte sizes) lands last via tmp + ``os.replace``.  A crashed writer
  leaves no manifest and the shard simply does not open; a truncated
  data file fails the manifest's size check.  Either way the failure
  is a one-line :class:`ArchiveError`, never a traceback into struct
  internals.

Readers reconstruct bit-identical :class:`~repro.crawlers.commoncrawl.
Snapshot` objects (``ArchiveSet.snapshots()``), but the scale plane's
streaming aggregations (:mod:`repro.measure.streaming`) iterate the
columns shard by shard instead, so memory stays flat as the site count
grows.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
from array import array
from pathlib import Path
from threading import Lock
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.classify import Classification, RestrictionLevel
from ..crawlers.commoncrawl import ErrorBudget, SiteRecord, Snapshot, SnapshotSpec
from ..obs.metrics import metrics_enabled, shared_registry

__all__ = [
    "ArchiveError",
    "ArchiveBodyStore",
    "ShardWriter",
    "ShardReader",
    "ArchiveSet",
    "ARCHIVE_SCHEMA_FINGERPRINT",
]

#: Bump any entry when the on-disk shape changes; the fingerprint shift
#: invalidates every existing archive (readers refuse to open it) and
#: every facts file (the store self-invalidates) automatically.
_SCHEMA = {
    "archive": 1,
    "record": ["status:u16le", "body_ref:i32le", "error_ref:i32le"],
    "body_index": ["offset:u64le", "length:u32le"],
    "site": ["domain", "rank:u32le", "tier:u8"],
    # Facts rows mirror repro.measure.incremental's bodies.json layout
    # exactly, so verdicts move between the two backends unchanged.
    "classification": ["level", "explicit", "explicit_allow"],
    "flags": ["full_any", "explicit_allow", "allow_any"],
}

ARCHIVE_SCHEMA_FINGERPRINT = hashlib.sha256(
    json.dumps(_SCHEMA, sort_keys=True, separators=(",", ":")).encode("utf-8")
).hexdigest()

_MANIFEST = "manifest.json"
_DOMAINS = "domains.txt"
_RANKS = "ranks.bin"
_TIERS = "tiers.bin"
_BODIES = "bodies.bin"
_BODY_IDX = "bodies.idx"
_BODY_SHA = "bodies.sha"
_RECORDS = "records.bin"

#: Data files whose byte sizes the manifest pins (truncation check).
_DATA_FILES = (_DOMAINS, _RANKS, _TIERS, _BODIES, _BODY_IDX, _BODY_SHA, _RECORDS)

_BODY_IDX_ENTRY = struct.Struct("<QI")
#: u16 status + i32 body ref + i32 error ref.
_RECORD_BYTES = 10

_FLAG_KINDS = ("full_any", "explicit_allow", "allow_any")


class ArchiveError(Exception):
    """A one-line, operator-facing archive failure (corrupt, truncated,
    missing, or schema-stale data); the message names the path."""


def shard_dir_name(shard_id: int) -> str:
    """Directory name for shard *shard_id* (``shard-0007``)."""
    return f"shard-{shard_id:04d}"


def _tier_byte(tier: str) -> int:
    return 1 if tier == "top5k" else 0


def _budget_payload(budget: Optional[ErrorBudget]) -> Optional[Dict[str, object]]:
    if budget is None:
        return None
    return {
        "n_sites": budget.n_sites,
        "n_errored_first_pass": budget.n_errored_first_pass,
        "n_healed": budget.n_healed,
        "n_errored_final": budget.n_errored_final,
        "retry_passes": budget.retry_passes,
        "errors_by_kind": dict(budget.errors_by_kind),
    }


def _budget_from_payload(payload: Optional[Mapping]) -> Optional[ErrorBudget]:
    if payload is None:
        return None
    return ErrorBudget(
        n_sites=int(payload["n_sites"]),
        n_errored_first_pass=int(payload["n_errored_first_pass"]),
        n_healed=int(payload["n_healed"]),
        n_errored_final=int(payload["n_errored_final"]),
        retry_passes=int(payload["retry_passes"]),
        errors_by_kind=dict(payload["errors_by_kind"]),
    )


def merge_error_budgets(budgets: Sequence[Optional[ErrorBudget]]) -> Optional[ErrorBudget]:
    """One snapshot-level budget from per-shard crawl budgets.

    Counts sum across shards; ``retry_passes`` takes the max (a
    whole-population crawl keeps passing while *any* site is still
    errored, which is exactly the worst shard's pass count).
    """
    present = [b for b in budgets if b is not None]
    if not present:
        return None
    by_kind: Dict[str, int] = {}
    for budget in present:
        for kind, count in budget.errors_by_kind.items():
            by_kind[kind] = by_kind.get(kind, 0) + count
    return ErrorBudget(
        n_sites=sum(b.n_sites for b in present),
        n_errored_first_pass=sum(b.n_errored_first_pass for b in present),
        n_healed=sum(b.n_healed for b in present),
        n_errored_final=sum(b.n_errored_final for b in present),
        retry_passes=max(b.retry_passes for b in present),
        errors_by_kind=by_kind,
    )


# -- writing -------------------------------------------------------------------


class ShardWriter:
    """Accumulates one shard's sites and per-spec records, then commits.

    Usage: :meth:`set_sites` once, :meth:`add_snapshot` once per spec
    in time order, :meth:`commit` once.  The commit is atomic at the
    manifest: a shard directory without a (complete, size-consistent)
    manifest never opens.
    """

    def __init__(
        self,
        root: Union[str, Path],
        shard_id: int,
        n_shards: int,
        config_digest: str = "",
    ):
        self.root = Path(root)
        self.shard_id = shard_id
        self.n_shards = n_shards
        self.config_digest = config_digest
        self._domains: List[str] = []
        self._ranks: List[int] = []
        self._tiers: List[int] = []
        self._index: Dict[str, int] = {}
        self._specs: List[SnapshotSpec] = []
        self._budgets: List[Optional[ErrorBudget]] = []
        self._body_ids: Dict[str, int] = {}
        self._body_blobs: List[bytes] = []
        self._body_digests: List[str] = []
        self._error_ids: Dict[str, int] = {}
        self._errors: List[str] = []
        self._columns: List[Tuple[array, array, array]] = []

    def set_sites(
        self, domains: Sequence[str], ranks: Sequence[int], tiers: Sequence[str]
    ) -> None:
        """Declare the shard's site rows (global rank order expected)."""
        self._domains = list(domains)
        self._ranks = [int(r) for r in ranks]
        self._tiers = [_tier_byte(t) for t in tiers]
        self._index = {domain: i for i, domain in enumerate(self._domains)}

    def _body_ref(self, text: Optional[str]) -> int:
        if text is None:
            return -1
        ref = self._body_ids.get(text)
        if ref is None:
            ref = len(self._body_blobs)
            self._body_ids[text] = ref
            blob = text.encode("utf-8")
            self._body_blobs.append(blob)
            self._body_digests.append(hashlib.sha256(blob).hexdigest())
        return ref

    def _error_ref(self, text: Optional[str]) -> int:
        if text is None:
            return -1
        ref = self._error_ids.get(text)
        if ref is None:
            ref = len(self._errors)
            self._error_ids[text] = ref
            self._errors.append(text)
        return ref

    def add_snapshot(
        self,
        spec: SnapshotSpec,
        records: Mapping[str, SiteRecord],
        error_budget: Optional[ErrorBudget] = None,
    ) -> None:
        """Append one spec's records (a full row per declared domain)."""
        statuses = array("H")
        body_refs = array("i")
        error_refs = array("i")
        for domain in self._domains:
            record = records[domain]
            statuses.append(record.status)
            body_refs.append(self._body_ref(record.robots_txt))
            error_refs.append(self._error_ref(record.error))
        self._specs.append(spec)
        self._budgets.append(error_budget)
        self._columns.append((statuses, body_refs, error_refs))

    def commit(self) -> Path:
        """Write every file, manifest last; returns the shard directory."""
        directory = self.root / shard_dir_name(self.shard_id)
        directory.mkdir(parents=True, exist_ok=True)
        # A leftover manifest from a previous commit must not make a
        # half-overwritten shard openable: drop it before touching data.
        manifest_path = directory / _MANIFEST
        try:
            manifest_path.unlink()
        except FileNotFoundError:
            pass

        blobs: Dict[str, bytes] = {}
        blobs[_DOMAINS] = ("\n".join(self._domains) + "\n" if self._domains else "").encode("utf-8")
        blobs[_RANKS] = array_to_le_bytes(array("I", self._ranks))
        blobs[_TIERS] = bytes(self._tiers)
        blobs[_BODIES] = b"".join(self._body_blobs)
        index = bytearray()
        offset = 0
        for blob in self._body_blobs:
            index += _BODY_IDX_ENTRY.pack(offset, len(blob))
            offset += len(blob)
        blobs[_BODY_IDX] = bytes(index)
        blobs[_BODY_SHA] = ("\n".join(self._body_digests) + "\n" if self._body_digests else "").encode("ascii")
        records = bytearray()
        for statuses, body_refs, error_refs in self._columns:
            records += array_to_le_bytes(statuses)
            records += array_to_le_bytes(body_refs)
            records += array_to_le_bytes(error_refs)
        blobs[_RECORDS] = bytes(records)

        for name, blob in blobs.items():
            (directory / name).write_bytes(blob)

        manifest = {
            "schema_fingerprint": ARCHIVE_SCHEMA_FINGERPRINT,
            "config_digest": self.config_digest,
            "shard_id": self.shard_id,
            "n_shards": self.n_shards,
            "n_domains": len(self._domains),
            "n_bodies": len(self._body_blobs),
            "specs": [
                [spec.snapshot_id, spec.label, spec.month_index]
                for spec in self._specs
            ],
            "errors": self._errors,
            "error_budgets": [_budget_payload(b) for b in self._budgets],
            "sizes": {name: len(blobs[name]) for name in _DATA_FILES},
        }
        tmp = manifest_path.with_name(_MANIFEST + ".tmp")
        manifest_blob = (
            json.dumps(manifest, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        tmp.write_bytes(manifest_blob)
        os.replace(tmp, manifest_path)

        if metrics_enabled():
            total = sum(len(blob) for blob in blobs.values()) + len(manifest_blob)
            shared_registry().counter("archive.bytes_written").inc(total)
        return directory


def array_to_le_bytes(values: array) -> bytes:
    """The array's raw bytes, little-endian regardless of platform."""
    import sys

    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        values = array(values.typecode, values)
        values.byteswap()
    return values.tobytes()


def le_bytes_to_array(typecode: str, buffer: bytes) -> array:
    """An array decoded from little-endian raw bytes."""
    import sys

    values = array(typecode)
    values.frombytes(buffer)
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        values.byteswap()
    return values


# -- reading -------------------------------------------------------------------


class ShardReader:
    """mmap-backed read access to one committed shard directory.

    Column accessors return :mod:`array` views decoded straight from
    the mapped file; body text decodes on demand and is memoized per
    reader (bounded by the shard's distinct bodies -- dropping the
    reader drops the memo, which is the streaming plane's memory
    model).
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        manifest_path = self.directory / _MANIFEST
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ArchiveError(
                f"not a shard archive (no manifest): {self.directory}"
            ) from None
        except (OSError, ValueError) as exc:
            raise ArchiveError(f"corrupt shard manifest: {manifest_path}: {exc}") from None
        fingerprint = manifest.get("schema_fingerprint")
        if fingerprint != ARCHIVE_SCHEMA_FINGERPRINT:
            raise ArchiveError(
                f"stale archive schema (rebuild the archive): {self.directory}"
            )
        self.shard_id = int(manifest["shard_id"])
        self.n_shards = int(manifest["n_shards"])
        self.config_digest = manifest.get("config_digest", "")
        self.n_domains = int(manifest["n_domains"])
        self.n_bodies = int(manifest["n_bodies"])
        self.specs: List[SnapshotSpec] = [
            SnapshotSpec(snapshot_id=row[0], label=row[1], month_index=int(row[2]))
            for row in manifest["specs"]
        ]
        self.errors: List[str] = list(manifest.get("errors", []))
        self._budgets = [
            _budget_from_payload(payload)
            for payload in manifest.get("error_budgets", [])
        ]
        sizes = manifest.get("sizes", {})
        self.data_bytes = 0
        for name in _DATA_FILES:
            path = self.directory / name
            try:
                actual = path.stat().st_size
            except OSError:
                raise ArchiveError(f"missing archive column: {path}") from None
            expected = sizes.get(name)
            if expected is not None and actual != expected:
                raise ArchiveError(
                    f"truncated archive column ({actual} bytes, manifest says "
                    f"{expected}): {path}"
                )
            self.data_bytes += actual
        expected_records = len(self.specs) * self.n_domains * _RECORD_BYTES
        if sizes.get(_RECORDS) != expected_records:
            raise ArchiveError(
                f"inconsistent record geometry ({sizes.get(_RECORDS)} bytes for "
                f"{len(self.specs)} specs x {self.n_domains} domains): "
                f"{self.directory / _RECORDS}"
            )

        raw_domains = (self.directory / _DOMAINS).read_text(encoding="utf-8")
        self.domains: List[str] = raw_domains.splitlines()
        if len(self.domains) != self.n_domains:
            raise ArchiveError(
                f"domain column holds {len(self.domains)} rows, manifest says "
                f"{self.n_domains}: {self.directory / _DOMAINS}"
            )
        self.ranks = le_bytes_to_array("I", (self.directory / _RANKS).read_bytes())
        self.tiers = (self.directory / _TIERS).read_bytes()
        idx_blob = (self.directory / _BODY_IDX).read_bytes()
        self._body_offsets: List[Tuple[int, int]] = [
            _BODY_IDX_ENTRY.unpack_from(idx_blob, i * _BODY_IDX_ENTRY.size)
            for i in range(self.n_bodies)
        ]
        sha_text = (self.directory / _BODY_SHA).read_text(encoding="ascii")
        self.body_digests: List[str] = sha_text.splitlines()

        self._records_file = open(self.directory / _RECORDS, "rb")
        self._bodies_file = open(self.directory / _BODIES, "rb")
        self._records_map = self._mmap(self._records_file)
        self._bodies_map = self._mmap(self._bodies_file)
        self._body_texts: Dict[int, str] = {}
        self._domain_index: Optional[Dict[str, int]] = None

    @staticmethod
    def _mmap(handle) -> Optional[mmap.mmap]:
        try:
            return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:
            return None  # zero-length file; accessors slice b"" instead

    def close(self) -> None:
        """Release the mapped files (safe to call more than once)."""
        for attr in ("_records_map", "_bodies_map"):
            mapped = getattr(self, attr, None)
            if mapped is not None:
                mapped.close()
                setattr(self, attr, None)
        for attr in ("_records_file", "_bodies_file"):
            handle = getattr(self, attr, None)
            if handle is not None:
                handle.close()
                setattr(self, attr, None)

    def __enter__(self) -> "ShardReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- columns --------------------------------------------------------------

    def _record_block(self, spec_index: int, column: int) -> bytes:
        n = self.n_domains
        base = spec_index * n * _RECORD_BYTES
        offsets = (0, 2 * n, 6 * n)
        widths = (2 * n, 4 * n, 4 * n)
        start = base + offsets[column]
        blob = self._records_map if self._records_map is not None else b""
        return bytes(blob[start:start + widths[column]])

    def statuses(self, spec_index: int) -> array:
        """``u16`` HTTP status per domain for one spec."""
        return le_bytes_to_array("H", self._record_block(spec_index, 0))

    def body_refs(self, spec_index: int) -> array:
        """``i32`` body reference per domain (-1 = no body)."""
        return le_bytes_to_array("i", self._record_block(spec_index, 1))

    def error_refs(self, spec_index: int) -> array:
        """``i32`` error reference per domain (-1 = no error)."""
        return le_bytes_to_array("i", self._record_block(spec_index, 2))

    def body_text(self, ref: int) -> str:
        """The interned robots body for *ref*, decoded once per reader."""
        text = self._body_texts.get(ref)
        if text is None:
            offset, length = self._body_offsets[ref]
            blob = self._bodies_map if self._bodies_map is not None else b""
            text = bytes(blob[offset:offset + length]).decode("utf-8")
            self._body_texts[ref] = text
        return text

    def body_digest(self, ref: int) -> str:
        """The body's SHA-256 content address (no decode needed)."""
        return self.body_digests[ref]

    def drop_body_cache(self) -> None:
        """Release the decoded-body memo (streaming callers drop it per
        shard so resident text never exceeds one shard's bodies)."""
        self._body_texts.clear()

    def probe(self) -> Dict[str, int]:
        """Point-in-time resource occupancy of this reader.

        ``data_bytes`` is the shard's on-disk column footprint,
        ``mapped_bytes`` the bytes currently mmap-addressable (0 once
        closed), ``body_cache_entries``/``body_cache_chars`` the
        decoded-body memo's occupancy -- the number the streaming
        plane's O(shard) memory model rests on.
        """
        mapped = sum(
            len(mapping)
            for mapping in (self._records_map, self._bodies_map)
            if mapping is not None
        )
        return {
            "data_bytes": self.data_bytes,
            "mapped_bytes": mapped,
            "body_cache_entries": len(self._body_texts),
            "body_cache_chars": sum(
                len(text) for text in self._body_texts.values()
            ),
        }

    def error_text(self, ref: int) -> str:
        return self.errors[ref]

    def domain_index(self) -> Dict[str, int]:
        """domain -> row map (built lazily; used by variant fallback)."""
        if self._domain_index is None:
            self._domain_index = {d: i for i, d in enumerate(self.domains)}
        return self._domain_index

    def error_budget(self, spec_index: int) -> Optional[ErrorBudget]:
        if spec_index < len(self._budgets):
            return self._budgets[spec_index]
        return None

    # -- record reconstruction -------------------------------------------------

    def record(self, spec_index: int, domain_index: int) -> SiteRecord:
        """One :class:`SiteRecord`, bit-identical to the crawled one."""
        status = self.statuses(spec_index)[domain_index]
        body_ref = self.body_refs(spec_index)[domain_index]
        error_ref = self.error_refs(spec_index)[domain_index]
        return SiteRecord(
            domain=self.domains[domain_index],
            status=status,
            robots_txt=self.body_text(body_ref) if body_ref >= 0 else None,
            error=self.errors[error_ref] if error_ref >= 0 else None,
        )

    def records_for(self, spec_index: int) -> Iterator[SiteRecord]:
        """All records for one spec, in stored (rank) order."""
        statuses = self.statuses(spec_index)
        body_refs = self.body_refs(spec_index)
        error_refs = self.error_refs(spec_index)
        for i, domain in enumerate(self.domains):
            body_ref = body_refs[i]
            error_ref = error_refs[i]
            yield SiteRecord(
                domain=domain,
                status=statuses[i],
                robots_txt=self.body_text(body_ref) if body_ref >= 0 else None,
                error=self.errors[error_ref] if error_ref >= 0 else None,
            )


class ArchiveSet:
    """All shards of one archive root, validated for mutual consistency."""

    def __init__(self, root: Union[str, Path], readers: List[ShardReader]):
        self.root = Path(root)
        self.readers = readers

    @classmethod
    def open(cls, root: Union[str, Path]) -> "ArchiveSet":
        """Open and cross-validate every shard under *root*."""
        root = Path(root)
        directories = sorted(root.glob("shard-*"))
        if not directories:
            raise ArchiveError(f"no shard archives under: {root}")
        readers = [ShardReader(directory) for directory in directories]
        first = readers[0]
        expected_ids = set(range(first.n_shards))
        seen_ids = {reader.shard_id for reader in readers}
        if seen_ids != expected_ids:
            missing = sorted(expected_ids - seen_ids)
            raise ArchiveError(
                f"incomplete archive ({len(readers)} of {first.n_shards} "
                f"shards, missing {missing}): {root}"
            )
        spec_table = [(s.snapshot_id, s.label, s.month_index) for s in first.specs]
        for reader in readers[1:]:
            if reader.config_digest != first.config_digest:
                raise ArchiveError(
                    f"shard {reader.shard_id} was written for a different "
                    f"world (config digest mismatch): {reader.directory}"
                )
            table = [(s.snapshot_id, s.label, s.month_index) for s in reader.specs]
            if table != spec_table:
                raise ArchiveError(
                    f"shard {reader.shard_id} covers different snapshot specs: "
                    f"{reader.directory}"
                )
        readers.sort(key=lambda r: r.shard_id)
        return cls(root, readers)

    @property
    def specs(self) -> List[SnapshotSpec]:
        return self.readers[0].specs

    @property
    def config_digest(self) -> str:
        return self.readers[0].config_digest

    @property
    def n_domains(self) -> int:
        return sum(reader.n_domains for reader in self.readers)

    def close(self) -> None:
        for reader in self.readers:
            reader.close()

    def __enter__(self) -> "ArchiveSet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _canonical_order(self) -> List[Tuple[int, int, int]]:
        """``(rank, shard_index, domain_index)`` rows in global rank order.

        Ranks are the population's stable-list positions, so this merge
        reproduces the canonical domain order any unsharded consumer
        iterates in.
        """
        order: List[Tuple[int, int, int]] = []
        for shard_index, reader in enumerate(self.readers):
            ranks = reader.ranks
            order.extend(
                (ranks[i], shard_index, i) for i in range(reader.n_domains)
            )
        order.sort()
        return order

    def stable_domains(self) -> List[str]:
        """Every archived domain, in global rank order."""
        return [
            self.readers[shard].domains[row]
            for _, shard, row in self._canonical_order()
        ]

    def snapshots(self) -> List[Snapshot]:
        """Reconstructed full snapshots, bit-identical to the crawl.

        Materializes every record (O(sites) memory) -- the
        compatibility path for consumers that want
        :class:`SnapshotSeries` semantics.  Streaming aggregations
        should iterate shards instead.
        """
        order = self._canonical_order()
        snapshots: List[Snapshot] = []
        for spec_index, spec in enumerate(self.specs):
            records: Dict[str, SiteRecord] = {}
            for _, shard, row in order:
                record = self.readers[shard].record(spec_index, row)
                records[record.domain] = record
            snapshots.append(
                Snapshot(
                    spec=spec,
                    records=records,
                    error_budget=merge_error_budgets(
                        [r.error_budget(spec_index) for r in self.readers]
                    ),
                )
            )
        return snapshots

    def body_store(self) -> "ArchiveBodyStore":
        """The archive's per-body facts backend (shared ``facts.json``)."""
        return ArchiveBodyStore(self.root)

    def publish_probes(self, registry=None, stratum: Optional[str] = None) -> None:
        """Publish per-shard archive-plane gauges into *registry*.

        One gauge family per :meth:`ShardReader.probe` field, labeled
        by shard id (and *stratum* when given):
        ``archive.data_bytes``, ``archive.mapped_bytes``,
        ``archive.body_cache_entries``, ``archive.body_cache_chars``,
        plus an ``archive.open_shards`` total.  Gauges are
        process-local point-in-time observations -- like the cache
        stats -- and sit outside the cross-mode identity contract.
        ``repro stats`` renders them as the archive-probe table.
        """
        registry = registry if registry is not None else shared_registry()
        extra = {} if stratum is None else {"stratum": stratum}
        for reader in self.readers:
            probe = reader.probe()
            shard = str(reader.shard_id)
            for field, value in probe.items():
                registry.set_gauge(f"archive.{field}", value, shard=shard, **extra)
        registry.set_gauge("archive.open_shards", len(self.readers), **extra)


# -- per-body facts ------------------------------------------------------------


class ArchiveBodyStore:
    """Per-body classification/flag memos stored with the archive.

    Satisfies the exact store interface
    :meth:`repro.measure.cache.PolicyCache.attach_store` consumes
    (``get_classification`` / ``put_classification`` / ``get_flag`` /
    ``put_flag``), with rows byte-compatible with
    :class:`repro.measure.incremental.IncrementalStore`'s
    ``bodies.json`` -- one fact per robots body content address,
    whichever backend computed it first.  Keeping the facts next to the
    body table means the archive and ``.repro-cache/`` never store a
    verdict twice: :meth:`ingest_incremental` folds an existing
    incremental store's body layer in, and the incremental store can
    keep serving experiment-level results while the archive serves the
    body level.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self._lock = Lock()
        self._classifications: Dict[str, Dict[str, list]] = {}
        self._flags: Dict[str, Dict[str, Dict[str, bool]]] = {
            kind: {} for kind in _FLAG_KINDS
        }
        self._dirty = False
        self._load()

    @property
    def facts_path(self) -> Path:
        return self.root / "facts.json"

    def _load(self) -> None:
        try:
            payload = json.loads(self.facts_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if payload.get("schema_fingerprint") != ARCHIVE_SCHEMA_FINGERPRINT:
            return  # stale layout: start empty, rewrite on flush
        self._classifications = payload.get("classify", {})
        for kind in _FLAG_KINDS:
            self._flags[kind] = payload.get(kind, {})

    def flush(self) -> None:
        """Persist the facts atomically (no-op when nothing changed)."""
        with self._lock:
            if not self._dirty:
                return
            self.root.mkdir(parents=True, exist_ok=True)
            payload: Dict[str, object] = {
                "schema_fingerprint": ARCHIVE_SCHEMA_FINGERPRINT,
                "classify": self._classifications,
            }
            for kind in _FLAG_KINDS:
                payload[kind] = self._flags[kind]
            tmp = self.facts_path.with_name(self.facts_path.name + ".tmp")
            tmp.write_text(
                json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, self.facts_path)
            self._dirty = False

    # -- the PolicyCache store interface --------------------------------------

    def get_classification(
        self, body_digest: str, user_agent: str, require_explicit: bool
    ) -> Optional[Classification]:
        entry = self._classifications.get(body_digest)
        if entry is None:
            return None
        row = entry.get(f"{user_agent}|{int(require_explicit)}")
        if row is None:
            return None
        level, explicit, explicit_allow = row
        return Classification(
            level=RestrictionLevel(level),
            explicit=bool(explicit),
            explicit_allow=bool(explicit_allow),
        )

    def put_classification(
        self,
        body_digest: str,
        user_agent: str,
        require_explicit: bool,
        result: Classification,
    ) -> None:
        with self._lock:
            entry = self._classifications.setdefault(body_digest, {})
            entry[f"{user_agent}|{int(require_explicit)}"] = [
                int(result.level),
                bool(result.explicit),
                bool(result.explicit_allow),
            ]
            self._dirty = True

    def get_flag(self, kind: str, body_digest: str, key: str) -> Optional[bool]:
        entry = self._flags[kind].get(body_digest)
        return None if entry is None else entry.get(key)

    def put_flag(self, kind: str, body_digest: str, key: str, value: bool) -> None:
        with self._lock:
            self._flags[kind].setdefault(body_digest, {})[key] = bool(value)
            self._dirty = True

    # -- dedup against the incremental store -----------------------------------

    def ingest_incremental(self, store_root: Union[str, Path]) -> int:
        """Fold an :class:`IncrementalStore`'s body facts into this store.

        Reads ``meta.json``/``bodies.json`` under *store_root* (the
        ``.repro-cache/`` layout); rows whose schema fingerprint is
        current migrate as-is, since both backends share the row
        encoding.  Returns the number of facts adopted.  Facts already
        present locally are kept (both backends computed them from the
        same content address, so they are equal by construction).
        """
        # Imported at call time: repro.measure imports this module's
        # package transitively, so a module-level import would cycle.
        from ..measure.incremental import SCHEMA_FINGERPRINT as INCREMENTAL_FINGERPRINT

        store_root = Path(store_root)
        try:
            meta = json.loads((store_root / "meta.json").read_text(encoding="utf-8"))
            bodies = json.loads((store_root / "bodies.json").read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return 0
        if meta.get("schema_fingerprint") != INCREMENTAL_FINGERPRINT:
            return 0
        adopted = 0
        with self._lock:
            for digest, rows in bodies.get("classify", {}).items():
                entry = self._classifications.setdefault(digest, {})
                for key, row in rows.items():
                    if key not in entry:
                        entry[key] = list(row)
                        adopted += 1
            for kind in _FLAG_KINDS:
                for digest, rows in bodies.get(kind, {}).items():
                    entry = self._flags[kind].setdefault(digest, {})
                    for key, value in rows.items():
                        if key not in entry:
                            entry[key] = bool(value)
                            adopted += 1
            if adopted:
                self._dirty = True
        return adopted

    def fact_count(self) -> int:
        """Distinct stored facts across every family."""
        return sum(len(rows) for rows in self._classifications.values()) + sum(
            len(rows)
            for kind in _FLAG_KINDS
            for rows in self._flags[kind].values()
        )
