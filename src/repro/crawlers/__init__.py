"""Crawlers: engine, behavior profiles, the Table 1 fleet, assistants,
and the Common-Crawl-style snapshotter."""

from .assistant import (
    GptApp,
    GptAppStore,
    ThirdPartyService,
    build_app_store,
    build_third_party_services,
)
from .commoncrawl import (
    CCBOT_UA,
    SNAPSHOT_SPECS,
    SiteRecord,
    Snapshot,
    SnapshotCrawler,
    SnapshotSpec,
    month_label,
)
from .engine import Crawler, CrawlResult
from .fleet import (
    FACEBOOK_EXTERNAL_HIT_UA,
    PASSIVE_VISITORS,
    FleetMember,
    build_builtin_assistants,
    build_fleet,
)
from .profiles import CrawlerProfile, RobotsBehavior
from .scheduler import CrawlScheduler, CrawlTask, SchedulerReport
from .trainer import HarvestItem, HarvestReport, MediaHarvester

__all__ = [
    "GptApp",
    "GptAppStore",
    "ThirdPartyService",
    "build_app_store",
    "build_third_party_services",
    "CCBOT_UA",
    "SNAPSHOT_SPECS",
    "SiteRecord",
    "Snapshot",
    "SnapshotCrawler",
    "SnapshotSpec",
    "month_label",
    "Crawler",
    "CrawlResult",
    "FACEBOOK_EXTERNAL_HIT_UA",
    "PASSIVE_VISITORS",
    "FleetMember",
    "build_builtin_assistants",
    "build_fleet",
    "CrawlerProfile",
    "RobotsBehavior",
    "CrawlScheduler",
    "CrawlTask",
    "SchedulerReport",
    "HarvestItem",
    "HarvestReport",
    "MediaHarvester",
]
