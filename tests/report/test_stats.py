"""Tests for the statistics utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.report.stats import (
    bootstrap_mean_interval,
    proportion_summary,
    wilson_interval,
)


class TestWilsonInterval:
    def test_half_and_half(self):
        lo, hi = wilson_interval(50, 100)
        assert lo < 0.5 < hi
        assert hi - lo < 0.25

    def test_extreme_zero(self):
        lo, hi = wilson_interval(0, 100)
        assert lo == 0.0
        assert 0 < hi < 0.06

    def test_extreme_all(self):
        lo, hi = wilson_interval(100, 100)
        assert hi == 1.0
        assert 0.94 < lo < 1.0

    def test_tighter_with_more_data(self):
        small = wilson_interval(5, 10)
        large = wilson_interval(500, 1000)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_higher_confidence_is_wider(self):
        narrow = wilson_interval(30, 100, confidence=0.90)
        wide = wilson_interval(30, 100, confidence=0.99)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])

    def test_custom_confidence_level(self):
        lo, hi = wilson_interval(30, 100, confidence=0.93)
        lo90, hi90 = wilson_interval(30, 100, confidence=0.90)
        lo95, hi95 = wilson_interval(30, 100, confidence=0.95)
        assert lo95 < lo < lo90
        assert hi90 < hi < hi95

    def test_empty_total(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_invalid_successes(self):
        with pytest.raises(ValueError):
            wilson_interval(11, 10)

    @given(
        successes=st.integers(min_value=0, max_value=200),
        total=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=80)
    def test_interval_contains_point_estimate(self, successes, total):
        if successes > total:
            successes = total
        lo, hi = wilson_interval(successes, total)
        assert 0.0 <= lo <= successes / total <= hi <= 1.0


class TestBootstrap:
    def test_contains_true_mean(self):
        sample = [float(x) for x in range(1, 21)]
        lo, hi = bootstrap_mean_interval(sample, seed=7)
        assert lo < sum(sample) / len(sample) < hi

    def test_deterministic(self):
        sample = [1.0, 5.0, 9.0, 2.0]
        assert bootstrap_mean_interval(sample, seed=3) == bootstrap_mean_interval(sample, seed=3)

    def test_constant_sample_collapses(self):
        lo, hi = bootstrap_mean_interval([4.0] * 10)
        assert lo == hi == 4.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_mean_interval([])


class TestProportionSummary:
    def test_paper_number(self):
        text = proportion_summary(107, 1875)
        assert text.startswith("5.7%")
        assert "[" in text and "]" in text

    def test_empty(self):
        assert proportion_summary(0, 0) == "n/a"
