"""Tables 5-8: survey demographics and familiarity.

Paper values: 203 valid responses; income duration 17/68/44/47; NA 109,
EU 52, Asia 21, SA 18, Africa 2, Oceania 1; Illustration the top art
type; familiarity means Website 4.60 > Search 4.35 > GenAI 3.89 >
Robots.txt 1.99 > bogus item 1.56.
"""

from conftest import save_artifact

from repro.report.experiments import run_survey_tables


def test_tables5_8_survey(benchmark, artifact_dir):
    result = benchmark.pedantic(
        run_survey_tables, kwargs={"seed": 42}, rounds=1, iterations=1
    )
    save_artifact(artifact_dir, result)
    print(result.text)

    metrics = result.metrics
    assert metrics["n_valid"] == 203
    assert abs(metrics["familiarity_website"] - 4.60) < 0.25
    assert abs(metrics["familiarity_robots"] - 1.99) < 0.40
    assert metrics["familiarity_website"] > metrics["familiarity_robots"]
