"""Legacy setup shim.

The offline environment lacks the `wheel` package that PEP 660 editable
installs require; with this shim `pip install -e . --no-build-isolation`
falls back to the setuptools develop path and works without network.
"""
from setuptools import setup

setup()
