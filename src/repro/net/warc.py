"""A minimal WARC (Web ARChive) writer/reader.

Common Crawl distributes its corpus as WARC files; a reproduction that
stands in for Common Crawl should be able to speak the format.  This
module implements the subset the robots.txt corpus needs: ``warcinfo``
and ``response`` records with the standard named fields, serialized in
the WARC/1.0 framing (headers, blank line, block, two blank lines).

The writer pairs with :mod:`repro.crawlers.commoncrawl`:
:func:`snapshot_to_warc` renders one snapshot's robots.txt fetches as a
WARC file, and :func:`parse_warc` / :func:`warc_to_records` read one
back into :class:`~repro.crawlers.commoncrawl.SiteRecord` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..crawlers.commoncrawl import SiteRecord, Snapshot

__all__ = [
    "WarcRecord",
    "render_warc",
    "parse_warc",
    "snapshot_to_warc",
    "warc_to_records",
]

_VERSION = "WARC/1.0"


@dataclass
class WarcRecord:
    """One WARC record.

    Attributes:
        record_type: ``warcinfo``, ``response``, ``request``, ...
        headers: WARC named fields (``WARC-Target-URI`` etc.).
        block: The record block (e.g. an HTTP response message).
    """

    record_type: str
    headers: Dict[str, str] = field(default_factory=dict)
    block: str = ""

    @property
    def target_uri(self) -> Optional[str]:
        return self.headers.get("WARC-Target-URI")


def render_warc(records: List[WarcRecord]) -> str:
    """Serialize *records* in WARC/1.0 framing."""
    chunks: List[str] = []
    for record in records:
        block_bytes = record.block.encode("utf-8")
        lines = [
            _VERSION,
            f"WARC-Type: {record.record_type}",
        ]
        for name, value in record.headers.items():
            lines.append(f"{name}: {value}")
        lines.append(f"Content-Length: {len(block_bytes)}")
        chunks.append("\r\n".join(lines) + "\r\n\r\n" + record.block + "\r\n\r\n")
    return "".join(chunks)


def parse_warc(text: str) -> List[WarcRecord]:
    """Parse WARC/1.0 text back into records.

    Content-Length is honored in bytes over the UTF-8 encoding, so
    blocks containing blank lines round-trip correctly.
    """
    records: List[WarcRecord] = []
    data = text
    while True:
        start = data.find(_VERSION)
        if start == -1:
            break
        data = data[start:]
        header_end = data.find("\r\n\r\n")
        if header_end == -1:
            break
        header_text = data[len(_VERSION): header_end]
        headers: Dict[str, str] = {}
        record_type = ""
        content_length = 0
        for line in header_text.split("\r\n"):
            if not line.strip():
                continue
            name, _, value = line.partition(":")
            name, value = name.strip(), value.strip()
            if name.lower() == "warc-type":
                record_type = value
            elif name.lower() == "content-length":
                content_length = int(value)
            else:
                headers[name] = value
        body_start = header_end + 4
        remainder_bytes = data[body_start:].encode("utf-8")
        block = remainder_bytes[:content_length].decode("utf-8", errors="replace")
        records.append(
            WarcRecord(record_type=record_type, headers=headers, block=block)
        )
        data = remainder_bytes[content_length:].decode("utf-8", errors="replace")
    return records


def _http_response_block(record: SiteRecord) -> str:
    if record.ok:
        body = record.robots_txt or ""
        status_line = "HTTP/1.1 200 OK"
        content_type = "text/plain"
    else:
        body = record.error or ""
        status_line = f"HTTP/1.1 {record.status or 0} FETCH-RESULT"
        content_type = "text/plain"
    return (
        f"{status_line}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body.encode('utf-8'))}\r\n"
        "\r\n"
        f"{body}"
    )


def snapshot_to_warc(snapshot: Snapshot) -> str:
    """Render one snapshot's robots.txt fetches as a WARC file."""
    records: List[WarcRecord] = [
        WarcRecord(
            record_type="warcinfo",
            headers={"WARC-Filename": f"{snapshot.spec.snapshot_id}.warc"},
            block=(
                f"software: repro snapshot crawler\r\n"
                f"snapshot: {snapshot.spec.snapshot_id}\r\n"
                f"label: {snapshot.spec.label}\r\n"
                f"month-index: {snapshot.spec.month_index}\r\n"
            ),
        )
    ]
    for domain, record in snapshot.records.items():
        records.append(
            WarcRecord(
                record_type="response",
                headers={
                    "WARC-Target-URI": f"https://{domain}/robots.txt",
                    "WARC-Record-Status": str(record.status),
                },
                block=_http_response_block(record),
            )
        )
    return render_warc(records)


def warc_to_records(text: str) -> List[SiteRecord]:
    """Read a robots.txt WARC back into :class:`SiteRecord` objects."""
    out: List[SiteRecord] = []
    for record in parse_warc(text):
        if record.record_type != "response":
            continue
        uri = record.target_uri or ""
        domain = uri.split("://", 1)[-1].split("/", 1)[0]
        status = int(record.headers.get("WARC-Record-Status", "0"))
        _, _, body = record.block.partition("\r\n\r\n")
        if status == 200:
            out.append(SiteRecord(domain=domain, status=200, robots_txt=body))
        elif status == 0:
            out.append(SiteRecord(domain=domain, status=0, error=body or None))
        else:
            out.append(SiteRecord(domain=domain, status=status))
    return out
