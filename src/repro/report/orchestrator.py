"""Dependency-aware parallel experiment orchestrator.

The paper's artifact is ~16 independent measurements over one shared
world.  This module declares each runner's world dependency in a
registry and executes any subset of the battery -- sequentially or
across a worker pool -- on top of the content-addressed
:class:`~repro.web.worldstore.WorldStore`:

* the **longitudinal bundle** (population + fifteen crawled snapshots)
  is built once and shared read-only by the Figure 2-4 / Table 3 /
  extension runners,
* **audit-population** runners (Sections 6.2/6.3/2.2, Appendix B.2,
  Section 8.1) each receive their own copy-on-write view of the same
  frozen population, so one runner's mutations (handler registration,
  attribute edits) can never surface in a sibling's view,
* **standalone** runners (survey, Table 1/2) need no world at all.

Scheduling never affects results: runners draw everything from seeded
inputs and isolated views, results are assembled in registry order
regardless of completion order, and ``workers=1`` vs ``workers=N``
outputs are bit-identical (enforced by
``tests/report/test_orchestrator.py``).  ``run_all`` returns a
machine-readable :class:`RunReport` with per-experiment wall-clock
timings for the perf trajectory.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..web.population import PopulationConfig
from ..web.worldstore import WorldStore, shared_world_store
from . import experiments as exp
from .experiments import ExperimentResult, LongitudinalBundle

__all__ = [
    "ExperimentSpec",
    "EXPERIMENT_REGISTRY",
    "experiment_keys",
    "RunReport",
    "run_all",
    "run_one",
]

#: World dependency labels.
WORLD_BUNDLE = "bundle"
WORLD_POPULATION = "population"
WORLD_NONE = "none"


@dataclass(frozen=True)
class ExperimentSpec:
    """One registry entry.

    Attributes:
        key: CLI-facing identifier (``repro experiment <key>``).
        result_id: ``ExperimentResult.experiment_id`` the runner emits
            (also the ``results/<result_id>.txt`` artifact name).
        title: Short human-readable title.
        world: ``"bundle"``, ``"population"``, or ``"none"`` -- what
            the runner consumes.
        run: The runner; receives the world (or nothing) and returns an
            :class:`ExperimentResult`.
    """

    key: str
    result_id: str
    title: str
    world: str
    run: Callable[..., ExperimentResult]


EXPERIMENT_REGISTRY: Tuple[ExperimentSpec, ...] = (
    ExperimentSpec("table1", "table1", "AI crawler compliance (Table 1)",
                   WORLD_NONE, lambda: exp.run_table1_compliance()),
    ExperimentSpec("figure2", "figure2", "Full-disallow trend (Figure 2)",
                   WORLD_BUNDLE, exp.run_figure2),
    ExperimentSpec("figure3", "figure3", "Per-agent disallow trend (Figure 3)",
                   WORLD_BUNDLE, exp.run_figure3),
    ExperimentSpec("figure4", "figure4", "Explicit allows & removals (Figure 4)",
                   WORLD_BUNDLE, exp.run_figure4),
    ExperimentSpec("table3", "table3", "Snapshot coverage (Table 3)",
                   WORLD_BUNDLE, exp.run_table3),
    ExperimentSpec("table2", "table2", "Artist hosting providers (Table 2)",
                   WORLD_NONE, lambda: exp.run_table2_artists()),
    ExperimentSpec("sec62", "sec62", "Active blocking prevalence (Section 6.2)",
                   WORLD_POPULATION,
                   lambda population: exp.run_sec62_active_blocking(population=population)),
    ExperimentSpec("sec63", "sec63", "Cloudflare Block AI Bots (Section 6.3)",
                   WORLD_POPULATION,
                   lambda population: exp.run_sec63_cloudflare(population=population)),
    ExperimentSpec("sec22", "sec22", "NoAI meta tags (Section 2.2)",
                   WORLD_POPULATION,
                   lambda population: exp.run_sec22_meta_tags(population=population)),
    ExperimentSpec("survey", "survey", "Artist survey (Tables 5-8)",
                   WORLD_NONE, lambda: exp.run_survey_tables()),
    ExperimentSpec("appb2", "appb2", "Parser comparison (Appendix B.2)",
                   WORLD_POPULATION,
                   lambda population: exp.run_appb2_parser_comparison(population=population)),
    ExperimentSpec("sec81", "sec81", "robots.txt mistakes (Section 8.1)",
                   WORLD_POPULATION,
                   lambda population: exp.run_sec81_mistakes(population=population)),
    ExperimentSpec("tables9_12", "tables9_12", "Thematic codebooks (Tables 9-12)",
                   WORLD_NONE, lambda: exp.run_tables9_12_codebooks()),
    ExperimentSpec("crosstabs", "survey_crosstabs", "Survey association tests",
                   WORLD_NONE, lambda: exp.run_survey_crosstabs()),
    ExperimentSpec("taxonomy", "change_taxonomy", "robots.txt change taxonomy",
                   WORLD_BUNDLE, exp.run_change_taxonomy),
    ExperimentSpec("category", "ext_adoption_by_category", "Adoption by category",
                   WORLD_BUNDLE, exp.run_ext_adoption_by_category),
)

_BY_KEY: Dict[str, ExperimentSpec] = {spec.key: spec for spec in EXPERIMENT_REGISTRY}


def experiment_keys() -> List[str]:
    """Registry keys in canonical (report) order."""
    return [spec.key for spec in EXPERIMENT_REGISTRY]


# -- timing report -------------------------------------------------------------


@dataclass
class RunReport:
    """The outcome of one :func:`run_all` invocation.

    Attributes:
        results: One :class:`ExperimentResult` per requested experiment,
            in registry order (scheduling never reorders them).
        timings_seconds: Per-experiment measurement wall clock, keyed by
            registry key.
        world_seconds: Wall clock spent building (or hitting the cache
            for) the shared worlds before any runner started.
        workers: Worker count the battery ran with.
        mode: Execution mode actually used ("serial", "thread",
            "process").
    """

    results: List[ExperimentResult] = field(default_factory=list)
    timings_seconds: Dict[str, float] = field(default_factory=dict)
    world_seconds: float = 0.0
    total_seconds: float = 0.0
    workers: int = 1
    mode: str = "serial"

    def result_for(self, key: str) -> ExperimentResult:
        """The result for registry *key* (KeyError if not run)."""
        spec = _BY_KEY[key]
        for result in self.results:
            if result.experiment_id == spec.result_id:
                return result
        raise KeyError(key)

    def to_json(self) -> Dict[str, object]:
        """Machine-readable timing payload (for results/TIMINGS.json)."""
        return {
            "schema_version": 1,
            "mode": self.mode,
            "workers": self.workers,
            "world_seconds": round(self.world_seconds, 6),
            "total_seconds": round(self.total_seconds, 6),
            "experiments": [
                {
                    "key": spec.key,
                    "experiment_id": spec.result_id,
                    "title": spec.title,
                    "world": spec.world,
                    "seconds": round(self.timings_seconds.get(spec.key, 0.0), 6),
                }
                for spec in EXPERIMENT_REGISTRY
                if spec.key in self.timings_seconds
            ],
        }


# -- execution -----------------------------------------------------------------


@dataclass
class _RunContext:
    """Everything a worker needs; inherited by forked children."""

    config: Optional[PopulationConfig]
    store: WorldStore
    bundle: Optional[LongitudinalBundle]


#: Set by :func:`run_all` before any pool spawns so fork-based workers
#: inherit the built world instead of pickling it.
_WORKER_CONTEXT: Optional[_RunContext] = None


def _execute_experiment(key: str) -> Tuple[str, float, ExperimentResult]:
    """Run one experiment against the ambient context (worker entry)."""
    context = _WORKER_CONTEXT
    assert context is not None, "run_all must establish the context first"
    spec = _BY_KEY[key]
    start = time.perf_counter()
    if spec.world == WORLD_BUNDLE:
        result = spec.run(context.bundle)
    elif spec.world == WORLD_POPULATION:
        # Every population runner gets its own copy-on-write view: its
        # mutations (handler registration, attribute edits) live and die
        # with the view, never in a sibling's world.
        result = spec.run(context.store.population_view(context.config))
    else:
        result = spec.run()
    return key, time.perf_counter() - start, result


def _resolve_mode(mode: str, workers: int) -> str:
    if workers <= 1:
        return "serial"
    if mode != "auto":
        return mode
    # Processes only pay off with real cores and a fork start method
    # (children must inherit the built world, not re-pickle it).
    if (os.cpu_count() or 1) > 1 and "fork" in multiprocessing.get_all_start_methods():
        return "process"
    return "thread"


def run_all(
    config: Optional[PopulationConfig] = None,
    workers: Optional[int] = None,
    experiments: Optional[Sequence[str]] = None,
    store: Optional[WorldStore] = None,
    mode: str = "auto",
    collect_workers: Optional[int] = None,
) -> RunReport:
    """Run the experiment battery over one shared world.

    Args:
        config: Population config (None = the paper's default scale).
        workers: Worker pool size (None/1 = sequential).  Results are
            bit-identical for any worker count.
        experiments: Registry keys to run (None = the full battery), in
            any order; results always come back in registry order.
        store: World store to draw from (default: the process-wide
            shared store, so repeated invocations hit the cache).
        mode: "auto" (processes when forking onto multiple cores is
            possible, else threads), "thread", or "process".
        collect_workers: Parallelism for the snapshot crawl when the
            bundle has to be built (forwarded to
            :func:`~repro.measure.longitudinal.collect_snapshots`).

    Returns:
        A :class:`RunReport` with results in registry order plus the
        per-experiment timing trajectory.
    """
    global _WORKER_CONTEXT
    store = store or shared_world_store()
    keys = list(experiments) if experiments is not None else experiment_keys()
    unknown = [k for k in keys if k not in _BY_KEY]
    if unknown:
        raise KeyError(f"unknown experiment key(s): {', '.join(unknown)}")
    specs = [_BY_KEY[k] for k in keys]
    ordered = [spec.key for spec in EXPERIMENT_REGISTRY if spec.key in set(keys)]

    total_start = time.perf_counter()
    world_start = time.perf_counter()
    bundle: Optional[LongitudinalBundle] = None
    if any(spec.world == WORLD_BUNDLE for spec in specs):
        bundle = exp.build_longitudinal_bundle(
            config, workers=collect_workers, store=store
        )
    elif any(spec.world == WORLD_POPULATION for spec in specs):
        store.population(config)  # warm the substrate once, up front
    world_seconds = time.perf_counter() - world_start

    n_workers = max(1, workers or 1)
    resolved = _resolve_mode(mode, min(n_workers, len(ordered)))
    _WORKER_CONTEXT = _RunContext(config=config, store=store, bundle=bundle)
    try:
        if resolved == "serial":
            outcomes = [_execute_experiment(key) for key in ordered]
        elif resolved == "process":
            context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(
                max_workers=n_workers, mp_context=context
            ) as pool:
                outcomes = list(pool.map(_execute_experiment, ordered))
        else:
            with ThreadPoolExecutor(max_workers=n_workers) as pool:
                # map preserves submission order regardless of
                # completion order, so parallelism cannot reorder or
                # interleave the assembled report.
                outcomes = list(pool.map(_execute_experiment, ordered))
    finally:
        _WORKER_CONTEXT = None

    report = RunReport(workers=n_workers, mode=resolved, world_seconds=world_seconds)
    for key, seconds, result in outcomes:
        report.timings_seconds[key] = seconds
        report.results.append(result)
    report.total_seconds = time.perf_counter() - total_start
    return report


def run_one(
    key: str,
    config: Optional[PopulationConfig] = None,
    store: Optional[WorldStore] = None,
    collect_workers: Optional[int] = None,
) -> ExperimentResult:
    """Run a single experiment by registry key over the shared store."""
    report = run_all(
        config,
        workers=1,
        experiments=[key],
        store=store,
        collect_workers=collect_workers,
    )
    return report.results[0]
