"""The simulated site: robots.txt schedule plus serving configuration.

A :class:`SimSite` is the static description of one website across the
whole study window: how its robots.txt evolved month by month, whether
it sits behind Cloudflare and with which toggles, whether it runs its
own UA-based blocking, whether it blocks automation wholesale, and
whether its pages carry NoAI meta tags.  :meth:`SimSite.build_handler`
materializes the site as a servable handler (origin website, possibly
wrapped in a proxy) for a given month, which is how the measurement
pipelines interact with it -- over HTTP, not by reading attributes.
"""

from __future__ import annotations

import bisect
import copy
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ..net.server import Website, render_page
from ..net.transport import Handler
from ..proxy.cloudflare import CloudflareProxy, CloudflareSettings
from ..proxy.reverse_proxy import ReverseProxy
from ..proxy.rules import Action, BlockRule, RuleSet

__all__ = ["BlockingConfig", "SimSite"]

#: UA patterns a self-managed WAF blocks when a site "actively blocks
#: Anthropic's crawlers" (the Section 6.2 population).
ANTHROPIC_UA_PATTERNS = ("Claudebot", "anthropic-ai")

#: Rebinding any of these fields invalidates the robots.txt lookup
#: caches (key array + per-month memo) and the handler cache.
_ROBOTS_FIELDS = frozenset({"robots_schedule", "missing_months"})
#: Rebinding any of these fields invalidates only the handler cache
#: (the served robots text is unaffected, the blocking layers are not).
_HANDLER_FIELDS = frozenset({"blocking", "meta_noai", "meta_noimageai"})

#: Cache-miss sentinel (``None`` is a legitimate cache key).
_HANDLER_MISS = object()


@dataclass
class BlockingConfig:
    """A site's active-blocking posture (evaluated at serve time).

    Attributes:
        cloudflare: Cloudflare zone settings, or None when the site is
            not behind Cloudflare.
        cf_custom_confound: The site runs additional third-party or
            custom blocking that makes the Figure 7 inference
            indeterminate (e.g. PerimeterX in front of everything).
        waf_blocks_anthropic: A custom origin/WAF rule blocking the
            ClaudeBot and anthropic-ai user agents.
        blocks_automation: The site blocks all fingerprint-detected
            automation (the "inherently blocks our tool" behavior).
        ip_blocks_published_ai: The site firewalls the *source ranges*
            of AI crawlers with published IPs (GPTBot, CCBot, ...).
            Invisible to the paper's UA-differential detector, which is
            why Section 6.1 calls its estimate "a form of active
            blocking that we cannot measure".
    """

    cloudflare: Optional[CloudflareSettings] = None
    cf_custom_confound: bool = False
    waf_blocks_anthropic: bool = False
    blocks_automation: bool = False
    ip_blocks_published_ai: bool = False

    @property
    def on_cloudflare(self) -> bool:
        """Whether the site is served through Cloudflare."""
        return self.cloudflare is not None

    @property
    def blocks_anthropic_uas(self) -> bool:
        """Whether requests with Anthropic UAs are actively blocked."""
        if self.waf_blocks_anthropic:
            return True
        if self.cloudflare is not None and self.cloudflare.block_ai_bots:
            return True
        if self.cf_custom_confound:
            return True
        return False


@dataclass
class SimSite:
    """One simulated website over the whole study window.

    Attributes:
        domain: The site's domain.
        rank: Stable popularity rank (0 = most popular).
        tier: ``"top5k"`` or ``"other"`` within the stable set.
        category: Editorial category (news, shopping, misinfo, ...).
        publisher: Owning publisher for portfolio domains, else None.
        robots_schedule: ``(month, text-or-None)`` changes, sorted by
            month; the entry with the largest month <= m is in effect at
            month m.  None means "serves no robots.txt".
        missing_months: Months where the site's robots.txt is
            unavailable to crawlers (transient errors), making the site
            fail the paper's every-snapshot filter.
        blocking: Active-blocking posture.
        meta_noai / meta_noimageai: NoAI meta tags on pages.
    """

    domain: str
    rank: int
    tier: str = "other"
    category: str = "general"
    publisher: Optional[str] = None
    robots_schedule: List[Tuple[int, Optional[str]]] = field(default_factory=list)
    missing_months: Set[int] = field(default_factory=set)
    blocking: BlockingConfig = field(default_factory=BlockingConfig)
    meta_noai: bool = False
    meta_noimageai: bool = False

    def __post_init__(self) -> None:
        self.robots_schedule.sort(key=lambda pair: pair[0])

    # -- immutability and cache discipline ------------------------------------

    def __setattr__(self, name: str, value: object) -> None:
        state = self.__dict__
        if state.get("_frozen", False):
            raise AttributeError(
                f"SimSite {state.get('domain', '?')!r} is frozen; "
                f"cannot set {name!r} (mutate a world-store view instead)"
            )
        if name in _ROBOTS_FIELDS:
            state.pop("_robots_keys", None)
            state.pop("_robots_memo", None)
            state.pop("_handler_cache", None)
        elif name in _HANDLER_FIELDS:
            state.pop("_handler_cache", None)
        object.__setattr__(self, name, value)

    @property
    def frozen(self) -> bool:
        """Whether the site has been frozen (immutable substrate)."""
        return self.__dict__.get("_frozen", False)

    def freeze(self) -> "SimSite":
        """Make the site immutable: any further field set raises.

        The world store freezes canonical populations so a cached world
        can never be corrupted by one consumer's mutations.  Lazy caches
        (robots key array, per-month memo, built handlers) still
        populate on frozen sites -- they are derived, not state.
        """
        self.__dict__["_frozen"] = True
        return self

    def clone(self) -> "SimSite":
        """An independently mutable copy sharing immutable payloads.

        The clone shares robots.txt *text* objects, the lazily built
        robots lookup caches, and the handler cache with its source --
        all of which stay valid until the clone diverges, at which point
        :meth:`__setattr__` drops the clone's (and only the clone's)
        references.  This is the copy-on-write primitive behind world
        store views.
        """
        blocking = copy.copy(self.blocking)
        if blocking.cloudflare is not None:
            blocking.cloudflare = copy.copy(blocking.cloudflare)
        clone = SimSite(
            domain=self.domain,
            rank=self.rank,
            tier=self.tier,
            category=self.category,
            publisher=self.publisher,
            robots_schedule=list(self.robots_schedule),
            missing_months=set(self.missing_months),
            blocking=blocking,
            meta_noai=self.meta_noai,
            meta_noimageai=self.meta_noimageai,
        )
        # Seed the clone's caches from the source: reads share work,
        # writes rebind fields and thereby detach the shared dicts.
        state = self.__dict__
        for cache in ("_robots_keys", "_robots_memo"):
            if cache in state:
                clone.__dict__[cache] = state[cache]
        clone.__dict__["_handler_cache"] = state.setdefault("_handler_cache", {})
        return clone

    # -- robots.txt over time -------------------------------------------------

    def robots_at(self, month: int) -> Optional[str]:
        """The robots.txt text in effect at *month* (None = absent)."""
        if month in self.missing_months:
            return None
        state = self.__dict__
        memo = state.get("_robots_memo")
        if memo is None:
            memo = state["_robots_memo"] = {}
        elif month in memo:
            return memo[month]
        keys = state.get("_robots_keys")
        if keys is None:
            keys = state["_robots_keys"] = [m for m, _ in self.robots_schedule]
        index = bisect.bisect_right(keys, month) - 1
        text = None if index < 0 else self.robots_schedule[index][1]
        memo[month] = text
        return text

    def robots_changed_between(self, earlier: int, later: int) -> bool:
        """Whether the *served* robots.txt differs between two months.

        This is the delta predicate behind incremental snapshot
        collection: a site whose effective robots.txt (including
        missing-month unavailability) is identical at both months will
        produce a byte-identical snapshot record, because handlers are
        memoized per effective robots text (see :meth:`build_handler`)
        and serving is response-stateless.  Comparisons reuse the
        ``robots_at`` memos, so a whole-population delta plan costs one
        bisect per (site, month) at most once.
        """
        return self.robots_at(later) != self.robots_at(earlier)

    def set_robots(self, month: int, text: Optional[str]) -> None:
        """Record a robots.txt change landing at *month*."""
        schedule = [(m, t) for m, t in self.robots_schedule if m != month]
        schedule.append((month, text))
        schedule.sort(key=lambda pair: pair[0])
        # Single rebind so the cache-invalidation hook fires exactly
        # once, after the new schedule is fully assembled.
        self.robots_schedule = schedule

    def change_months(self) -> List[int]:
        """Months at which the robots.txt changed."""
        return [m for m, _ in self.robots_schedule]

    # -- materialization ----------------------------------------------------------

    def _meta_content(self) -> Optional[str]:
        tags = []
        if self.meta_noai:
            tags.append("noai")
        if self.meta_noimageai:
            tags.append("noimageai")
        return ", ".join(tags) if tags else None

    def build_origin(self, month: int) -> Website:
        """The origin website as it stood at *month* (no proxies)."""
        site = Website(self.domain)
        site.category = self.category
        site.add_page(
            "/",
            render_page(
                f"{self.domain} home",
                paragraphs=[f"{self.category} content from {self.domain}."],
                links=["/about", "/news/latest"],
                meta_robots=self._meta_content(),
            ),
        )
        site.add_page(
            "/about",
            render_page(f"About {self.domain}", paragraphs=["About page."]),
        )
        site.add_page(
            "/news/latest",
            render_page("Latest", paragraphs=["Fresh content."]),
        )
        site.set_robots_txt(self.robots_at(month))
        return site

    def build_handler(self, month: int) -> Handler:
        """The servable handler at *month*: origin plus blocking layers.

        Handlers are memoized per effective robots.txt text: two months
        serving the same text share one handler object, and repeated
        materializations of the same month reuse it outright.  Serving
        is response-stateless (logs and dashboards are append-only and
        never read back by the population measurements), so a handler
        can safely serve many networks, runners, and threads.  Rebinding
        any field the handler depends on invalidates the cache (see
        :meth:`__setattr__`).
        """
        cache = self.__dict__.setdefault("_handler_cache", {})
        key = self.robots_at(month)
        handler = cache.get(key, _HANDLER_MISS)
        if handler is not _HANDLER_MISS:
            return handler
        handler = self._build_handler_uncached(month)
        cache[key] = handler
        return handler

    def _build_handler_uncached(self, month: int) -> Handler:
        origin = self.build_origin(month)
        handler: Handler = origin

        needs_origin_waf = (
            self.blocking.waf_blocks_anthropic
            or self.blocking.blocks_automation
            or self.blocking.ip_blocks_published_ai
        )
        if needs_origin_waf:
            rules = RuleSet()
            if self.blocking.waf_blocks_anthropic:
                rules.add(
                    BlockRule(
                        Action.BLOCK,
                        ua_patterns=list(ANTHROPIC_UA_PATTERNS),
                        label="block-anthropic",
                    )
                )
            if self.blocking.ip_blocks_published_ai:
                from ..agents.ipranges import CRAWLER_RANGES

                published = [
                    block.network
                    for block in CRAWLER_RANGES.values()
                    if block.published and block.token not in ("Googlebot", "Bingbot")
                ]
                rules.add(
                    BlockRule(
                        Action.BLOCK,
                        networks=published,
                        label="ip-blocklist",
                    )
                )
            handler = ReverseProxy(
                handler,
                rules,
                service_name=f"{self.domain}-waf",
                block_all_automation=self.blocking.blocks_automation,
            )

        if self.blocking.cloudflare is not None:
            custom = RuleSet()
            if self.blocking.cf_custom_confound:
                # A third-party bot manager with its own idiosyncratic
                # UA list: it challenges the AI probes but not the
                # Definitely-Automated probes, a disposition no managed
                # ruleset produces -- which is exactly what defeats the
                # Figure 7 inference for these zones.
                custom.add(
                    BlockRule(
                        Action.CHALLENGE,
                        ua_patterns=["claud", "anthropic", "python", "curl"],
                        label="third-party-bot-manager",
                    )
                )
            handler = CloudflareProxy(
                handler, self.blocking.cloudflare, custom_rules=custom
            )
        return handler
