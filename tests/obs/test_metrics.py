"""Tests for repro.obs.metrics.

The load-bearing properties: counter/histogram totals are exact and
mergeable (the fork-worker shipping protocol depends on
``snapshot`` / ``snapshot_delta`` / ``merge`` composing to the serial
totals), mutation is thread-safe, and the disabled path records
nothing while leaving reads and merges functional.
"""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA_VERSION,
    MetricsRegistry,
    export_metrics,
    metrics_enabled,
    render_key,
    set_metrics_enabled,
    snapshot_delta,
)


@pytest.fixture(autouse=True)
def metrics_on():
    """Every test starts (and leaves the process) with metrics enabled."""
    set_metrics_enabled(True)
    yield
    set_metrics_enabled(True)


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("fetches", agent="GPTBot")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter_value("fetches", agent="GPTBot") == 5

    def test_labels_address_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.inc("fetches", agent="GPTBot")
        registry.inc("fetches", agent="CCBot", amount=2)
        assert registry.counter_value("fetches", agent="GPTBot") == 1
        assert registry.counter_value("fetches", agent="CCBot") == 2
        assert registry.counter_value("fetches") == 0

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        a = registry.counter("x", b="1", a="2")
        b = registry.counter("x", a="2", b="1")
        assert a is b

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().counter_value("never") == 0

    def test_handle_survives_reset(self):
        # reset() zeroes in place so long-lived hot-path handles keep
        # working; they must not be detached from the registry.
        registry = MetricsRegistry()
        handle = registry.counter("fetches")
        handle.inc(3)
        registry.reset()
        assert handle.value == 0
        handle.inc()
        assert registry.counter_value("fetches") == 1


class TestGauge:
    def test_set_and_value(self):
        registry = MetricsRegistry()
        registry.set_gauge("cache.entries", 17)
        assert registry.gauge("cache.entries").value == 17.0

    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 1)
        registry.set_gauge("g", 2)
        assert registry.gauge("g").value == 2.0


class TestHistogram:
    def test_bucket_semantics_inclusive_upper_bounds(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sizes", buckets=(1, 10, 100))
        for value in (0, 1, 5, 10, 99, 1000):
            hist.observe(value)
        # bounds are inclusive: 1 -> bucket[<=1], 10 -> bucket[<=10],
        # 1000 -> the overflow bucket.
        assert hist.counts == [2, 2, 1, 1]
        assert hist.count == 6
        assert hist.sum == 1115.0

    def test_default_bucket_ladder(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        assert hist.bounds == tuple(sorted(DEFAULT_BUCKETS))

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=())


class TestThreadSafety:
    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("hot")
        hist = registry.histogram("obs", buckets=(10,))
        n_threads, per_thread = 8, 2500

        def work():
            for _ in range(per_thread):
                counter.inc()
                hist.observe(1)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * per_thread
        assert hist.count == n_threads * per_thread


class TestMergeAndShipping:
    def _work(self, registry, rounds):
        for _ in range(rounds):
            registry.inc("fetches", agent="GPTBot")
            registry.observe("latency", 3, site="a.example")
        registry.set_gauge("cache.entries", rounds)

    def test_merge_across_simulated_workers(self):
        # The fork-pool protocol: each worker snapshots before/after its
        # slice and ships the delta; the parent merges every delta.  The
        # result must equal one serial registry doing all the work.
        parent = MetricsRegistry()
        serial = MetricsRegistry()
        for rounds in (3, 5, 9):
            self._work(serial, rounds)
            worker = MetricsRegistry()
            self._work(worker, 1)  # pre-existing state the delta excludes
            before = worker.snapshot()
            self._work(worker, rounds)
            parent.merge(snapshot_delta(worker.snapshot(), before))
        assert parent.counter_value("fetches", agent="GPTBot") == 17
        serial_hist = serial.histogram("latency", site="a.example")
        merged_hist = parent.histogram("latency", site="a.example")
        assert merged_hist.counts == serial_hist.counts
        assert merged_hist.sum == serial_hist.sum
        # Gauges are last-write-wins, not summed.
        assert parent.gauge("cache.entries").value == 9.0

    def test_delta_drops_zero_rows(self):
        registry = MetricsRegistry()
        registry.inc("a")
        before = registry.snapshot()
        registry.inc("b")
        delta = snapshot_delta(registry.snapshot(), before)
        assert ("a", ()) not in delta["counters"]
        assert delta["counters"][("b", ())] == 1

    def test_merge_accepts_registry_and_works_while_disabled(self):
        source = MetricsRegistry()
        source.inc("n", amount=4)
        target = MetricsRegistry()
        set_metrics_enabled(False)
        try:
            # Shipping already-recorded data is not new recording.
            target.merge(source)
        finally:
            set_metrics_enabled(True)
        assert target.counter_value("n") == 4


class TestDisabled:
    def test_disabled_mutations_record_nothing(self):
        registry = MetricsRegistry()
        handle = registry.counter("c")
        set_metrics_enabled(False)
        try:
            assert not metrics_enabled()
            handle.inc()
            registry.inc("c")
            registry.set_gauge("g", 5)
            registry.observe("h", 1)
        finally:
            set_metrics_enabled(True)
        assert handle.value == 0
        assert registry.gauge("g").value == 0.0
        assert registry.histogram("h").count == 0


class TestExport:
    def test_render_key(self):
        assert render_key(("n", ())) == "n"
        assert render_key(("n", (("a", "1"), ("b", "x")))) == "n{a=1,b=x}"

    def test_to_json_shape(self):
        registry = MetricsRegistry()
        registry.inc("fetches", agent="GPTBot")
        registry.set_gauge("entries", 2)
        registry.observe("sizes", 3, site="s")
        payload = registry.to_json()
        assert payload["schema_version"] == METRICS_SCHEMA_VERSION
        assert payload["counters"] == {"fetches{agent=GPTBot}": 1}
        assert payload["gauges"] == {"entries": 2.0}
        assert payload["histograms"]["sizes{site=s}"]["count"] == 1

    def test_export_metrics_writes_json(self, tmp_path):
        import json

        registry = MetricsRegistry()
        registry.inc("n")
        path = tmp_path / "METRICS.json"
        export_metrics(path, registry)
        payload = json.loads(path.read_text())
        assert payload["counters"] == {"n": 1}


class TestMetricsDisabledContext:
    def test_silences_and_restores(self):
        from repro.obs.metrics import metrics_disabled

        registry = MetricsRegistry()
        with metrics_disabled():
            assert not metrics_enabled()
            registry.inc("n")
        assert metrics_enabled()
        assert registry.counter_value("n") == 0
        registry.inc("n")
        assert registry.counter_value("n") == 1

    def test_nests_and_restores_prior_state(self):
        from repro.obs.metrics import metrics_disabled

        set_metrics_enabled(False)
        with metrics_disabled():
            assert not metrics_enabled()
        assert not metrics_enabled()  # restores False, not True
        set_metrics_enabled(True)

    def test_restores_on_exception(self):
        from repro.obs.metrics import metrics_disabled

        with pytest.raises(RuntimeError):
            with metrics_disabled():
                raise RuntimeError("boom")
        assert metrics_enabled()
