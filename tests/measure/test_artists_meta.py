"""Tests for the artist measurement (Table 2) and the meta-tag scan."""

import pytest

from repro.measure.artists import edit_option_label, measure_artist_sites
from repro.measure.meta_tags import extract_robots_meta, page_has_noai, scan_meta_tags
from repro.net.server import Website, render_page
from repro.net.transport import Network
from repro.web.artists import build_artist_population
from repro.web.population import PopulationConfig, build_web_population
from repro.web.providers import provider_by_name


@pytest.fixture(scope="module")
def study():
    population = build_artist_population(seed=42, n_artists=1182)
    return measure_artist_sites(population)


class TestEditOptionLabels:
    def test_squarespace(self):
        assert edit_option_label(provider_by_name("Squarespace")) == "No [AI,SE]"

    def test_wix_paid(self):
        assert edit_option_label(provider_by_name("Wix (Paid)")) == "Yes"

    def test_adobe(self):
        assert edit_option_label(provider_by_name("Adobe Portfolio")) == "No [SE]"

    def test_artstation(self):
        assert edit_option_label(provider_by_name("Artstation")) == "No"


class TestTable2Measurement:
    def test_all_eight_rows(self, study):
        assert len(study.rows) == 8

    def test_shares_ordered_and_plausible(self, study):
        shares = [row.pct_sites for row in study.rows]
        assert shares == sorted(shares, reverse=True)
        top = study.row("Squarespace")
        assert 16 < top.pct_sites < 26

    def test_squarespace_disallow_rate_near_17pct(self, study):
        row = study.row("Squarespace")
        assert 10 < row.pct_disallow_ai < 25

    def test_carbonmade_disallows_100pct(self, study):
        row = study.row("Carbonmade")
        assert row.n_sites > 0
        assert row.pct_disallow_ai == 100.0

    def test_other_providers_zero(self, study):
        for name in ("Artstation", "Wix (Paid)", "Adobe Portfolio", "Wix (Free)",
                     "Weebly", "Shopify"):
            assert study.row(name).pct_disallow_ai == 0.0, name

    def test_weebly_edge_blocking_probed(self, study):
        row = study.row("Weebly")
        assert "Claudebot" in row.blocks_uas
        assert "Bytespider" in row.blocks_uas
        assert "GPTBot" not in row.blocks_uas

    def test_artstation_and_carbonmade_challenge_automation(self, study):
        assert study.row("Artstation").challenges_automation
        assert study.row("Carbonmade").challenges_automation
        assert not study.row("Shopify").challenges_automation

    def test_unattributed_is_long_tail(self, study):
        attributed = sum(row.n_sites for row in study.rows)
        assert attributed + study.n_unattributed == study.n_artists
        assert 0.25 < study.n_unattributed / study.n_artists < 0.45


class TestMetaTagExtraction:
    def test_extract(self):
        html = '<head><meta name="robots" content="noai, noimageai"></head>'
        assert extract_robots_meta(html) == ["noai", "noimageai"]

    def test_case_insensitive(self):
        html = '<META NAME="robots" CONTENT="NOAI">'
        assert extract_robots_meta(html) == ["noai"]

    def test_no_tag(self):
        assert extract_robots_meta("<p>hello</p>") == []

    def test_page_has_noai(self):
        assert page_has_noai('<meta name="robots" content="noai">')
        assert not page_has_noai('<meta name="robots" content="noindex">')

    def test_rendered_page_roundtrip(self):
        html = render_page("T", meta_robots="noai, noimageai")
        assert page_has_noai(html)


class TestMetaTagScan:
    def test_scan_over_handmade_sites(self):
        net = Network()
        tagged = Website("tagged.com")
        tagged.add_page("/", render_page("T", meta_robots="noai, noimageai"))
        plain = Website("plain.com")
        plain.add_page("/", render_page("P"))
        net.register(tagged)
        net.register(plain)
        scan = scan_meta_tags(net, ["tagged.com", "plain.com", "missing.com"])
        assert scan.n_scanned == 2
        assert scan.noai_hosts == ["tagged.com"]
        assert scan.noimageai_hosts == ["tagged.com"]
        assert scan.unreachable == ["missing.com"]

    def test_scan_over_population(self):
        config = PopulationConfig(
            universe_size=1200, list_size=800, top5k_cut=100, audit_size=600, seed=21
        )
        population = build_web_population(config)
        net = Network()
        population.materialize(net, month=24, sites=population.audit_sites)
        hosts = [s.domain for s in population.audit_sites]
        scan = scan_meta_tags(net, hosts)
        # 17 per 10k scaled to 600 sites: expect ~1, certainly < 8.
        assert scan.n_noai <= 8
        assert scan.n_noimageai <= scan.n_noai
        expected = {s.domain for s in population.audit_sites if s.meta_noai}
        reachable_expected = expected - set(scan.unreachable)
        assert set(scan.noai_hosts) == reachable_expected


class TestToSStances:
    def test_tos_stances_surface_in_rows(self, study):
        assert study.row("Artstation").tos_ai_stance == "no-ai-training"
        assert study.row("Adobe Portfolio").tos_ai_stance == "no-ai-training"
        assert study.row("Wix (Paid)").tos_ai_stance == "service-improvement-training"
        assert study.row("Carbonmade").tos_ai_stance == "no-crawl-clause"
        assert study.row("Shopify").tos_ai_stance == "silent"
