"""Cross-validation of snapshot data (Section 3.1's validation step).

The paper validated Common Crawl's robots.txt records two ways: against
the temporally closest Internet Archive capture (no disagreements) and
against its own fresh crawl of the top sites (<1% disagreement,
attributed to sites changing robots.txt between the two crawls).

This module reproduces that methodology: a *validation crawler* crawls
the same sites as a snapshot, but its visit may land after the site's
next robots.txt change (the timing skew the paper describes -- "the day
we performed our crawl could be up to multiple weeks later").  The
report separates agreement, disagreement explained by an intervening
change, and unexplained disagreement (which would indicate a data bug
-- the reproduction asserts there is none).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..crawlers.commoncrawl import Snapshot, SnapshotCrawler
from ..net.transport import Network
from ..util import seeded_rng
from ..web.population import WebPopulation

__all__ = ["ValidationReport", "cross_validate_snapshot"]


@dataclass
class ValidationReport:
    """Outcome of one cross-validation pass.

    Attributes:
        n_compared: Sites with a retrievable robots.txt in both crawls.
        n_agree: Identical content in both.
        n_timing_disagreements: Content differs, and the site's
            schedule shows a robots.txt change between the two crawl
            times (the benign explanation).
        unexplained: Domains whose contents differ with *no* intervening
            change -- should always be empty.
        lagged_domains: Domains whose validation crawl landed late.
    """

    n_compared: int = 0
    n_agree: int = 0
    n_timing_disagreements: int = 0
    unexplained: List[str] = field(default_factory=list)
    lagged_domains: List[str] = field(default_factory=list)

    @property
    def agreement_rate(self) -> float:
        """Fraction of compared sites with identical content."""
        if not self.n_compared:
            return 1.0
        return self.n_agree / self.n_compared

    @property
    def disagreement_rate(self) -> float:
        return 1.0 - self.agreement_rate


def cross_validate_snapshot(
    population: WebPopulation,
    snapshot: Snapshot,
    sample_size: Optional[int] = None,
    p_lagged: float = 0.15,
    lag_months: int = 1,
    seed: int = 42,
) -> ValidationReport:
    """Re-crawl a snapshot's sites and compare robots.txt contents.

    Args:
        population: The world the snapshot was taken from.
        snapshot: The snapshot under validation.
        sample_size: Sites to validate (None = every site with a
            retrievable record, like the paper's top-10k own-crawl).
        p_lagged: Probability a site's validation visit lands
            *lag_months* after the snapshot month (the "up to multiple
            weeks later" skew).
        seed: Sampling/lag randomness seed.
    """
    rng = seeded_rng(seed, "validation", snapshot.spec.snapshot_id)
    month = snapshot.spec.month_index

    candidates = [
        domain
        for domain, record in snapshot.records.items()
        if record.ok
    ]
    if sample_size is not None and sample_size < len(candidates):
        candidates = rng.sample(candidates, sample_size)

    # Build one network per crawl time, materialized lazily.
    networks = {}

    def network_for(when: int) -> Network:
        if when not in networks:
            network = Network()
            sites = [population.by_domain[d] for d in candidates if d in population.by_domain]
            population.materialize(network, month=when, sites=sites)
            networks[when] = network
        return networks[when]

    report = ValidationReport()
    for domain in candidates:
        site = population.by_domain.get(domain)
        if site is None:
            continue
        lagged = rng.random() < p_lagged
        when = month + lag_months if lagged else month
        if lagged:
            report.lagged_domains.append(domain)
        crawler = SnapshotCrawler(network_for(when))
        fresh = crawler.crawl_site(domain)
        if not fresh.ok:
            continue
        original = snapshot.records[domain].robots_txt
        report.n_compared += 1
        if fresh.robots_txt == original:
            report.n_agree += 1
            continue
        changed_between = any(
            month < change <= when for change in site.change_months()
        ) or any(month < m <= when for m in site.missing_months)
        if changed_between:
            report.n_timing_disagreements += 1
        else:
            report.unexplained.append(domain)
    return report
