"""Tests for the dependency-aware experiment orchestrator.

The load-bearing property is scheduling-independence: ``run_all`` must
produce bit-identical results for any worker count and any execution
mode, with results always assembled in registry order.
"""

import json
import multiprocessing

import pytest

from repro.cli import EXPERIMENT_IDS
from repro.obs.metrics import shared_registry
from repro.obs.series import shared_series
from repro.obs.trace import shared_tracer, tracing_enabled
from repro.report.orchestrator import (
    EXPERIMENT_REGISTRY,
    experiment_keys,
    run_all,
    run_one,
)
from repro.web.population import PopulationConfig
from repro.web.worldstore import WorldStore

SMALL = PopulationConfig(
    universe_size=500, list_size=300, top5k_cut=40, audit_size=90, seed=7
)

#: A battery slice covering all three world dependencies: bundle
#: (figure2, taxonomy), population (sec62, sec22), none (table1).
SLICE = ["table1", "figure2", "sec62", "sec22", "taxonomy"]


@pytest.fixture(scope="module")
def store():
    return WorldStore()


class TestRegistry:
    def test_registry_keys_match_the_cli(self):
        assert sorted(experiment_keys()) == sorted(EXPERIMENT_IDS)

    def test_keys_and_result_ids_are_unique(self):
        keys = [spec.key for spec in EXPERIMENT_REGISTRY]
        ids = [spec.result_id for spec in EXPERIMENT_REGISTRY]
        assert len(set(keys)) == len(keys)
        assert len(set(ids)) == len(ids)

    def test_every_spec_declares_a_known_world(self):
        assert {spec.world for spec in EXPERIMENT_REGISTRY} == {
            "bundle", "population", "none"
        }


class TestSchedulingIndependence:
    def test_workers_do_not_change_results(self, store):
        serial = run_all(SMALL, workers=1, experiments=SLICE, store=store)
        threaded = run_all(
            SMALL, workers=4, experiments=SLICE, store=store, mode="thread"
        )
        assert serial.mode == "serial"
        assert threaded.mode == "thread"
        assert [r.experiment_id for r in serial.results] == [
            r.experiment_id for r in threaded.results
        ]
        for a, b in zip(serial.results, threaded.results):
            assert a.text == b.text
            assert a.metrics == b.metrics

    def test_results_come_back_in_registry_order(self, store):
        shuffled = ["taxonomy", "table1", "sec62", "figure2"]
        report = run_all(SMALL, workers=1, experiments=shuffled, store=store)
        expected = [k for k in experiment_keys() if k in shuffled]
        assert list(report.timings_seconds) == expected

    def test_population_runners_repeat_identically(self, store):
        # Each invocation gets a fresh copy-on-write view, so a prior
        # run's handler registrations cannot perturb the next.
        first = run_all(SMALL, workers=1, experiments=["sec62"], store=store)
        second = run_all(SMALL, workers=1, experiments=["sec62"], store=store)
        assert first.results[0].text == second.results[0].text

    def test_unknown_key_raises(self, store):
        with pytest.raises(KeyError):
            run_all(SMALL, experiments=["nope"], store=store)


class TestReport:
    def test_report_json_shape(self, store):
        report = run_all(SMALL, workers=2, experiments=["table1", "figure2"],
                         store=store, mode="thread")
        payload = report.to_json()
        assert payload["schema_version"] == 1
        assert payload["mode"] == "thread"
        assert payload["workers"] == 2
        assert payload["world_seconds"] >= 0
        assert payload["total_seconds"] > 0
        keys = [entry["key"] for entry in payload["experiments"]]
        assert keys == ["table1", "figure2"]
        for entry in payload["experiments"]:
            assert entry["seconds"] >= 0
            assert entry["world"] in {"bundle", "population", "none"}

    def test_result_for_lookup(self, store):
        report = run_all(SMALL, workers=1, experiments=["taxonomy"], store=store)
        assert report.result_for("taxonomy").experiment_id == "change_taxonomy"
        with pytest.raises(KeyError):
            report.result_for("figure3")


class TestTelemetry:
    #: Covers every counter source: table1 (crawler fleet, testbed
    #: network, access logs), figure2 (bundle/world store), sec62
    #: (population view).
    TELEMETRY_SLICE = ["table1", "figure2", "sec62"]

    def _run_and_snapshot(self, store, mode, workers, telemetry_dir=None):
        shared_registry().reset()
        shared_series().reset()
        shared_tracer().reset()
        report = run_all(
            SMALL,
            workers=workers,
            experiments=self.TELEMETRY_SLICE,
            store=store,
            mode=mode,
            telemetry_dir=telemetry_dir,
        )
        snap = shared_registry().snapshot()
        histograms = {
            key: (payload["counts"], payload["count"], payload["sum"])
            for key, payload in snap["histograms"].items()
        }
        return report, snap["counters"], histograms

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_counter_totals_identical_across_modes(self, store):
        # Pre-warm the world so each mode performs identical measured
        # work, then demand exact counter/histogram identity for
        # serial, thread-pool, and fork-pool execution.
        run_all(SMALL, workers=1, experiments=["figure2", "sec62"], store=store)
        serial_report, serial_counters, serial_hists = self._run_and_snapshot(
            store, "auto", 1
        )
        _, thread_counters, thread_hists = self._run_and_snapshot(store, "thread", 3)
        _, process_counters, process_hists = self._run_and_snapshot(
            store, "process", 3
        )
        assert serial_report.mode == "serial"
        assert serial_counters
        assert thread_counters == serial_counters
        assert process_counters == serial_counters
        assert thread_hists == serial_hists
        assert process_hists == serial_hists

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_series_json_byte_identical_across_modes(self, store, tmp_path):
        # The operator-facing SERIES.json must be byte-for-byte the
        # same artifact whatever the scheduling mode or worker count:
        # series amounts are integer event counts, so per-month sums
        # are exact under any merge order.
        run_all(SMALL, workers=1, experiments=["figure2", "sec62"], store=store)
        exports = {}
        for label, mode, workers in [
            ("serial", "auto", 1),
            ("thread2", "thread", 2),
            ("thread3", "thread", 3),
            ("process3", "process", 3),
        ]:
            directory = tmp_path / label
            self._run_and_snapshot(store, mode, workers, telemetry_dir=directory)
            exports[label] = (directory / "SERIES.json").read_bytes()
        assert exports["serial"]
        baseline = exports.pop("serial")
        assert json.loads(baseline)["series"]  # non-trivial content
        for label, payload in exports.items():
            assert payload == baseline, f"SERIES.json diverged in {label} mode"

    def test_run_produces_span_tree(self, store):
        report = run_all(
            SMALL, workers=1, experiments=["figure2", "table1"], store=store
        )
        names = [record["name"] for record in report.spans]
        assert "run_all" in names
        assert "world_build" in names
        assert "experiment:figure2" in names
        assert "experiment:table1" in names
        # Timings are the spans: the per-experiment seconds equal the
        # matching span durations exactly.
        by_name = {record["name"]: record for record in report.spans}
        for key in ("figure2", "table1"):
            assert report.timings_seconds[key] == pytest.approx(
                by_name[f"experiment:{key}"]["duration_seconds"], abs=1e-6
            )
        assert report.world_seconds == pytest.approx(
            by_name["world_build"]["duration_seconds"], abs=1e-6
        )

    def test_tracing_flag_restored_after_run(self, store):
        was_enabled = tracing_enabled()
        run_all(SMALL, workers=1, experiments=["sec62"], store=store)
        assert tracing_enabled() == was_enabled

    def test_telemetry_dir_writes_artifacts(self, store, tmp_path):
        report = run_all(
            SMALL,
            workers=1,
            experiments=["figure2"],
            store=store,
            telemetry_dir=tmp_path,
        )
        metrics_path = tmp_path / "METRICS.json"
        series_path = tmp_path / "SERIES.json"
        trace_path = tmp_path / "TRACE.jsonl"
        assert metrics_path.exists() and trace_path.exists()
        assert series_path.exists()
        series_payload = json.loads(series_path.read_text())
        assert series_payload["schema_version"] == 1
        payload = json.loads(metrics_path.read_text())
        assert payload["schema_version"] == 1
        assert any(key.startswith("worldstore.") for key in payload["counters"])
        # run_all publishes the shared compile cache as gauges on export.
        assert "policy_cache.entries" in payload["gauges"]
        records = [
            json.loads(line) for line in trace_path.read_text().splitlines()
        ]
        assert [r["name"] for r in records] == [r["name"] for r in report.spans]

    def test_to_timings_is_the_to_json_payload(self, store):
        report = run_all(SMALL, workers=1, experiments=["table1"], store=store)
        assert report.to_timings() == report.to_json()


class TestRunOne:
    def test_run_one_matches_batch(self, store):
        single = run_one("figure2", config=SMALL, store=store)
        batch = run_all(SMALL, workers=1, experiments=["figure2"], store=store)
        assert single.text == batch.results[0].text

    def test_standalone_experiment_needs_no_world(self):
        # A fresh store stays empty: table1 must not trigger a build.
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        store = WorldStore(registry=registry)
        run_one("table1", config=SMALL, store=store)
        totals = registry.counter_totals("worldstore.population")
        assert sum(v for k, v in totals.items() if "event=miss" in k) == 0
