"""Tests for the columnar per-shard snapshot archive.

The archive's contract: write -> reopen -> aggregate is byte-identical
to the in-memory crawl, damage surfaces as a one-line
:class:`~repro.web.archive.ArchiveError` (never a traceback from the
struct/mmap plumbing), and per-body facts stored next to the body table
are interchangeable with the incremental store's ``bodies.json``.
"""

import json

import pytest

from repro.crawlers.commoncrawl import ErrorBudget, SiteRecord, SnapshotSpec
from repro.web.archive import (
    ArchiveBodyStore,
    ArchiveError,
    ArchiveSet,
    ShardReader,
    ShardWriter,
    merge_error_budgets,
    shard_dir_name,
)

SPECS = (
    SnapshotSpec("2022-05", "Sep/Oct 2022", 0),
    SnapshotSpec("2023-06", "Mar/Apr 2023", 6),
)

ROBOTS_A = "User-agent: GPTBot\nDisallow: /\n"
ROBOTS_B = "User-agent: *\nAllow: /\n"


def _write_shards(root, n_shards=2):
    """Two shards x two specs with shared bodies, errors, and a 404."""
    per_shard = [
        ["a.example", "www.a.example", "b.example"],
        ["c.example", "d.example"],
    ][:n_shards]
    for shard_id, domains in enumerate(per_shard):
        writer = ShardWriter(root, shard_id, n_shards, config_digest="cfg")
        writer.set_sites(
            domains,
            list(range(shard_id * 10, shard_id * 10 + len(domains))),
            ["top5k"] + ["other"] * (len(domains) - 1),
        )
        for spec_index, spec in enumerate(SPECS):
            records = {}
            for index, domain in enumerate(domains):
                if index == 0 and spec_index == 1:
                    records[domain] = SiteRecord(domain, 0, None, "conn reset")
                elif index == 1:
                    records[domain] = SiteRecord(domain, 404)
                else:
                    body = ROBOTS_A if shard_id == 0 else ROBOTS_B
                    records[domain] = SiteRecord(domain, 200, body)
            writer.add_snapshot(
                spec,
                records,
                error_budget=ErrorBudget(n_sites=len(domains)),
            )
        writer.commit()
    return root


@pytest.fixture()
def archive_root(tmp_path):
    return _write_shards(tmp_path / "arch")


class TestRoundTrip:
    def test_records_survive_reopen(self, archive_root):
        with ArchiveSet.open(archive_root) as archive:
            snapshots = archive.snapshots()
        assert [s.spec for s in snapshots] == list(SPECS)
        first = snapshots[0].records
        assert first["a.example"] == SiteRecord("a.example", 200, ROBOTS_A)
        assert first["www.a.example"] == SiteRecord("www.a.example", 404)
        assert first["c.example"] == SiteRecord("c.example", 200, ROBOTS_B)
        errored = snapshots[1].records["a.example"]
        assert errored.status == 0 and errored.error == "conn reset"

    def test_shared_bodies_stored_once(self, archive_root):
        reader = ShardReader(archive_root / shard_dir_name(0))
        refs = {
            reader.body_refs(i)[reader.domains.index("a.example")]
            for i in range(len(SPECS))
        }
        # Snapshot 0's 200 body is interned; snapshot 1 errored (ref -1).
        assert reader.n_bodies == 1
        assert refs == {0, -1}
        reader.close()

    def test_budgets_merge_across_shards(self, archive_root):
        with ArchiveSet.open(archive_root) as archive:
            budget = archive.snapshots()[0].error_budget
        assert budget == ErrorBudget(n_sites=5)
        assert merge_error_budgets([None, None]) is None
        assert merge_error_budgets(
            [ErrorBudget(retry_passes=1), ErrorBudget(retry_passes=2)]
        ).retry_passes == 2

    def test_stable_domains_in_global_rank_order(self, archive_root):
        with ArchiveSet.open(archive_root) as archive:
            domains = archive.stable_domains()
        assert domains == [
            "a.example", "www.a.example", "b.example", "c.example", "d.example"
        ]


class TestDamage:
    def test_missing_root_is_one_line(self, tmp_path):
        with pytest.raises(ArchiveError, match="no shard archives under"):
            ArchiveSet.open(tmp_path / "nowhere")

    def test_truncated_column_is_one_line(self, archive_root):
        records = archive_root / shard_dir_name(0) / "records.bin"
        records.write_bytes(records.read_bytes()[:-4])
        with pytest.raises(ArchiveError, match="truncated archive column"):
            ArchiveSet.open(archive_root)

    def test_corrupt_manifest_is_one_line(self, archive_root):
        manifest = archive_root / shard_dir_name(1) / "manifest.json"
        manifest.write_text("{not json", encoding="utf-8")
        with pytest.raises(ArchiveError, match="corrupt shard manifest"):
            ArchiveSet.open(archive_root)

    def test_missing_shard_is_one_line(self, archive_root):
        manifest = archive_root / shard_dir_name(1) / "manifest.json"
        manifest.unlink()
        with pytest.raises(ArchiveError, match="not a shard archive"):
            ArchiveSet.open(archive_root)

    def test_stale_schema_is_one_line(self, archive_root):
        manifest = archive_root / shard_dir_name(0) / "manifest.json"
        payload = json.loads(manifest.read_text())
        payload["schema_fingerprint"] = "0" * 64
        manifest.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ArchiveError, match="stale archive schema"):
            ArchiveSet.open(archive_root)

    def test_mixed_worlds_refused(self, tmp_path):
        root = tmp_path / "arch"
        _write_shards(root)
        manifest = root / shard_dir_name(1) / "manifest.json"
        payload = json.loads(manifest.read_text())
        payload["config_digest"] = "other-world"
        manifest.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ArchiveError, match="different world"):
            ArchiveSet.open(root)

    def test_interrupted_write_never_commits(self, tmp_path):
        # No manifest -> the shard directory is not a valid archive,
        # regardless of which data blobs made it to disk.
        root = tmp_path / "arch"
        writer = ShardWriter(root, 0, 1)
        writer.set_sites(["a.example"], [0], ["other"])
        writer.add_snapshot(SPECS[0], {"a.example": SiteRecord("a.example", 404)})
        # commit() never called
        with pytest.raises(ArchiveError):
            ArchiveSet.open(root)


class TestBodyStore:
    def test_classification_round_trip(self, tmp_path):
        store = ArchiveBodyStore(tmp_path)
        digest = "d" * 64
        assert store.get_classification(digest, "GPTBot", True) is None
        from repro.core.classify import classify

        verdict = classify(ROBOTS_A, "GPTBot", require_explicit=True)
        store.put_classification(digest, "GPTBot", True, verdict)
        store.flush()
        again = ArchiveBodyStore(tmp_path)
        got = again.get_classification(digest, "GPTBot", True)
        assert got.level == verdict.level
        assert got.explicit == verdict.explicit
        assert got.explicit_allow == verdict.explicit_allow

    def test_flag_round_trip(self, tmp_path):
        store = ArchiveBodyStore(tmp_path)
        digest = "e" * 64
        assert store.get_flag("full_any", digest, "k") is None
        store.put_flag("full_any", digest, "k", True)
        store.flush()
        assert ArchiveBodyStore(tmp_path).get_flag("full_any", digest, "k") is True

    def test_ingest_from_incremental_store(self, tmp_path):
        from repro.core.classify import classify
        from repro.measure.incremental import IncrementalStore

        inc = IncrementalStore(tmp_path / "cache")
        digest = "f" * 64
        inc.put_classification(
            digest, "GPTBot", True, classify(ROBOTS_A, "GPTBot", require_explicit=True)
        )
        inc.flush()
        store = ArchiveBodyStore(tmp_path / "arch")
        adopted = store.ingest_incremental(tmp_path / "cache")
        assert adopted >= 1
        assert store.get_classification(digest, "GPTBot", True) is not None
        # Re-ingest adopts nothing new.
        assert store.ingest_incremental(tmp_path / "cache") == 0

    def test_satisfies_policy_cache_store_interface(self, tmp_path):
        from repro.measure.cache import PolicyCache

        cache = PolicyCache()
        cache.attach_store(ArchiveBodyStore(tmp_path))
        assert cache.fully_disallows_any(ROBOTS_A, ["GPTBot"], require_explicit=True)
        # A fresh cache over the same backend reuses the persisted fact.
        fresh = PolicyCache()
        fresh.attach_store(ArchiveBodyStore(tmp_path))
        assert fresh.fully_disallows_any(ROBOTS_A, ["GPTBot"], require_explicit=True)


class TestProbes:
    def test_reader_probe_reports_residency(self, archive_root):
        reader = ShardReader(archive_root / shard_dir_name(0))
        probe = reader.probe()
        assert probe["data_bytes"] > 0
        assert probe["mapped_bytes"] > 0
        assert probe["body_cache_entries"] == 0  # nothing decoded yet
        reader.body_text(0)
        probe = reader.probe()
        assert probe["body_cache_entries"] == 1
        assert probe["body_cache_chars"] == len(ROBOTS_A)
        reader.close()
        assert reader.probe()["mapped_bytes"] == 0

    def test_publish_probes_gauges_per_shard(self, archive_root):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        with ArchiveSet.open(archive_root) as archive:
            archive.publish_probes(registry, stratum="top-1k")
        from repro.obs.metrics import render_key

        gauges = registry.snapshot()["gauges"]
        rendered = {render_key(key): value for key, value in gauges.items()}
        assert rendered["archive.open_shards{stratum=top-1k}"] == 2
        for shard in ("0", "1"):
            key = f"archive.data_bytes{{shard={shard},stratum=top-1k}}"
            assert rendered[key] > 0
        assert any(
            key.startswith("archive.mapped_bytes{") and value > 0
            for key, value in rendered.items()
        )
