"""The site-operator behavior model: how robots.txt files evolve.

This is the generative counterpart of Section 3's findings.  Given a
site's popularity tier and a seeded RNG, the model produces the site's
robots.txt *schedule* -- the list of (month, text) edits an operator
made over October 2022-October 2024 -- by composing the behaviors the
paper documents:

* a pre-existing baseline robots.txt (SEO-oriented; ~2% wildcard
  disallow-all; ~1% with author mistakes),
* early CCBot blocking by a small population that predates the window,
* an adoption surge after the GPTBot/ChatGPT-User announcement, more
  pronounced in the Stable Top 5K (Section 3.2),
* per-agent blocking propensities that reproduce the Figure 3 ordering
  (GPTBot > CCBot > ChatGPT-User > ...),
* maintainers who extend their lists when new agents are announced,
* an EU-AI-Act adoption/extension uptick (August 2024),
* publisher data-deal removals and explicit allows (Sections 3.3-3.4),
  applied by the population builder via :meth:`apply_deal_removal` and
  :meth:`apply_explicit_allow`.

Everything is deterministic per (seed, domain).
"""

from __future__ import annotations

import random

from ..util import seeded_rng
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.serialize import (
    RobotsBuilder,
    add_allow_group,
    add_disallow_group,
    remove_agent_rules,
)
from ..obs.metrics import metrics_enabled
from ..obs.series import shared_series
from .events import AGENT_ANNOUNCED, EU_AI_ACT, GPTBOT_ANNOUNCEMENT
from .site import SimSite

__all__ = ["EvolutionParams", "OperatorModel", "CATEGORY_ADOPTION_WEIGHTS"]

#: Per-agent probability that an adopter includes the agent in its
#: blocklist (given the agent is announced by then).  The ordering
#: reproduces Figure 3: GPTBot and CCBot most-blocked, then
#: ChatGPT-User, anthropic-ai, Google-Extended, Bytespider, ...
AGENT_BLOCK_WEIGHTS: Dict[str, float] = {
    "GPTBot": 0.90,
    "CCBot": 0.62,
    "ChatGPT-User": 0.50,
    "anthropic-ai": 0.36,
    "Google-Extended": 0.34,
    "Bytespider": 0.28,
    "ClaudeBot": 0.26,
    "Claude-Web": 0.24,
    "cohere-ai": 0.22,
    "PerplexityBot": 0.20,
    "omgili": 0.16,
    "FacebookBot": 0.16,
    "Meta-ExternalAgent": 0.14,
    "Diffbot": 0.12,
    "Applebot-Extended": 0.12,
    "Amazonbot": 0.10,
    "OAI-SearchBot": 0.10,
    "AI2Bot": 0.07,
    "YouBot": 0.07,
    "Timpibot": 0.05,
    "Meta-ExternalFetcher": 0.05,
    "Webzio-Extended": 0.04,
    "Kangaroo Bot": 0.03,
}

#: Paths used by partial (non-blanket) AI restrictions.
_PARTIAL_PATHS = (["/images/", "/photos/"], ["/articles/"], ["/archive/", "/gallery/"])

#: Category multipliers on adoption propensity.  News sites react most
#: (Fletcher [32] found most top news sites block AI crawlers);
#: misinformation sites *court* AI crawlers (Section 3.4).  The weights
#: average to ~1.0 over the category mix, preserving population-level
#: calibration.
CATEGORY_ADOPTION_WEIGHTS: Dict[str, float] = {
    "news": 1.75,
    "reference": 1.00,
    "corporate": 0.90,
    "blog": 0.78,
    "shopping": 0.80,
    "misinfo": 0.35,
    "general": 1.00,
}


@dataclass
class EvolutionParams:
    """Tunable probabilities of the operator model.

    The defaults are calibrated so the population-level statistics land
    in the paper's reported bands (Figure 2: 12-14% for the Stable Top
    5K and 8-10% for the rest, by mid-2024).
    """

    #: P(site always serves a robots.txt).
    p_has_robots: float = 0.78
    #: P(robots.txt exists but is missing in some snapshots), making the
    #: site fail the every-snapshot filter.
    p_flaky_robots: float = 0.05
    #: P(baseline file uses a wildcard disallow-all), Section 3.1's <2%.
    p_wildcard_disallow_all: float = 0.018
    #: P(baseline file contains an author mistake), Section 8.1's ~1%.
    p_mistake: float = 0.01
    #: P(adopting AI restrictions post-announcement), by tier.
    p_adopt_top5k: float = 0.145
    p_adopt_other: float = 0.075
    #: P(site blocked CCBot before the study window), by tier.
    p_early_ccbot_top5k: float = 0.030
    p_early_ccbot_other: float = 0.018
    #: Geometric lag parameter for adoption after the trigger month.
    adoption_lag_p: float = 0.45
    #: Fraction of adopters using a blanket Disallow: / (rest partial).
    p_full_block: float = 0.85
    #: P(adopter keeps maintaining the list as new agents appear).
    p_maintainer: float = 0.55
    #: P(maintainer adds a newly announced agent, scaled by the agent's
    #: block weight).
    p_add_new_agent: float = 0.8
    #: Fresh adoption probability in the EU-AI-Act wave (non-adopters).
    p_eu_adopt_top5k: float = 0.020
    p_eu_adopt_other: float = 0.012
    #: P(existing adopter extends its list in the EU-AI-Act wave).
    p_eu_extend: float = 0.30
    #: P(adopter uses a managed robots.txt service that auto-syncs the
    #: full AI-agent list on every announcement), Section 2.2.
    p_managed_service: float = 0.10


class OperatorModel:
    """Generates robots.txt schedules for sites.

    >>> model = OperatorModel(seed=1)
    >>> site = SimSite(domain="example.com", rank=10, tier="top5k")
    >>> model.populate(site)
    >>> site.robots_at(24) is not None or True
    True
    """

    def __init__(self, params: Optional[EvolutionParams] = None, seed: int = 42):
        self.params = params or EvolutionParams()
        self.seed = seed

    def _rng(self, site: SimSite, purpose: str = "") -> random.Random:
        return seeded_rng(self.seed, site.domain, purpose)

    # -- baseline ------------------------------------------------------------

    def _baseline_text(self, site: SimSite, rng: random.Random) -> str:
        params = self.params
        if rng.random() < params.p_wildcard_disallow_all:
            return RobotsBuilder().group("*").disallow("/").build()
        builder = RobotsBuilder()
        builder.group("*")
        paths = rng.sample(
            ["/admin/", "/cgi-bin/", "/cart/", "/login", "/tmp/", "/search",
             "/private/", "/wp-admin/", "/checkout/", "/api/internal/"],
            k=rng.randint(1, 4),
        )
        builder.disallow(*sorted(paths))
        if rng.random() < 0.25:
            builder.group(rng.choice(["AhrefsBot", "SemrushBot", "MJ12bot"]))
            builder.disallow("/")
        if rng.random() < 0.5:
            builder.sitemap(f"https://{site.domain}/sitemap.xml")
        text = builder.build()
        if rng.random() < params.p_mistake:
            text += rng.choice(
                [
                    "User-agent: *\nDisallow: secret/\n",
                    "Noindex: /old/\nUser-agent: *\nDisallow: /x/\n",
                    "Disallow /broken\n",
                ]
            )
        return text

    # -- adoption -------------------------------------------------------------

    def _geometric_lag(self, rng: random.Random, p: float, cap: int = 12) -> int:
        lag = 0
        while rng.random() > p and lag < cap:
            lag += 1
        return lag

    def _pick_agents(
        self, rng: random.Random, month: int, scale: float = 1.0
    ) -> List[str]:
        """Agents an adopter blocks at *month*, respecting announcements."""
        picked = []
        for token, weight in AGENT_BLOCK_WEIGHTS.items():
            if AGENT_ANNOUNCED.get(token, 99) > month:
                continue
            if rng.random() < weight * scale:
                picked.append(token)
        if not picked:
            picked.append("GPTBot" if AGENT_ANNOUNCED["GPTBot"] <= month else "CCBot")
        return picked

    def populate(self, site: SimSite) -> None:
        """Fill in *site*'s robots schedule and missing months."""
        self._populate(site)
        self._record_schedule(site)

    def _record_schedule(self, site: SimSite) -> None:
        """Feed the site's in-window robots changes to the series plane.

        ``web.robots_changes{tier,category}`` counts, per simulated
        month, how many sites changed their robots.txt that month --
        the evolution-model side of the Figure 2 adoption story.
        """
        if not metrics_enabled():
            return
        registry = shared_series()
        for month, _text in site.robots_schedule:
            if month >= 0:
                registry.add(
                    "web.robots_changes",
                    month,
                    tier=site.tier,
                    category=site.category,
                )

    def _populate(self, site: SimSite) -> None:
        params = self.params
        rng = self._rng(site)

        # Baseline presence.
        has_roll = rng.random()
        if has_roll < params.p_has_robots:
            pass  # always present
        elif has_roll < params.p_has_robots + params.p_flaky_robots:
            n_missing = rng.randint(1, 3)
            site.missing_months = {rng.randint(0, 24) for _ in range(n_missing)}
        else:
            # Never serves robots.txt.
            site.set_robots(-1, None)
            return

        text = self._baseline_text(site, rng)

        # Early CCBot blockers predate the window.
        top = site.tier == "top5k"
        p_early = params.p_early_ccbot_top5k if top else params.p_early_ccbot_other
        if rng.random() < p_early:
            agents = ["CCBot"]
            if rng.random() < 0.3:
                agents.append("omgili")
            text = add_disallow_group(text, agents)
        site.set_robots(-1, text)

        # Post-announcement adoption, scaled by editorial category.
        p_adopt = params.p_adopt_top5k if top else params.p_adopt_other
        p_adopt *= CATEGORY_ADOPTION_WEIGHTS.get(site.category, 1.0)
        adopted_month: Optional[int] = None
        is_maintainer = rng.random() < params.p_maintainer
        full_block = rng.random() < params.p_full_block
        partial_paths = list(rng.choice(_PARTIAL_PATHS))

        uses_manager = rng.random() < params.p_managed_service

        if rng.random() < p_adopt:
            adopted_month = GPTBOT_ANNOUNCEMENT + self._geometric_lag(
                rng, params.adoption_lag_p
            )
            if adopted_month > 24:
                adopted_month = None
            elif uses_manager:
                # Managed robots.txt (Dark Visitors / YoastSEO style,
                # Section 2.2): the service blocks every announced AI
                # agent and auto-syncs on each later announcement.
                from .managed import ManagedRobotsService

                service = ManagedRobotsService()
                for month, managed in service.schedule(text, adopted_month):
                    site.set_robots(month, managed)
                return
            else:
                agents = self._pick_agents(rng, adopted_month)
                paths = ["/"] if full_block else partial_paths
                text = add_disallow_group(text, agents, paths=paths)
                site.set_robots(adopted_month, text)

        # Maintainers add newly announced agents as they appear.
        if adopted_month is not None and is_maintainer:
            blocked = set(a.lower() for a in self._agents_blocked(site))
            for token, announce in sorted(AGENT_ANNOUNCED.items(), key=lambda kv: kv[1]):
                if announce <= adopted_month or announce > 24 or announce < 0:
                    continue
                weight = AGENT_BLOCK_WEIGHTS.get(token, 0.05)
                if token.lower() in blocked:
                    continue
                if rng.random() < params.p_add_new_agent * weight:
                    month = min(24, announce + self._geometric_lag(rng, 0.6, cap=3))
                    paths = ["/"] if full_block else partial_paths
                    text = add_disallow_group(text, [token], paths=paths)
                    site.set_robots(month, text)
                    blocked.add(token.lower())

        # EU AI Act wave: fresh adopters and list extensions.
        if adopted_month is None:
            p_eu = params.p_eu_adopt_top5k if top else params.p_eu_adopt_other
            if rng.random() < p_eu:
                month = min(24, EU_AI_ACT + self._geometric_lag(rng, 0.7, cap=2))
                agents = self._pick_agents(rng, month)
                paths = ["/"] if full_block else partial_paths
                text = add_disallow_group(text, agents, paths=paths)
                site.set_robots(month, text)
        elif rng.random() < params.p_eu_extend:
            month = min(24, EU_AI_ACT + self._geometric_lag(rng, 0.7, cap=2))
            extras = [
                token
                for token in self._pick_agents(rng, month, scale=0.5)
                if token.lower() not in {a.lower() for a in self._agents_blocked(site)}
            ][:3]
            if extras:
                paths = ["/"] if full_block else partial_paths
                text = add_disallow_group(text, extras, paths=paths)
                site.set_robots(month, text)

    def _agents_blocked(self, site: SimSite) -> List[str]:
        from ..core.serialize import agents_mentioned

        text = site.robots_at(24)
        return agents_mentioned(text) if text else []

    # -- deal edits (driven by the population builder) -----------------------------

    def apply_deal_removal(
        self,
        site: SimSite,
        month: int,
        agents: Sequence[str] = ("GPTBot", "ChatGPT-User"),
    ) -> None:
        """Remove *agents*' rules at *month* (a data-licensing deal).

        Guarantees the site had adopted restrictions on the agents
        beforehand (forcing adoption two months prior when necessary),
        so the removal is observable.
        """
        prior_month = max(GPTBOT_ANNOUNCEMENT, month - 4)
        prior = site.robots_at(month - 1)
        if prior is None:
            prior = self._baseline_text(site, self._rng(site, "deal"))
        from ..core.serialize import agents_mentioned

        present = set(agents_mentioned(prior))
        missing = [a for a in agents if a.lower() not in present]
        if missing:
            prior = add_disallow_group(prior, missing)
            site.set_robots(prior_month, prior)
        # Surgical removal: the rest of the file stays unchanged.
        site.set_robots(month, remove_agent_rules(prior, agents))

    def apply_explicit_allow(
        self, site: SimSite, month: int, agents: Sequence[str] = ("GPTBot",)
    ) -> None:
        """Add an explicit ``Allow: /`` group for *agents* at *month*.

        Any existing restrictions on the agents are removed first so the
        file expresses the Section 3.4 reverse intent unambiguously.
        """
        prior = site.robots_at(month)
        if prior is None:
            prior = ""
        cleaned = remove_agent_rules(prior, agents)
        site.set_robots(month, add_allow_group(cleaned, list(agents)))
