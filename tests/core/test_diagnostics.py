"""Tests for repro.core.diagnostics."""

from repro.core.diagnostics import Severity, has_mistakes, lint


def codes(source):
    return [f.code for f in lint(source)]


class TestLint:
    def test_clean_file_has_no_findings(self):
        assert lint("User-agent: *\nDisallow: /private/\nAllow: /") == []

    def test_path_missing_slash(self):
        findings = lint("User-agent: *\nDisallow: secret/")
        assert [f.code for f in findings] == ["path-missing-slash"]
        assert findings[0].severity is Severity.WARNING
        assert findings[0].line_number == 2

    def test_wildcard_start_not_flagged(self):
        assert lint("User-agent: *\nDisallow: *.pdf$") == []

    def test_unknown_directive(self):
        assert codes("User-agent: *\nFoobar: baz\nDisallow: /") == [
            "unknown-directive"
        ]

    def test_tolerated_extensions_not_flagged_as_unknown(self):
        text = "User-agent: *\nDisallow: /\nHost: example.com\nClean-param: ref"
        assert "unknown-directive" not in codes(text)

    def test_missing_colon(self):
        findings = lint("User-agent *\n")
        assert findings[0].code == "missing-colon"
        assert findings[0].severity is Severity.ERROR

    def test_rule_before_group(self):
        assert "rule-before-group" in codes("Disallow: /x\nUser-agent: *\nAllow: /")

    def test_empty_user_agent(self):
        assert "empty-user-agent" in codes("User-agent:\nDisallow: /")

    def test_crawl_delay_noted(self):
        findings = lint("User-agent: *\nCrawl-delay: 5\nDisallow: /x/")
        assert [f.code for f in findings] == ["crawl-delay"]
        assert findings[0].severity is Severity.NOTE

    def test_empty_file_noted(self):
        findings = lint("# only a comment\n")
        assert [f.code for f in findings] == ["empty-file"]

    def test_findings_sorted_by_line(self):
        text = "Disallow: nope\nUser-agent: *\nBadDir: x\nDisallow: alsonope"
        numbers = [f.line_number for f in lint(text)]
        assert numbers == sorted(numbers)


class TestHasMistakes:
    def test_clean(self):
        assert not has_mistakes("User-agent: *\nDisallow: /")

    def test_notes_do_not_count(self):
        assert not has_mistakes("User-agent: *\nCrawl-delay: 3\nDisallow: /x/")

    def test_warning_counts(self):
        assert has_mistakes("User-agent: *\nDisallow: img/")

    def test_error_counts(self):
        assert has_mistakes("User-agent\nDisallow: /")
