"""Line-level tokenization of robots.txt files.

The Robots Exclusion Protocol (RFC 9309) is a line-oriented format.  This
module turns raw robots.txt bytes or text into a sequence of
:class:`Line` records that the parser consumes.  Keeping lexing separate
from parsing lets the diagnostics module (`repro.core.diagnostics`)
report problems with exact line numbers, and lets the deliberately buggy
legacy parser (`repro.core.legacy`) share the same low-level scan while
diverging in interpretation.

The lexer is forgiving by design: *every* input line produces exactly one
:class:`Line`, even malformed ones.  Classification into directive
kinds happens here; deciding what a directive *means* is the parser's
job.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Union

__all__ = [
    "LineKind",
    "Line",
    "tokenize",
    "KNOWN_DIRECTIVES",
    "canonical_directive",
]


class LineKind(enum.Enum):
    """The syntactic category of a single robots.txt line."""

    BLANK = "blank"
    COMMENT = "comment"
    USER_AGENT = "user-agent"
    ALLOW = "allow"
    DISALLOW = "disallow"
    SITEMAP = "sitemap"
    CRAWL_DELAY = "crawl-delay"
    UNKNOWN_DIRECTIVE = "unknown-directive"
    MALFORMED = "malformed"


#: Directive spellings (lowercased) the lexer recognizes, mapped to the
#: :class:`LineKind` they produce.  Common misspellings seen in the wild
#: ("useragent", "user agent") are accepted the same way Google's parser
#: accepts them, because real robots.txt files contain them.
KNOWN_DIRECTIVES = {
    "user-agent": LineKind.USER_AGENT,
    "useragent": LineKind.USER_AGENT,
    "user agent": LineKind.USER_AGENT,
    "allow": LineKind.ALLOW,
    "disallow": LineKind.DISALLOW,
    "dissallow": LineKind.DISALLOW,
    "disallaw": LineKind.DISALLOW,
    "sitemap": LineKind.SITEMAP,
    "site-map": LineKind.SITEMAP,
    "crawl-delay": LineKind.CRAWL_DELAY,
    "crawldelay": LineKind.CRAWL_DELAY,
}

#: Directives that RFC 9309 itself defines.  Anything else -- even if the
#: lexer maps it onto a kind for convenience -- is an extension.
RFC_DIRECTIVES = frozenset({"user-agent", "allow", "disallow"})


@dataclass(frozen=True)
class Line:
    """One physical line of a robots.txt file.

    Attributes:
        number: 1-based physical line number.
        kind: Syntactic category.
        key: The directive name as written (original case, stripped), or
            ``""`` for blank/comment/malformed lines.
        value: The directive value with surrounding whitespace and any
            trailing comment removed, or the full text for malformed
            lines and the comment body for comment lines.
        raw: The original line, without the newline.
    """

    number: int
    kind: LineKind
    key: str
    value: str
    raw: str

    @property
    def is_rule(self) -> bool:
        """Whether this line is an allow/disallow rule line."""
        return self.kind in (LineKind.ALLOW, LineKind.DISALLOW)

    @property
    def is_directive(self) -> bool:
        """Whether this line carries any directive at all."""
        return self.kind not in (LineKind.BLANK, LineKind.COMMENT, LineKind.MALFORMED)


def canonical_directive(key: str) -> str:
    """Return the canonical spelling for a directive key, lowercased.

    >>> canonical_directive("UserAgent")
    'useragent'
    """
    return key.strip().lower()


def _strip_bom(text: str) -> str:
    # UTF-8 BOM appears at the start of a surprising number of real
    # robots.txt files; RFC 9309 says to ignore it.
    if text.startswith("﻿"):
        return text[1:]
    return text


def _split_comment(line: str) -> str:
    """Drop an inline ``#`` comment from a line, returning the content."""
    idx = line.find("#")
    if idx == -1:
        return line
    return line[:idx]


def tokenize(source: Union[str, bytes]) -> List[Line]:
    """Tokenize robots.txt text into a list of :class:`Line` records.

    Bytes input is decoded as UTF-8 with replacement, matching the
    lenient decoding used by production parsers.  All universal newline
    conventions are handled.

    >>> [ln.kind.value for ln in tokenize("User-agent: *\\nDisallow: /")]
    ['user-agent', 'disallow']
    """
    if isinstance(source, bytes):
        source = source.decode("utf-8", errors="replace")
    source = _strip_bom(source)
    return list(_tokenize_lines(source.splitlines()))


def _tokenize_lines(lines: Iterable[str]) -> Iterator[Line]:
    for number, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        if not stripped:
            yield Line(number, LineKind.BLANK, "", "", raw)
            continue
        if stripped.startswith("#"):
            yield Line(number, LineKind.COMMENT, "", stripped[1:].strip(), raw)
            continue
        content = _split_comment(raw).strip()
        if not content:
            # The line was nothing but an inline comment.
            yield Line(number, LineKind.COMMENT, "", stripped.lstrip("#").strip(), raw)
            continue
        key, sep, value = content.partition(":")
        if not sep:
            yield Line(number, LineKind.MALFORMED, "", content, raw)
            continue
        key = key.strip()
        value = value.strip()
        kind = KNOWN_DIRECTIVES.get(canonical_directive(key), LineKind.UNKNOWN_DIRECTIVE)
        yield Line(number, kind, key, value, raw)
