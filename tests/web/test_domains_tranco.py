"""Tests for domain generation and the ranking model."""

import pytest

from repro.web.domains import artist_domain, domain_name, domain_names
from repro.web.tranco import RankingModel, stable_sites


class TestDomains:
    def test_stable(self):
        assert domain_name(123) == domain_name(123)

    def test_unique_over_large_range(self):
        names = domain_names(20_000)
        assert len(set(names)) == 20_000

    def test_artist_domains_unique(self):
        names = [artist_domain(i) for i in range(1200)]
        assert len(set(names)) == 1200

    def test_look_like_domains(self):
        for name in domain_names(50):
            assert "." in name and " " not in name


class TestRankingModel:
    MODEL = RankingModel(universe_size=600, list_size=400, seed=1)

    def test_list_size(self):
        assert len(self.MODEL.monthly_ranking(0)) == 400

    def test_deterministic_per_month(self):
        assert self.MODEL.monthly_ranking(3) == self.MODEL.monthly_ranking(3)

    def test_months_differ(self):
        assert self.MODEL.monthly_ranking(0) != self.MODEL.monthly_ranking(1)

    def test_churn_exists_but_is_bounded(self):
        a = set(self.MODEL.monthly_ranking(0))
        b = set(self.MODEL.monthly_ranking(1))
        overlap = len(a & b) / 400
        assert 0.8 < overlap < 1.0

    def test_top_ranks_more_stable_than_bottom(self):
        months = range(6)
        top_stable = stable_sites(
            {m: self.MODEL.monthly_ranking(m) for m in months}, 100
        )
        bottom_cut = stable_sites(
            {m: self.MODEL.monthly_ranking(m) for m in months}, 400
        )
        assert len(top_stable) / 100 > 0.5
        assert len(top_stable) / 100 >= len(bottom_cut) / 400 - 0.05

    def test_universe_must_exceed_list(self):
        with pytest.raises(ValueError):
            RankingModel(universe_size=100, list_size=100)


class TestStableSites:
    def test_intersection_semantics(self):
        rankings = {
            0: ["a", "b", "c", "d"],
            1: ["b", "a", "d", "e"],
            2: ["a", "d", "b", "f"],
        }
        assert stable_sites(rankings, 4) == ["a", "b", "d"]

    def test_cutoff_applies_every_month(self):
        rankings = {0: ["a", "b"], 1: ["b", "a"]}
        assert stable_sites(rankings, 1) == []

    def test_empty(self):
        assert stable_sites({}, 10) == []

    def test_order_follows_first_month(self):
        rankings = {0: ["c", "a", "b"], 1: ["a", "b", "c"]}
        assert stable_sites(rankings, 3) == ["c", "a", "b"]
