"""Deterministic fault-injection campaigns over the in-memory network.

The paper's measurement pipelines run against a flaky, adversarial Web:
Common Crawl records fetch errors per site (Appendix B.1), and the
Section 6 active-blocking differential must distinguish deliberate
blocks from transient transport failures.  :class:`FaultPlan` turns
that adversity into a *reproducible campaign*: a seeded set of
:class:`FaultRule` entries -- connection resets and refusals, injected
latency, outage windows on the simulated-month clock, truncated or
garbage robots.txt bodies -- that installs onto any existing
:class:`~repro.net.transport.Network` and fires deterministically.

Determinism contract:

* Which hosts a rule affects is a pure function of
  ``(seed, plan name, rule index, host)`` -- a SHA-256 hash fraction
  compared against the rule's ``rate``.  No RNG state is shared across
  networks, so parallel snapshot collection (one network per snapshot)
  sees exactly the same faults for any worker count.
* *When* a fault fires is governed by per-``(rule, host)`` counters
  local to one controller (one network): ``max_per_host=1`` models a
  transient failure that heals on retry, ``months=(a, b)`` models an
  outage window tied to the simulated-month clock the rest of the
  telemetry stack already uses.

Injected transport errors surface through the exact error counters
``repro.obs`` already exports (``net.errors{kind=...}``), plus
campaign-side ``chaos.faults{kind=...}`` counters and a ``chaos.faults``
time series on the month clock.

Activation: :func:`activate` / :func:`chaos_active` arm a plan
process-wide, so every :class:`Network` constructed while the plan is
active (experiments build their own networks internally) gets a
controller automatically; :meth:`FaultPlan.install` targets one
existing network.  :func:`retries_enabled` is the global switch the
retry/confirmation consumers (snapshot crawler, active-blocking
detector) consult -- ``repro chaos --no-retries`` flips it to
demonstrate what the fault plan does to an unhardened pipeline.
"""

from __future__ import annotations

import hashlib
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from ..obs.metrics import shared_registry
from ..obs.series import shared_series
from . import transport as _transport
from .errors import ConnectionRefused, ConnectionReset
from .http import Request, Response
from .transport import Network

__all__ = [
    "FaultRule",
    "FaultPlan",
    "ChaosController",
    "NAMED_PLANS",
    "plan",
    "plan_names",
    "activate",
    "deactivate",
    "active_plan",
    "chaos_active",
    "retries_enabled",
    "set_retries_enabled",
    "retries_disabled",
    "deterministic_fraction",
]

#: Fault kinds a rule may inject.
FAULT_KINDS = (
    "reset",            # ConnectionReset, bounded by max_per_host
    "refuse",           # ConnectionRefused, bounded by max_per_host
    "outage",           # persistent ConnectionRefused (ignores max_per_host)
    "latency",          # advance the simulated clock, no error
    "truncate_robots",  # cut a 200 robots.txt body short
    "garbage_robots",   # replace a 200 robots.txt body with binary junk
)


def deterministic_fraction(*parts: object) -> float:
    """A uniform fraction in ``[0, 1)`` from a SHA-256 of *parts*.

    This is the only "randomness" in the chaos layer: stable across
    processes and Python hash seeds, so fault campaigns replay exactly.
    """
    digest = hashlib.sha256("|".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultRule:
    """One fault family within a plan.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        rate: Fraction of the host space affected (seeded per-host
            sampling); 1.0 = every matching host.
        hosts: Explicit host list; overrides ``rate`` sampling.
        host_suffix: Restrict to hosts ending with this suffix.
        agent_contains: Restrict to requests whose ``User-Agent``
            contains this substring (case-insensitive) -- models
            anti-bot layers that drop only automation traffic.
        months: Inclusive ``(start, end)`` window on the simulated-month
            clock; the rule is dormant outside it (and on unclocked
            networks, ``month == -1``).
        max_per_host: Faults injected per host per network before the
            host heals (None = unlimited).  ``outage`` ignores this.
        latency_seconds: Simulated seconds a ``latency`` fault adds.
        truncate_at: Byte offset ``truncate_robots`` cuts the body at.
    """

    kind: str
    rate: float = 1.0
    hosts: Optional[Tuple[str, ...]] = None
    host_suffix: Optional[str] = None
    agent_contains: Optional[str] = None
    months: Optional[Tuple[int, int]] = None
    max_per_host: Optional[int] = 1
    latency_seconds: float = 1.0
    truncate_at: int = 16

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.months is not None and self.months[0] > self.months[1]:
            raise ValueError(f"months window is inverted: {self.months}")

    def matches_host(self, host: str, seed: int, rule_index: int, plan_name: str) -> bool:
        """Whether *host* is in this rule's deterministic blast radius."""
        if self.hosts is not None:
            return host in self.hosts
        if self.host_suffix is not None and not host.endswith(self.host_suffix):
            return False
        if self.rate >= 1.0:
            return True
        return deterministic_fraction(seed, plan_name, rule_index, host) < self.rate

    def active_in(self, month: int) -> bool:
        """Whether the rule is live at *month* on the simulated clock."""
        if self.months is None:
            return True
        return self.months[0] <= month <= self.months[1]


@dataclass(frozen=True)
class FaultPlan:
    """A named, seedable campaign of fault rules.

    >>> plan = FaultPlan("demo", (FaultRule(kind="reset", rate=0.5),))
    >>> controller = plan.install(Network(), seed=0)  # doctest: +SKIP
    """

    name: str
    rules: Tuple[FaultRule, ...]
    description: str = ""

    def install(self, network: Network, seed: int = 0) -> "ChaosController":
        """Attach a controller for this plan onto an existing network."""
        controller = ChaosController(self, network, seed=seed)
        network.install_chaos(controller)
        return controller


class ChaosController:
    """Per-network fault execution state for one plan + seed.

    The controller is what :meth:`Network.request` consults: it decides
    per request whether a transport error fires (returned to the network
    so injected errors flow through the same ``net.errors`` counters as
    organic ones) and whether a returned robots.txt body gets corrupted.
    """

    def __init__(self, plan: FaultPlan, network: Network, seed: int = 0):
        self.plan = plan
        self.network = network
        self.seed = seed
        self._lock = threading.Lock()
        #: Faults already injected, keyed ``(rule_index, host)``.
        self._injected: Dict[Tuple[int, str], int] = {}
        self._total_faults = 0
        #: Memoized ``matches_host`` verdicts -- the decision is pure in
        #: ``(seed, plan, rule_index, host)``, so hash-based sampling is
        #: paid once per (rule, host) rather than on every request.
        self._match_cache: Dict[Tuple[int, str], bool] = {}
        #: Hosts no rule matches at all: the steady-state fast path for
        #: the fault-free majority of traffic is one set lookup.
        self._immune: set = set()
        #: ``(rule_index, host)`` slots already exhausted -- checked
        #: before the lock so healed hosts stop paying for it.
        self._spent: set = set()
        registry = shared_registry()
        self._fault_counters = {
            kind: registry.counter("chaos.faults", kind=kind, plan=plan.name)
            for kind in FAULT_KINDS
        }
        self._latency_histogram = registry.histogram("chaos.latency_seconds")
        self._fault_series = shared_series()

    # -- bookkeeping --------------------------------------------------------

    def _take_slot(self, rule_index: int, rule: FaultRule, host: str) -> bool:
        """Consume one fault slot for ``(rule, host)``; False when spent."""
        if rule.kind == "outage" or rule.max_per_host is None:
            return True
        key = (rule_index, host)
        if key in self._spent:
            return False
        with self._lock:
            used = self._injected.get(key, 0)
            if used >= rule.max_per_host:
                self._spent.add(key)
                return False
            self._injected[key] = used + 1
            if used + 1 >= rule.max_per_host:
                self._spent.add(key)
        return True

    def _host_matches(self, index: int, rule: FaultRule, host: str) -> bool:
        key = (index, host)
        cached = self._match_cache.get(key)
        if cached is None:
            cached = rule.matches_host(host, self.seed, index, self.plan.name)
            self._match_cache[key] = cached
        return cached

    def _record(self, kind: str) -> None:
        with self._lock:
            self._total_faults += 1
        self._fault_counters[kind].inc()
        self._fault_series.add(
            "chaos.faults", self.network.month, kind=kind, plan=self.plan.name
        )

    def faults_injected(self) -> int:
        """Total faults this controller has fired (errors and mutations)."""
        with self._lock:
            return self._total_faults

    # -- the two network hooks ----------------------------------------------

    def intercept(self, request: Request) -> Optional[Exception]:
        """Pre-dispatch hook: the transport error to raise, if any.

        Latency rules fire here too (advancing the network's simulated
        clock) but never abort the request.
        """
        host = request.host.lower()
        if host in self._immune:
            return None
        month = self.network.month
        agent = None  # resolved lazily; most rules don't filter on it
        any_host_match = False
        for index, rule in enumerate(self.plan.rules):
            if not self._host_matches(index, rule, host):
                continue
            any_host_match = True
            if not rule.active_in(month):
                continue
            if rule.agent_contains is not None:
                if agent is None:
                    agent = request.user_agent.lower()
                if rule.agent_contains.lower() not in agent:
                    continue
            if rule.kind == "latency":
                if self._take_slot(index, rule, host):
                    self._record("latency")
                    self._latency_histogram.observe(rule.latency_seconds)
                    self.network.now += rule.latency_seconds
                continue
            if rule.kind in ("reset", "refuse", "outage"):
                if not self._take_slot(index, rule, host):
                    continue
                self._record(rule.kind)
                if rule.kind == "reset":
                    return ConnectionReset(request.host)
                return ConnectionRefused(request.host)
        if not any_host_match or all(
            rule.kind != "outage"
            and rule.max_per_host is not None
            and (index, host) in self._spent
            for index, rule in enumerate(self.plan.rules)
            if self._match_cache.get((index, host))
        ):
            # Either no rule ever matches this host, or every matching
            # rule has permanently exhausted its fault budget (spent
            # slots never replenish): all future requests take the
            # one-set-lookup fast path.
            self._immune.add(host)
        return None

    def mutate_response(self, request: Request, response: Response) -> Response:
        """Post-dispatch hook: corrupt robots.txt bodies where planned."""
        if request.path_only != "/robots.txt" or response.status != 200:
            return response
        host = request.host.lower()
        if host in self._immune:
            return response
        month = self.network.month
        for index, rule in enumerate(self.plan.rules):
            if rule.kind not in ("truncate_robots", "garbage_robots"):
                continue
            if not rule.active_in(month):
                continue
            if not self._host_matches(index, rule, host):
                continue
            if not self._take_slot(index, rule, host):
                continue
            self._record(rule.kind)
            assert isinstance(response.body, bytes)
            if rule.kind == "truncate_robots":
                body = response.body[: rule.truncate_at]
            else:
                # Deterministic binary junk: stable per (seed, host), not
                # valid UTF-8, long enough to exercise lenient parsing.
                digest = hashlib.sha256(
                    f"{self.seed}|garbage|{host}".encode()
                ).digest()
                body = (digest * 8)[:200]
            return Response(
                status=response.status,
                body=body,
                headers=response.headers,
                url=response.url,
            )
        return response


# -- process-wide activation ---------------------------------------------------

_ACTIVE: Optional[Tuple[FaultPlan, int]] = None


def activate(fault_plan: FaultPlan, seed: int = 0) -> None:
    """Arm *fault_plan* for every Network constructed from now on.

    Experiment runners build their networks internally; activation is
    how ``repro chaos`` injects faults into worlds it never sees.
    """
    global _ACTIVE
    _ACTIVE = (fault_plan, seed)
    _transport.set_chaos_factory(
        lambda network: ChaosController(fault_plan, network, seed=seed)
    )


def deactivate() -> None:
    """Disarm the active plan (already-installed controllers persist)."""
    global _ACTIVE
    _ACTIVE = None
    _transport.set_chaos_factory(None)


def active_plan() -> Optional[Tuple[FaultPlan, int]]:
    """The armed ``(plan, seed)``, or None."""
    return _ACTIVE


@contextmanager
def chaos_active(fault_plan: FaultPlan, seed: int = 0) -> Iterator[None]:
    """``with chaos_active(plan): ...`` -- arm, then restore on exit."""
    previous = _ACTIVE
    activate(fault_plan, seed)
    try:
        yield
    finally:
        if previous is None:
            deactivate()
        else:
            activate(*previous)


# -- the retry master switch ---------------------------------------------------

_RETRIES_ENABLED = True


def retries_enabled() -> bool:
    """Whether the retry/confirmation consumers should harden fetches."""
    return _RETRIES_ENABLED


def set_retries_enabled(enabled: bool) -> None:
    """Globally enable/disable retry passes and confirmation probes."""
    global _RETRIES_ENABLED
    _RETRIES_ENABLED = bool(enabled)


@contextmanager
def retries_disabled() -> Iterator[None]:
    """``with retries_disabled(): ...`` -- expose raw fault impact."""
    was = _RETRIES_ENABLED
    set_retries_enabled(False)
    try:
        yield
    finally:
        set_retries_enabled(was)


# -- named campaigns -----------------------------------------------------------

#: The campaign library ``repro chaos --plan <name>`` draws from.  The
#: transient plans (``flaky-*``, ``ai-probe-resets``) are heal-guaranteed:
#: every fault is bounded per host, so the bounded retry passes in the
#: snapshot crawler / blocking detector restore fault-free results
#: byte-for-byte.  ``outage-window`` and ``garbage-robots`` are
#: deliberately *not* healable -- they exist to measure degradation.
NAMED_PLANS: Dict[str, FaultPlan] = {
    "flaky-resets": FaultPlan(
        "flaky-resets",
        (FaultRule(kind="reset", rate=0.35, max_per_host=1),),
        "35% of hosts reset their first connection per network, then heal",
    ),
    "flaky-refusals": FaultPlan(
        "flaky-refusals",
        (FaultRule(kind="refuse", rate=0.25, max_per_host=1),),
        "25% of hosts refuse their first connection per network, then heal",
    ),
    "ai-probe-resets": FaultPlan(
        "ai-probe-resets",
        (
            FaultRule(kind="reset", rate=1.0, agent_contains="claude", max_per_host=1),
            FaultRule(
                kind="reset", rate=1.0, agent_contains="anthropic", max_per_host=1
            ),
        ),
        "every host resets the first connection from each Anthropic UA "
        "(the Section 6 false-positive confound)",
    ),
    "slow-origins": FaultPlan(
        "slow-origins",
        (
            FaultRule(
                kind="latency", rate=0.5, latency_seconds=1.5, max_per_host=None
            ),
        ),
        "half the hosts add 1.5 simulated seconds to every request",
    ),
    "outage-window": FaultPlan(
        "outage-window",
        (FaultRule(kind="outage", rate=0.10, months=(6, 9)),),
        "10% of hosts are down for simulated months 6-9 (not healable)",
    ),
    "garbage-robots": FaultPlan(
        "garbage-robots",
        (
            FaultRule(kind="truncate_robots", rate=0.08, max_per_host=None),
            FaultRule(kind="garbage_robots", rate=0.05, max_per_host=None),
        ),
        "8% of hosts truncate and 5% serve binary junk for robots.txt",
    ),
    "mixed-storm": FaultPlan(
        "mixed-storm",
        (
            FaultRule(kind="reset", rate=0.20, max_per_host=1),
            FaultRule(kind="refuse", rate=0.10, max_per_host=1),
            FaultRule(
                kind="latency", rate=0.25, latency_seconds=0.8, max_per_host=2
            ),
        ),
        "transient resets, refusals, and latency together (healable)",
    ),
}


def plan(name: str) -> FaultPlan:
    """Look up a named plan (KeyError lists the known names)."""
    try:
        return NAMED_PLANS[name]
    except KeyError:
        known = ", ".join(sorted(NAMED_PLANS))
        raise KeyError(f"unknown fault plan {name!r}; known plans: {known}") from None


def plan_names() -> Tuple[str, ...]:
    """All named plans, sorted."""
    return tuple(sorted(NAMED_PLANS))
