"""Per-(agent, host) traffic features from the wide-event log store.

The behavioral bot-detection plane (ROADMAP item 3, after
``TrafficPatternClassifier``-style real-world pipelines) consumes
exactly these inputs: inter-request timing, path entropy, robots-
before-content discipline, error ratios, and User-Agent churn, all per
(agent label, host) pair.  This module derives them deterministically
from a committed :class:`~repro.net.logstore.LogStore` -- integer
arithmetic until the final rounding, records consumed in global-seq
order -- and exports them as a schema-versioned ``FEATURES.json`` that
is byte-identical across scheduling modes (the log store already is).
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Tuple, Union

from .metrics import metrics_enabled, shared_registry

if TYPE_CHECKING:  # annotation-only: keeps the proxy->obs import acyclic
    from ..net.logstore import LogStore

__all__ = [
    "FEATURES_SCHEMA_VERSION",
    "extract_features",
    "write_features",
]

FEATURES_SCHEMA_VERSION = 1

#: Decimal places kept on float features; enough precision for any
#: classifier, few enough digits for stable, readable JSON.
_ROUND = 6


def _percentile(sorted_values: List[int], fraction: float) -> int:
    """Nearest-rank percentile of an ascending list (deterministic)."""
    if not sorted_values:
        return 0
    rank = math.ceil(fraction * len(sorted_values))
    return sorted_values[max(rank - 1, 0)]


def _entropy_bits(counts: Dict[str, int]) -> float:
    """Shannon entropy (bits) of a discrete distribution."""
    total = sum(counts.values())
    if total <= 1:
        return 0.0
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def extract_features(store: LogStore) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Traffic features per ``{agent: {host: {...}}}``, keys sorted.

    Features per (agent, host) pair:

    * ``requests`` -- total request count.
    * ``gap_mean_ticks`` / ``gap_p95_ticks`` -- mean and nearest-rank
      p95 of inter-request gaps on the simulated millisecond clock.
      Gaps are differences of the pair's *sorted* ticks (0.0/0 when the
      pair made fewer than two requests); ticks arriving out of order
      across stream boundaries are counted into the process-wide
      ``features.tick_regressions`` counter instead of being folded
      into the gap statistics.
    * ``path_entropy_bits`` -- Shannon entropy of the request-path
      distribution (high for broad crawls, low for focused scraping).
    * ``robots_before_content`` -- fraction of content (non-robots)
      requests that came after the pair had fetched robots.txt at
      least once: the per-host compliance discipline Section 5 infers
      from raw logs.
    * ``error_ratio`` -- fraction of requests answered >= 400.
    * ``ua_churn`` -- distinct raw User-Agent strings (> 1 means the
      agent rotated UAs against this host).
    """
    state: Dict[Tuple[str, str], Dict[str, object]] = {}
    for record in store.records():
        pair = state.get((record.agent, record.host))
        if pair is None:
            pair = {
                "requests": 0,
                "ticks": [],
                "paths": {},
                "uas": set(),
                "errors": 0,
                "robots_seen": False,
                "content": 0,
                "content_after_robots": 0,
            }
            state[(record.agent, record.host)] = pair
        pair["requests"] += 1
        pair["ticks"].append(record.ticks)
        pair["paths"][record.path] = pair["paths"].get(record.path, 0) + 1
        pair["uas"].add(record.user_agent)
        if record.status >= 400:
            pair["errors"] += 1
        if record.robots_fetch:
            pair["robots_seen"] = True
        else:
            pair["content"] += 1
            if pair["robots_seen"]:
                pair["content_after_robots"] += 1

    out: Dict[str, Dict[str, Dict[str, object]]] = {}
    regressions = 0
    for (agent, host) in sorted(state):
        pair = state[(agent, host)]
        ticks: List[int] = pair["ticks"]
        # A tick running backwards between consecutive requests is a
        # clock regression (records from different streams interleaving
        # on the global seq), not a real inter-arrival gap.  Taking the
        # absolute value would silently fold it into the gap stats;
        # instead count it, then difference the sorted ticks so gaps
        # are always measured on the ordered timeline.
        regressions += sum(
            1 for i in range(1, len(ticks)) if ticks[i] < ticks[i - 1]
        )
        ordered = sorted(ticks)
        gaps = sorted(
            ordered[i] - ordered[i - 1] for i in range(1, len(ordered))
        )
        content = pair["content"]
        out.setdefault(agent, {})[host] = {
            "requests": pair["requests"],
            "gap_mean_ticks": round(sum(gaps) / len(gaps), _ROUND) if gaps else 0.0,
            "gap_p95_ticks": _percentile(gaps, 0.95),
            "path_entropy_bits": round(_entropy_bits(pair["paths"]), _ROUND),
            "robots_before_content": (
                round(pair["content_after_robots"] / content, _ROUND)
                if content
                else 0.0
            ),
            "error_ratio": round(pair["errors"] / pair["requests"], _ROUND),
            "ua_churn": len(pair["uas"]),
        }
    if regressions and metrics_enabled():
        shared_registry().counter("features.tick_regressions").inc(regressions)
    return out


def write_features(store: LogStore, path: Union[str, Path]) -> Path:
    """Extract features and write the schema-versioned JSON artifact."""
    path = Path(path)
    payload = {
        "schema_version": FEATURES_SCHEMA_VERSION,
        "config_digest": store.config_digest,
        "n_records": store.n_records,
        "features": extract_features(store),
    }
    # Atomic like every other artifact writer (archive manifests, log
    # store commits): create the parent, stage a sibling tmp file, then
    # rename into place so readers never see a torn FEATURES.json.
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    os.replace(tmp, path)
    return path
