"""Section 4.2-4.3: artist sentiment and adoption-barrier statistics.

Paper values: 59% never heard of robots.txt; 97% would enable a
blocking mechanism (93% "very likely"); 79% expect at least moderate
job impact (54% significant+); 83% took protective action, 71% of whom
use Glaze; 75% of explainer-readers would adopt robots.txt; 77% of the
never-heard distrust AI companies; 38 aware site owners of whom 27 do
not use robots.txt and 9 lack control.
"""

from conftest import save_artifact

from repro.survey.analysis import analyze
from repro.survey.respondents import filter_valid, generate_respondents


def run_sentiment(seed: int = 42):
    return analyze(filter_valid(generate_respondents(seed=seed)))


def test_sec42_sentiment(benchmark, artifact_dir):
    analysis = benchmark.pedantic(run_sentiment, rounds=1, iterations=1)

    from repro.report.experiments import ExperimentResult
    from repro.report.tables import render_table

    rows = [
        ("% never heard of robots.txt", analysis.pct_never_heard, 59),
        ("% would enable blocking", analysis.pct_would_enable_blocking, 97),
        ("% very likely to enable", analysis.pct_very_likely_blocking, 93),
        ("% moderate+ impact", analysis.pct_impact_moderate_plus, 79),
        ("% significant+ impact", analysis.pct_impact_significant_plus, 54),
        ("% Glaze among actors", analysis.pct_glaze_among_actors, 71),
        ("% adopt after explainer", analysis.pct_would_adopt_after_explainer, 75),
        ("% distrust among never-heard", analysis.pct_distrust_among_never_heard, 77),
        ("% interested despite distrust", analysis.pct_interested_despite_distrust, 47),
    ]
    result = ExperimentResult(
        "sec42",
        "Artist sentiment (Sections 4.2-4.3)",
        render_table(["statistic", "measured", "paper"], rows,
                     title="Section 4.2-4.3 headline statistics"),
        {name: float(measured) for name, measured, _ in rows},
    )
    save_artifact(artifact_dir, result)
    print(result.text)

    for name, measured, paper in rows:
        assert abs(measured - paper) < 12.0, (name, measured, paper)
    assert analysis.n_aware_site_owners == 38
    assert analysis.n_aware_site_owners_not_using == 27
    assert analysis.n_aware_no_control == 9
