"""User-agent catalogs used by providers and blocking services.

This module records the concrete user-agent lists the paper documents:

* :data:`SQUARESPACE_BLOCKED_AGENTS` -- the ten agents Squarespace's
  "Artificial Intelligence Crawlers" toggle disallows (Appendix C.1).
* :data:`CLOUDFLARE_AI_BOTS_BLOCKED` -- the seventeen user agents
  Cloudflare's "Block AI Scrapers and Crawlers" option blocks
  (Appendix C.3; entries ending in ``/`` are prefix patterns).
* :data:`CLOUDFLARE_DEFINITELY_AUTOMATED` -- the automation tools the
  "Definitely Automated" managed ruleset blocks (Appendix C.2).
* :data:`CLOUDFLARE_VERIFIED_BOTS` -- crawlers Cloudflare verifies by
  IP; spoofed requests claiming these UAs from wrong IPs are blocked.
* :data:`CARBONMADE_DEFAULT_BLOCKED` -- agents Carbonmade's default
  robots.txt disallows (Section 4.4).
* :func:`generic_crawler_user_agents` -- a 590-entry stand-in for the
  public crawler-user-agents list [79] used to probe Cloudflare's
  coverage.
"""

from __future__ import annotations

from typing import List

__all__ = [
    "SQUARESPACE_BLOCKED_AGENTS",
    "CLOUDFLARE_AI_BOTS_BLOCKED",
    "CLOUDFLARE_DEFINITELY_AUTOMATED",
    "CLOUDFLARE_VERIFIED_BOTS",
    "CLOUDFLARE_VERIFIED_AI_BOTS_BLOCKED",
    "CARBONMADE_DEFAULT_BLOCKED",
    "generic_crawler_user_agents",
]

#: Appendix C.1: Squarespace's AI-crawler toggle adds a Disallow: / group
#: for exactly these user agents.
SQUARESPACE_BLOCKED_AGENTS = [
    "GPTBot",
    "ChatGPT-User",
    "CCBot",
    "anthropic-ai",
    "Google-Extended",
    "FacebookBot",
    "Claude-Web",
    "cohere-ai",
    "PerplexityBot",
    "Applebot-Extended",
]

#: Appendix C.3: UA *patterns* blocked by Cloudflare's "Block AI Scrapers
#: and Crawlers".  A trailing "/" means the pattern matches the product
#: token plus version separator (e.g. "GPTBot/" matches "GPTBot/1.1").
CLOUDFLARE_AI_BOTS_BLOCKED = [
    "Amazonbot",
    "AwarioRssBot",
    "AwarioSmartBot",
    "Bytespider",
    "CCBot/",
    "ChatGPT-User",
    "Claude-Web",
    "ClaudeBot",
    "cohere-ai",
    "Diffbot/",
    "GPTBot/",
    "magpie-crawler",
    "MeltwaterNews",
    "omgili/",
    "PerplexityBot",
    "PiplBot",
    "YouBot",
]

#: Appendix C.2: the "Definitely Automated" managed ruleset.
CLOUDFLARE_DEFINITELY_AUTOMATED = [
    "360Spider",
    "AHC",
    "aiohttp",
    "anthropic-ai",
    "Apache-HttpClient",
    "axios",
    "binlar",
    "Bytespider",
    "CCBot",
    "centurybot",
    "Claudebot",
    "curl",
    "Diffbot",
    "Go-http-client",
    "grub.org",
    "HeadlessChrome",
    "httpx",
    "libwww-perl",
    "magpie-crawler",
    "MeltwaterNews",
    "node-fetch",
    "Nutch",
    "omgili",
    "PerplexityBot",
    "PhantomJS",
    "PHP-Curl-Class",
    "PiplBot",
    "python-requests",
    "Python-urllib",
    "Scrapy",
    "serpstatbot",
    "Teoma",
    "W3C-checklink",
]

#: Cloudflare verified bots relevant to the Section 6.3 audit: these are
#: validated by source IP, so a spoofed UA from an unexpected address is
#: blocked regardless of managed-rule settings.
CLOUDFLARE_VERIFIED_BOTS = [
    "Amazonbot",
    "Applebot",
    "GPTBot",
    "OAI-SearchBot",
    "ChatGPT-User",
    "ICC Crawler",
    "DuckAssistbot",
    "Googlebot",
    "Bingbot",
    "CCBot",
]

#: The subset of verified bots that the Block AI Bots feature actually
#: blocks (footnote 8: Applebot, OAI-SearchBot, ICC Crawler, and
#: DuckAssistbot are verified but NOT blocked).
CLOUDFLARE_VERIFIED_AI_BOTS_BLOCKED = [
    "Amazonbot",
    "GPTBot",
    "ChatGPT-User",
    "CCBot",
]

#: Carbonmade's default robots.txt disallows these AI crawlers
#: (Section 4.4: "only Carbonmade disallows AI crawlers (GPTBot and
#: CCBot) in their default robots.txt file").
CARBONMADE_DEFAULT_BLOCKED = ["GPTBot", "CCBot"]

#: Families used to synthesize the public crawler-UA list stand-in.
_GENERIC_FAMILIES = [
    "{name}Bot/{major}.{minor}",
    "Mozilla/5.0 (compatible; {name}bot/{major}.{minor}; +https://{name}.example/bot)",
    "{name}-crawler/{major}.{minor}",
    "{name}spider/{major}.{minor} (+http://crawl.{name}.example)",
    "{name}fetch/{major}.{minor}",
]

_GENERIC_NAMES = [
    "acme", "aardvark", "beacon", "bluejay", "cedar", "cinder", "dune",
    "ember", "falcon", "garnet", "harbor", "iris", "juniper", "krill",
    "lumen", "maple", "nimbus", "onyx", "prairie", "quartz", "raven",
    "sable", "tundra", "umbra", "vortex", "willow", "xenon", "yarrow",
    "zephyr", "basalt", "cobalt", "drift", "echo", "flint", "glade",
    "hollow", "ingot", "jasper", "kelp", "larch", "mesa", "nectar",
    "opal", "pine", "quill", "ridge", "slate", "thorn", "ursa", "vale",
    "wren", "yew", "zinc", "amber", "birch", "coral", "delta", "elm",
    "fern", "grove", "heath", "inlet", "jade", "knoll", "loch", "moss",
    "nook", "orchid", "pond", "quince", "reef", "shoal", "tarn", "vine",
    "wharf", "yucca", "zest", "alder", "briar", "cliff", "dell", "eyrie",
    "fjord", "gorge", "holt", "isle", "jetty", "kame", "lagoon", "marsh",
    "ness", "oxbow", "plateau", "quarry", "rill", "scree", "trail",
    "upland", "verge", "wold", "yonder", "zenith", "arbor", "bight",
    "combe", "downs", "esker", "frith", "ghyll", "haven", "inglenook",
    "jumble", "karst", "levee", "moor", "notch", "outcrop", "pass",
]


def generic_crawler_user_agents(count: int = 590) -> List[str]:
    """Synthesize *count* distinct full crawler user-agent strings.

    Stand-in for the monperrus/crawler-user-agents list [79] the paper
    uses to probe Cloudflare's UA coverage.  Deterministic: the same
    count always yields the same list.
    """
    out: List[str] = []
    index = 0
    while len(out) < count:
        name = _GENERIC_NAMES[index % len(_GENERIC_NAMES)]
        family = _GENERIC_FAMILIES[(index // len(_GENERIC_NAMES)) % len(_GENERIC_FAMILIES)]
        major = 1 + (index % 9)
        minor = index % 10
        serial = index // (len(_GENERIC_NAMES) * len(_GENERIC_FAMILIES))
        suffix = f"-{serial}" if serial else ""
        out.append(family.format(name=name + suffix, major=major, minor=minor))
        index += 1
    return out[:count]
