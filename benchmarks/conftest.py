"""Shared fixtures for the benchmark harness.

The heavy simulated worlds (the longitudinal population with its
fifteen crawled snapshots, and the audit-tier population) are built
once per session and shared across benches; each bench then times its
own measurement pipeline and asserts the paper's bands.

Every bench writes its rendered artifact (the table/figure text the
paper reports) to ``benchmarks/output/<experiment>.txt`` so results are
inspectable after a run regardless of pytest capture settings.  The
harness additionally records per-bench wall-clock timings to a
machine-readable ``benchmarks/output/BENCH_RESULTS.json`` so future
changes have a perf trajectory to regress against.
"""

from __future__ import annotations

import json
import pathlib
import platform
import subprocess
import time

import pytest

from repro.report.experiments import (
    ExperimentResult,
    LongitudinalBundle,
    build_longitudinal_bundle,
)
from repro.web.population import PopulationConfig
from repro.web.worldstore import shared_world_store

#: The default bench scale: a 1:25 model of the paper's setting.
BENCH_CONFIG = PopulationConfig()

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

BENCH_RESULTS_PATH = OUTPUT_DIR / "BENCH_RESULTS.json"

#: History entries kept in BENCH_RESULTS.json (oldest dropped first).
HISTORY_LIMIT = 50

#: Wall-clock call durations per bench nodeid, collected as tests run.
_TIMINGS: dict = {}


def _git_commit() -> str:
    """The short hash of HEAD, or ``"unknown"`` outside a git checkout.

    Stamped into every history entry so a perf regression in the
    trajectory can be attributed to the commit that introduced it.
    """
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            stderr=subprocess.DEVNULL,
            text=True,
            timeout=10,
        ).strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


@pytest.fixture(scope="session")
def longitudinal_bundle() -> LongitudinalBundle:
    """The Section 3 world with all fifteen snapshots crawled.

    Served from the content-addressed world store, so the bundle and
    the audit population share one frozen world build per session.
    """
    return build_longitudinal_bundle(BENCH_CONFIG, store=shared_world_store())


@pytest.fixture(scope="session")
def audit_population():
    """The population whose audit tier Section 6 / 2.2 benches probe.

    A copy-on-write view over the same stored world the longitudinal
    bundle uses -- bench-local mutations never reach the substrate.
    """
    return shared_world_store().population_view(BENCH_CONFIG)


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def record_timing():
    """Record a precisely measured duration under an explicit bench key.

    Benches that time several distinct regimes inside one test (e.g.
    cold-start vs warm-incremental reproduction) use this to give each
    regime its own key in ``BENCH_RESULTS.json``, so the rolling-median
    regression gate in ``scripts/bench.py`` never mixes regimes whose
    costs differ by orders of magnitude.
    """

    def _record(key: str, seconds: float) -> None:
        _TIMINGS[key] = round(seconds, 6)

    return _record


def save_artifact(directory: pathlib.Path, result: ExperimentResult) -> None:
    """Write one experiment's rendered text under benchmarks/output/."""
    path = directory / f"{result.experiment_id}.txt"
    lines = [result.title, "", result.text, "", "metrics:"]
    for name, value in sorted(result.metrics.items()):
        lines.append(f"  {name} = {value:.4f}")
    path.write_text("\n".join(lines) + "\n")


# -- machine-readable timing trajectory ----------------------------------------


def pytest_runtest_logreport(report) -> None:
    """Collect the measurement-phase (call) wall clock of every bench."""
    if report.when == "call" and report.passed:
        _TIMINGS[report.nodeid] = round(report.duration, 6)


def pytest_sessionfinish(session, exitstatus) -> None:
    """Merge this run's timings into ``BENCH_RESULTS.json``.

    The file maps bench nodeids to their most recent wall-clock call
    duration (seconds) plus run metadata.  Timings from benches not
    selected in this run are preserved, so partial runs refine rather
    than erase the trajectory; additionally every run appends a
    ``history`` entry carrying *only its own* timings, giving
    ``scripts/bench.py`` a per-run trajectory to regress against.
    """
    if not _TIMINGS:
        return
    OUTPUT_DIR.mkdir(exist_ok=True)
    previous: dict = {}
    if BENCH_RESULTS_PATH.exists():
        try:
            previous = json.loads(BENCH_RESULTS_PATH.read_text())
        except (ValueError, OSError):
            previous = {}
    timings = dict(previous.get("timings_seconds", {}))
    timings.update(_TIMINGS)
    commit = _git_commit()
    history = list(previous.get("history", []))
    history.append(
        {
            "recorded_at_unix": round(time.time(), 3),
            "git_commit": commit,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "timings_seconds": dict(sorted(_TIMINGS.items())),
        }
    )
    payload = {
        "schema_version": 2,
        "recorded_at_unix": round(time.time(), 3),
        "git_commit": commit,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "timings_seconds": dict(sorted(timings.items())),
        "history": history[-HISTORY_LIMIT:],
    }
    BENCH_RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
