"""Ablation: longest-match vs first-match rule evaluation.

RFC 9309 (and Google's parser) use longest-match with an allow-wins tie
break; the original 1994 draft used first-match, and some home-grown
parsers still do.  This ablation quantifies how often the discipline
changes fetch decisions over the population's real rule sets --
the files where ``Allow`` carve-outs follow a blanket ``Disallow``.
"""

from conftest import save_artifact

from repro.core.matcher import evaluate, first_match
from repro.core.policy import RobotsPolicy
from repro.report.experiments import ExperimentResult
from repro.report.tables import render_table

PROBES = ["/", "/page", "/images/a.png", "/blog/2024/post", "/admin/x"]
AGENTS = ["GPTBot", "CCBot", "randombot"]


def run_discipline_comparison(population):
    decisions = 0
    disagreements = 0
    affected_sites = 0
    for site in population.stable:
        text = site.robots_at(24)
        if text is None:
            continue
        policy = RobotsPolicy(text)
        site_hit = False
        for agent in AGENTS:
            rules = list(policy.rules_for(agent).rules)
            for path in PROBES:
                decisions += 1
                longest = evaluate(rules, path).allowed
                first = first_match(rules, path).allowed
                if longest != first:
                    disagreements += 1
                    site_hit = True
        if site_hit:
            affected_sites += 1
    return decisions, disagreements, affected_sites


def test_ablation_match_discipline(benchmark, audit_population, artifact_dir):
    decisions, disagreements, affected = benchmark.pedantic(
        run_discipline_comparison, args=(audit_population,), rounds=1, iterations=1
    )
    pct = 100.0 * disagreements / max(decisions, 1)
    result = ExperimentResult(
        "ablation_match_discipline",
        "Ablation: longest-match vs first-match evaluation",
        render_table(
            ["measurement", "value"],
            [
                ("fetch decisions compared", decisions),
                ("decisions that flip", disagreements),
                ("% flipped", pct),
                ("sites affected", affected),
            ],
            title="Match-discipline ablation",
        ),
        {"pct_flipped": pct, "affected_sites": float(affected)},
    )
    save_artifact(artifact_dir, result)
    print(result.text)

    # The disciplines agree on simple files but must diverge somewhere:
    # the population contains disallow-then-allow carve-out files.
    assert decisions > 10_000
    assert 0 <= pct < 20.0
