"""Shared fixtures for the benchmark harness.

The heavy simulated worlds (the longitudinal population with its
fifteen crawled snapshots, and the audit-tier population) are built
once per session and shared across benches; each bench then times its
own measurement pipeline and asserts the paper's bands.

Every bench writes its rendered artifact (the table/figure text the
paper reports) to ``benchmarks/output/<experiment>.txt`` so results are
inspectable after a run regardless of pytest capture settings.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.report.experiments import (
    ExperimentResult,
    LongitudinalBundle,
    build_longitudinal_bundle,
)
from repro.web.population import PopulationConfig, build_web_population

#: The default bench scale: a 1:25 model of the paper's setting.
BENCH_CONFIG = PopulationConfig()

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def longitudinal_bundle() -> LongitudinalBundle:
    """The Section 3 world with all fifteen snapshots crawled."""
    return build_longitudinal_bundle(BENCH_CONFIG)


@pytest.fixture(scope="session")
def audit_population():
    """The population whose audit tier Section 6 / 2.2 benches probe."""
    return build_web_population(BENCH_CONFIG)


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def save_artifact(directory: pathlib.Path, result: ExperimentResult) -> None:
    """Write one experiment's rendered text under benchmarks/output/."""
    path = directory / f"{result.experiment_id}.txt"
    lines = [result.title, "", result.text, "", "metrics:"]
    for name, value in sorted(result.metrics.items()):
        lines.append(f"  {name} = {value:.4f}")
    path.write_text("\n".join(lines) + "\n")
