"""Hosting providers for artist websites (Table 2).

Each provider is modeled with the affordances the paper measured by
registering accounts (Section 4.4):

* whether users can modify robots.txt (fully, via an AI toggle, via a
  search-engine toggle, or not at all),
* the provider's default robots.txt,
* provider-level active blocking (Weebly blocks ClaudeBot and
  Bytespider by UA; ArtStation and Carbonmade challenge all automated
  requests),
* whether customer sites are provider subdomains or custom domains
  pointing at provider infrastructure (the DNS-attribution signal),
* the Terms-of-Service stance on AI training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..agents.catalogs import CARBONMADE_DEFAULT_BLOCKED, SQUARESPACE_BLOCKED_AGENTS
from ..core.serialize import RobotsBuilder, add_disallow_group
from ..net.dns import ProviderInfra

__all__ = ["RobotsControl", "HostingProvider", "TOP_PROVIDERS", "provider_by_name"]


class RobotsControl:
    """How much robots.txt control a provider gives its users."""

    NONE = "none"
    FULL = "full"
    AI_TOGGLE = "ai-toggle"
    SE_TOGGLE = "se-toggle"


@dataclass(frozen=True)
class HostingProvider:
    """One hosting provider and its policy surface.

    Attributes:
        name: Provider name as in Table 2.
        share: Fraction of artist sites hosted here (Table 2 "% Sites").
        control: The robots.txt affordance exposed to users.
        se_toggle: Whether a search-engine-blocking option also exists
            (Table 2's SE superscript).
        default_blocked_agents: AI agents the *default* robots.txt
            disallows for every customer.
        toggle_blocked_agents: Agents added when a user enables the AI
            toggle (Squarespace's Appendix C.1 list).
        blocks_uas: User agents the provider actively blocks at the edge.
        challenges_automation: Whether all fingerprint-detected
            automation gets a captcha (ArtStation, Carbonmade).
        subdomain_hosting: Whether customer sites are subdomains of the
            provider apex rather than custom domains.
        tos_ai_stance: ToS position on AI training over user content.
        infra: DNS footprint for attribution.
    """

    name: str
    share: float
    control: str = RobotsControl.NONE
    se_toggle: bool = False
    default_blocked_agents: Tuple[str, ...] = ()
    toggle_blocked_agents: Tuple[str, ...] = ()
    blocks_uas: Tuple[str, ...] = ()
    challenges_automation: bool = False
    subdomain_hosting: bool = False
    tos_ai_stance: str = "silent"
    infra: Optional[ProviderInfra] = None

    def default_robots_txt(self, ai_toggle_on: bool = False) -> str:
        """The robots.txt the provider serves for a customer site.

        Args:
            ai_toggle_on: For AI-toggle providers, whether the customer
                enabled the AI-crawler blocking option.
        """
        builder = RobotsBuilder().comment(f"{self.name} managed robots.txt")
        builder.group("*").disallow("/account/", "/api/")
        text = builder.build()
        if self.default_blocked_agents:
            text = add_disallow_group(text, list(self.default_blocked_agents))
        if ai_toggle_on and self.control == RobotsControl.AI_TOGGLE:
            text = add_disallow_group(text, list(self.toggle_blocked_agents))
        return text


def _infra(name: str, octet: int, apex: Optional[str] = None) -> ProviderInfra:
    # The infra name must equal the provider name exactly: DNS
    # attribution reports infra names, and Table 2 assembly joins on
    # provider names.  The DNS label is a sanitized form.
    label = "".join(ch for ch in name.lower() if ch.isalnum())
    return ProviderInfra(
        name=name,
        apex_domains=(apex,) if apex else (),
        infra_domains=(f"ext-cust.{label}.com", f"proxy.{label}.net"),
        ip_networks=(f"198.18.{octet}.0/24",),
    )


#: The eight Table 2 providers.  Shares sum to ~65%; the remaining
#: artists use a long tail of small providers, self-hosting, and social
#: platforms (modeled as provider=None).
TOP_PROVIDERS: List[HostingProvider] = [
    HostingProvider(
        name="Squarespace",
        share=0.207,
        control=RobotsControl.AI_TOGGLE,
        se_toggle=True,
        toggle_blocked_agents=tuple(SQUARESPACE_BLOCKED_AGENTS),
        infra=_infra("Squarespace", 1),
    ),
    HostingProvider(
        name="Artstation",
        share=0.204,
        control=RobotsControl.NONE,
        challenges_automation=True,
        tos_ai_stance="no-ai-training",
        infra=_infra("Artstation", 2, apex="artstation.com"),
    ),
    HostingProvider(
        name="Wix (Paid)",
        share=0.093,
        control=RobotsControl.FULL,
        tos_ai_stance="service-improvement-training",
        infra=_infra("Wix (Paid)", 3),
    ),
    HostingProvider(
        name="Adobe Portfolio",
        share=0.048,
        control=RobotsControl.NONE,
        se_toggle=True,
        tos_ai_stance="no-ai-training",
        infra=_infra("Adobe Portfolio", 4),
    ),
    HostingProvider(
        name="Wix (Free)",
        share=0.035,
        control=RobotsControl.NONE,
        subdomain_hosting=True,
        tos_ai_stance="service-improvement-training",
        infra=_infra("Wix (Free)", 5, apex="wix.com"),
    ),
    HostingProvider(
        name="Weebly",
        share=0.031,
        control=RobotsControl.NONE,
        se_toggle=True,
        blocks_uas=("Claudebot", "Bytespider"),
        infra=_infra("Weebly", 6),
    ),
    HostingProvider(
        name="Shopify",
        share=0.017,
        control=RobotsControl.NONE,
        infra=_infra("Shopify", 7),
    ),
    HostingProvider(
        name="Carbonmade",
        share=0.015,
        control=RobotsControl.NONE,
        default_blocked_agents=tuple(CARBONMADE_DEFAULT_BLOCKED),
        challenges_automation=True,
        subdomain_hosting=True,
        tos_ai_stance="no-crawl-clause",
        infra=_infra("Carbonmade", 8, apex="carbonmade.com"),
    ),
]


def provider_by_name(name: str) -> HostingProvider:
    """Look up one of the Table 2 providers by name."""
    for provider in TOP_PROVIDERS:
        if provider.name.lower() == name.lower():
            return provider
    raise KeyError(f"unknown provider: {name}")
