"""Tests for repro.obs.series.

The load-bearing properties mirror the metrics layer: per-month sums
are exact and mergeable (snapshot / snapshot_delta / merge compose to
the serial totals, which the cross-mode SERIES.json identity test
depends on), mutation is thread-safe, the disabled path records
nothing, cardinality is bounded, and the JSON rendering is
byte-deterministic.
"""

import json
import threading

from repro.obs.metrics import metrics_disabled, set_metrics_enabled
from repro.obs.series import (
    DEFAULT_MAX_SERIES_PER_NAME,
    OVERFLOW_LABELS,
    SERIES_SCHEMA_VERSION,
    SeriesRegistry,
    export_series,
    shared_series,
    snapshot_delta,
)


class TestSeries:
    def test_add_and_value_at(self):
        registry = SeriesRegistry()
        series = registry.series("sim.requests", agent="GPTBot")
        series.add(3)
        series.add(3, 4)
        series.add(7, 2)
        assert series.value_at(3) == 5
        assert series.value_at(7) == 2
        assert series.value_at(0) == 0
        assert series.total == 7

    def test_labels_address_distinct_series(self):
        registry = SeriesRegistry()
        registry.add("sim.requests", month=1, agent="GPTBot")
        registry.add("sim.requests", month=1, amount=2, agent="CCBot")
        assert registry.value_at("sim.requests", 1, agent="GPTBot") == 1
        assert registry.value_at("sim.requests", 1, agent="CCBot") == 2
        assert registry.value_at("sim.requests", 1) == 0

    def test_label_order_is_canonical(self):
        registry = SeriesRegistry()
        a = registry.series("x", b="1", a="2")
        b = registry.series("x", a="2", b="1")
        assert a is b

    def test_points_ascending(self):
        registry = SeriesRegistry()
        series = registry.series("x")
        for month in (12, 0, 24, 3):
            series.add(month)
        assert list(series.points()) == [0, 3, 12, 24]

    def test_handle_survives_reset(self):
        registry = SeriesRegistry()
        series = registry.series("x", agent="GPTBot")
        series.add(1)
        registry.reset()
        assert series.total == 0
        series.add(2)
        assert registry.value_at("x", 2, agent="GPTBot") == 1

    def test_disabled_records_nothing(self):
        registry = SeriesRegistry()
        series = registry.series("x")
        set_metrics_enabled(False)
        series.add(1)
        registry.add("x", month=1)
        set_metrics_enabled(True)
        assert series.total == 0
        assert registry.snapshot() == {}

    def test_metrics_disabled_context_silences_series(self):
        registry = SeriesRegistry()
        with metrics_disabled():
            registry.add("x", month=1)
        registry.add("x", month=1)
        assert registry.value_at("x", 1) == 1

    def test_thread_safety(self):
        registry = SeriesRegistry()
        series = registry.series("x")

        def hammer():
            for i in range(1000):
                series.add(i % 5)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert series.total == 8000
        assert series.value_at(0) == 1600


class TestShippingProtocol:
    def test_snapshot_delta_merge_composes_to_serial_totals(self):
        # The fork-worker protocol: parent records, worker snapshots at
        # entry, records more, ships the delta; parent merge must equal
        # having recorded everything serially.
        parent = SeriesRegistry()
        parent.add("x", month=1, agent="GPTBot")

        worker = SeriesRegistry()
        worker.merge(parent)  # fork inherits parent state
        before = worker.snapshot()
        worker.add("x", month=1, agent="GPTBot")
        worker.add("x", month=2, amount=3, agent="CCBot")
        delta = snapshot_delta(worker.snapshot(), before)

        parent.merge(delta)
        assert parent.value_at("x", 1, agent="GPTBot") == 2
        assert parent.value_at("x", 2, agent="CCBot") == 3

    def test_delta_drops_untouched_series_and_months(self):
        registry = SeriesRegistry()
        registry.add("x", month=1)
        registry.add("y", month=5)
        before = registry.snapshot()
        registry.add("x", month=2)
        delta = snapshot_delta(registry.snapshot(), before)
        assert delta == {("x", ()): {2: 1}}

    def test_merge_works_while_disabled(self):
        source = SeriesRegistry()
        source.add("x", month=3, amount=2)
        target = SeriesRegistry()
        with metrics_disabled():
            target.merge(source)
        assert target.value_at("x", 3) == 2


class TestCardinality:
    def test_overflow_collapses_into_reserved_bucket(self):
        registry = SeriesRegistry(max_series_per_name=3)
        for i in range(10):
            registry.add("x", month=0, agent=f"ua-{i}")
        assert registry.series_count("x") <= 4
        overflow = registry.series("x", **dict(OVERFLOW_LABELS))
        assert overflow.total == 7  # the 7 sets beyond the cap

    def test_default_cap_is_generous(self):
        assert DEFAULT_MAX_SERIES_PER_NAME >= 1024


class TestExport:
    def test_to_json_months_ascending_and_totaled(self):
        registry = SeriesRegistry()
        registry.add("x", month=10, agent="GPTBot")
        registry.add("x", month=2, amount=4, agent="GPTBot")
        payload = registry.to_json()
        assert payload["schema_version"] == SERIES_SCHEMA_VERSION
        entry = payload["series"]["x{agent=GPTBot}"]
        # Parallel arrays, numerically ascending (JSON object keys
        # would sort "10" < "2").
        assert entry["months"] == [2, 10]
        assert entry["values"] == [4, 1]
        assert entry["total"] == 5

    def test_export_is_byte_deterministic(self, tmp_path):
        a = SeriesRegistry()
        a.add("x", month=1, agent="GPTBot")
        a.add("x", month=1, agent="CCBot")
        b = SeriesRegistry()
        b.add("x", month=1, agent="CCBot")
        b.add("x", month=1, agent="GPTBot")
        export_series(tmp_path / "a.json", a)
        export_series(tmp_path / "b.json", b)
        assert (tmp_path / "a.json").read_bytes() == (tmp_path / "b.json").read_bytes()

    def test_export_default_registry_is_shared(self, tmp_path):
        shared_series().add("x", month=1)
        export_series(tmp_path / "SERIES.json")
        payload = json.loads((tmp_path / "SERIES.json").read_text())
        assert payload["series"]["x"]["total"] == 1
