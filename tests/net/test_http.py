"""Tests for repro.net.http."""

from repro.net.http import Headers, Request, Response, split_url


class TestHeaders:
    def test_case_insensitive_get_set(self):
        headers = Headers({"User-Agent": "x"})
        assert headers["user-agent"] == "x"
        headers["USER-AGENT"] = "y"
        assert headers["User-Agent"] == "y"
        assert len(headers) == 1

    def test_contains_and_delete(self):
        headers = Headers({"X-Test": "1"})
        assert "x-test" in headers
        del headers["X-TEST"]
        assert "x-test" not in headers

    def test_get_default(self):
        assert Headers().get("missing", "d") == "d"

    def test_iteration_preserves_original_names(self):
        headers = Headers({"Content-Type": "text/html"})
        assert list(headers) == [("Content-Type", "text/html")]

    def test_copy_is_independent(self):
        original = Headers({"A": "1"})
        clone = original.copy()
        clone["A"] = "2"
        assert original["A"] == "1"

    def test_equality(self):
        assert Headers({"A": "1"}) == Headers({"a": "1"})
        assert Headers({"A": "1"}) != Headers({"a": "2"})


class TestSplitUrl:
    def test_plain(self):
        assert split_url("https://example.com/a") == ("https", "example.com", "/a")

    def test_query_preserved(self):
        assert split_url("http://e.com/a?b=1")[2] == "/a?b=1"

    def test_bare_host(self):
        assert split_url("https://e.com") == ("https", "e.com", "/")


class TestRequest:
    def test_path_normalized_to_leading_slash(self):
        assert Request(host="e.com", path="x").path == "/x"

    def test_dict_headers_coerced(self):
        request = Request(host="e.com", headers={"User-Agent": "bot"})
        assert request.user_agent == "bot"

    def test_url(self):
        assert Request(host="e.com", path="/a").url == "https://e.com/a"

    def test_path_only_strips_query(self):
        assert Request(host="e.com", path="/a?q=1").path_only == "/a"

    def test_with_user_agent_does_not_mutate(self):
        base = Request(host="e.com", headers={"User-Agent": "a"})
        other = base.with_user_agent("b")
        assert base.user_agent == "a"
        assert other.user_agent == "b"
        assert other.host == base.host


class TestResponse:
    def test_str_body_encoded(self):
        response = Response(body="héllo")
        assert isinstance(response.body, bytes)
        assert response.text == "héllo"

    def test_ok_range(self):
        assert Response(status=204).ok
        assert not Response(status=404).ok

    def test_is_redirect_requires_location(self):
        assert not Response(status=301).is_redirect
        assert Response(status=301, headers={"Location": "/x"}).is_redirect
        assert not Response(status=200, headers={"Location": "/x"}).is_redirect

    def test_content_length(self):
        assert Response(body="abcd").content_length == 4
