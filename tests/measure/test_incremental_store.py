"""The persistent incremental store: roundtrips, schema hygiene, and
the PolicyCache persistent backing."""

import json

import pytest

from repro.core.classify import Classification, RestrictionLevel, classify
from repro.core.compiled import shared_policy_cache
from repro.measure.cache import PolicyCache
from repro.measure.incremental import (
    SCHEMA_FINGERPRINT,
    IncrementalStore,
    experiment_input_key,
    params_digest,
)
from repro.report.experiments import ExperimentResult

ROBOTS = "User-agent: GPTBot\nDisallow: /\n"
AGENTS = ("GPTBot", "CCBot", "anthropic-ai")


class TestStoreRoundtrip:
    def test_classification_roundtrip_across_processes(self, tmp_path):
        store = IncrementalStore(tmp_path / "cache")
        computed = classify(ROBOTS, "GPTBot", require_explicit=True)
        store.put_classification("d" * 64, "GPTBot", True, computed)
        store.flush()
        reloaded = IncrementalStore(tmp_path / "cache")
        got = reloaded.get_classification("d" * 64, "GPTBot", True)
        assert got == computed
        assert isinstance(got.level, RestrictionLevel)

    def test_flags_roundtrip(self, tmp_path):
        store = IncrementalStore(tmp_path / "cache")
        store.put_flag("full_any", "a" * 64, "GPTBot,CCBot|1", True)
        store.put_flag("allow_any", "a" * 64, "GPTBot,CCBot", False)
        store.flush()
        reloaded = IncrementalStore(tmp_path / "cache")
        assert reloaded.get_flag("full_any", "a" * 64, "GPTBot,CCBot|1") is True
        assert reloaded.get_flag("allow_any", "a" * 64, "GPTBot,CCBot") is False
        assert reloaded.get_flag("explicit_allow", "a" * 64, "GPTBot") is None

    def test_experiment_roundtrip_and_dispositions(self, tmp_path):
        store = IncrementalStore(tmp_path / "cache")
        result = ExperimentResult(
            experiment_id="figure2",
            title="Figure 2",
            text="rendered\ntable\n",
            metrics={"pct": 12.5, "n": 40},
        )
        input_key = experiment_input_key(
            "figure2", "figure2", "bundle", "w" * 64, (("require_explicit", True),)
        )
        assert store.lookup_experiment("figure2", input_key) == ("miss", None)
        store.record_experiment("figure2", input_key, result)
        store.flush()
        reloaded = IncrementalStore(tmp_path / "cache")
        disposition, got = reloaded.lookup_experiment("figure2", input_key)
        assert disposition == "hit"
        assert got == result
        other_key = experiment_input_key(
            "figure2", "figure2", "bundle", "w" * 64, (("require_explicit", False),)
        )
        assert reloaded.lookup_experiment("figure2", other_key) == (
            "invalidated",
            None,
        )

    def test_flush_is_a_noop_when_clean(self, tmp_path):
        store = IncrementalStore(tmp_path / "cache")
        store.flush()
        assert not (tmp_path / "cache").exists()


class TestSchemaHygiene:
    def test_stale_fingerprint_self_invalidates(self, tmp_path):
        root = tmp_path / "cache"
        store = IncrementalStore(root)
        store.put_flag("full_any", "a" * 64, "k", True)
        store.flush()
        meta = json.loads((root / "meta.json").read_text())
        meta["schema_fingerprint"] = "0" * 64
        (root / "meta.json").write_text(json.dumps(meta))
        reloaded = IncrementalStore(root)
        assert reloaded.schema_invalidated
        assert reloaded.get_flag("full_any", "a" * 64, "k") is None
        assert reloaded.body_entry_count() == 0

    def test_corrupt_files_load_as_empty(self, tmp_path):
        root = tmp_path / "cache"
        store = IncrementalStore(root)
        store.put_flag("full_any", "a" * 64, "k", True)
        store.flush()
        (root / "bodies.json").write_text("{not json")
        reloaded = IncrementalStore(root)
        assert reloaded.get_flag("full_any", "a" * 64, "k") is None

    def test_fingerprint_tracks_schema_literal(self):
        assert len(SCHEMA_FINGERPRINT) == 64
        # Digest helper is canonical: key order cannot matter.
        assert params_digest({"a": 1, "b": 2}) == params_digest({"b": 2, "a": 1})


class TestPolicyCachePersistence:
    def test_warm_cache_answers_without_computing(self, tmp_path):
        root = tmp_path / "cache"
        cold = PolicyCache()
        cold.attach_store(IncrementalStore(root))
        baseline = (
            cold.classification(ROBOTS, "GPTBot"),
            cold.fully_disallows_any(ROBOTS, AGENTS),
            cold.explicitly_allows(ROBOTS, "GPTBot"),
            cold.allows_any(ROBOTS, AGENTS),
        )
        cold._store.flush()

        warm = PolicyCache()
        warm.attach_store(IncrementalStore(root))
        answers = (
            warm.classification(ROBOTS, "GPTBot"),
            warm.fully_disallows_any(ROBOTS, AGENTS),
            warm.explicitly_allows(ROBOTS, "GPTBot"),
            warm.allows_any(ROBOTS, AGENTS),
        )
        assert answers == baseline
        assert warm.persistent_hits == 4
        assert warm.misses == 0

    def test_detached_cache_still_computes(self):
        cache = PolicyCache()
        cache.attach_store(None)
        assert cache.fully_disallows_any(ROBOTS, AGENTS) is True
        assert cache.allows_any(ROBOTS, AGENTS) is False

    def test_digest_reuses_compile_cache_stamp(self):
        policy = shared_policy_cache().policy(ROBOTS)
        assert policy.content_digest is not None
        cache = PolicyCache()
        assert cache._digest(policy, ROBOTS) == policy.content_digest
