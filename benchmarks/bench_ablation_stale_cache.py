"""Ablation: robots.txt caching windows (Section 8.2).

The paper warns that even compliant crawlers "may cache robots.txt and
may continue to fetch content even after it has changed".  This
ablation quantifies the exposure window: a site tightens its robots.txt
at a known time, and crawlers with different cache TTLs keep visiting.
The number of post-change content fetches grows with the TTL -- zero
for a TTL-free crawler, proportional to the TTL otherwise.
"""

from conftest import save_artifact

from repro.crawlers.engine import Crawler
from repro.crawlers.profiles import CrawlerProfile
from repro.net.server import Website, render_page
from repro.net.transport import Network
from repro.report.experiments import ExperimentResult
from repro.report.tables import render_table

DAY = 86_400.0


def run_stale_cache_ablation():
    ttls = [0.0, 1 * DAY, 7 * DAY, 30 * DAY]
    exposure = {}
    for ttl in ttls:
        network = Network()
        site = Website("tightening.example")
        site.add_page("/", render_page("Home", links=["/art"]))
        site.add_page("/art", render_page("Art"))
        site.set_robots_txt("User-agent: *\nDisallow:\n")
        network.register(site)
        crawler = Crawler(
            CrawlerProfile.respectful("CachedBot", robots_cache_ttl=ttl), network
        )
        # Day 0: crawl under the permissive policy (cache warms).
        network.now = 0.0
        crawler.fetch("tightening.example", "/art")
        # Day 1: the site tightens its policy.
        site.set_robots_txt("User-agent: *\nDisallow: /\n")
        # Days 1..45: one fetch per day.
        violations = 0
        for day in range(1, 46):
            network.now = day * DAY
            result = crawler.fetch("tightening.example", "/art")
            if result.content_fetches:
                violations += 1
        exposure[ttl] = violations
    return exposure


def test_ablation_stale_cache(benchmark, artifact_dir):
    exposure = benchmark.pedantic(run_stale_cache_ablation, rounds=1, iterations=1)

    rows = [
        (f"{ttl / DAY:.0f} days" if ttl else "no caching", violations)
        for ttl, violations in exposure.items()
    ]
    result = ExperimentResult(
        "ablation_stale_cache",
        "Ablation: robots.txt cache TTL vs post-change exposure (Section 8.2)",
        render_table(
            ["robots.txt cache TTL", "disallowed fetches after the change"],
            rows,
        ),
        {f"violations_ttl_{int(ttl / DAY)}d": float(v) for ttl, v in exposure.items()},
    )
    save_artifact(artifact_dir, result)
    print(result.text)

    ordered = [exposure[ttl] for ttl in sorted(exposure)]
    # No caching -> no exposure; exposure grows monotonically with TTL.
    assert ordered[0] == 0
    assert ordered == sorted(ordered)
    assert exposure[30 * DAY] > exposure[7 * DAY] > exposure[1 * DAY] >= 0
