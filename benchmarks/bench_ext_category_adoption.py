"""Extension: AI-restriction adoption by editorial category.

Paper-adjacent shape (Fletcher [32], Section 3.4): news sites adopt
robots.txt restrictions far more than average; misinformation sites --
which court LLM ingestion -- barely adopt at all.
"""

from conftest import save_artifact

from repro.report.experiments import run_ext_adoption_by_category


def test_ext_category_adoption(benchmark, longitudinal_bundle, artifact_dir):
    result = benchmark.pedantic(
        run_ext_adoption_by_category, args=(longitudinal_bundle,),
        rounds=1, iterations=1,
    )
    save_artifact(artifact_dir, result)
    print(result.text)

    metrics = result.metrics
    assert metrics["pct_news"] > metrics["pct_shopping"]
    assert metrics["pct_news"] > metrics["pct_blog"]
    # Misinformation sites are a tiny category (~2% of the population),
    # so allow wide sampling noise around their low propensity.
    assert metrics["pct_misinfo"] < metrics["pct_news"]
    assert metrics["pct_misinfo"] < 15.0
