"""Section 6.1-6.2: detecting active blocking of AI crawlers.

The detector follows the paper's user-agent-differential methodology:

1. **Control case** -- visit each site with a headless browser
   presenting a typical Chrome UA (our simulated headless client leaks
   automation fingerprint signals, exactly like Selenium-driven
   Chromium).  Sites that do not return a 200 are excluded: we cannot
   tell UA-blocking apart from tool-blocking there.
2. **AI case** -- revisit with the ClaudeBot and anthropic-ai user
   agents (the two most-restricted agents without published IPs).
3. **Decision** -- a site actively blocks when status codes differ, a
   transport exception appears, or the content length changes
   significantly between control and AI crawls (block-page detection
   following Jones et al.).

A single transient connection reset is indistinguishable from a
deliberate drop in one observation, so the decision step confirms
before it accuses: a probe outcome that *would* flip the verdict is
re-probed per :class:`ConfirmationPolicy` (bounded attempts, fixed
spacing charged to simulated time).  Only a *repeatable* differential
yields ``blocks_ai=True`` -- transient faults (exercised by
``repro.net.chaos`` campaigns) produce zero false positives.  The
policy used is recorded on every verdict so downstream tables can
state the confirmation standard their numbers were held to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..agents.useragent import DEFAULT_BROWSER_UA
from ..net import chaos
from ..net.errors import NetError
from ..net.http import Headers, Request, Response
from ..net.transport import Network
from ..proxy.fingerprint import AUTOMATION_HEADER

__all__ = [
    "ProbeResult",
    "SiteBlockingVerdict",
    "ConfirmationPolicy",
    "DEFAULT_CONFIRMATION",
    "NO_CONFIRMATION",
    "probe",
    "detect_active_blocking",
    "survey_active_blocking",
    "BlockingSurvey",
]

#: The AI user agents used for the differential (Section 6.1).
AI_PROBE_UAS = ("Claudebot/1.0", "anthropic-ai")

#: Relative content-length difference treated as "significant".
LENGTH_DELTA_THRESHOLD = 0.30


@dataclass(frozen=True)
class ConfirmationPolicy:
    """How a verdict-flipping probe outcome must be confirmed.

    Attributes:
        attempts: Maximum confirmation re-probes for one suspicious
            outcome (0 = accept the first observation unconfirmed).
        spacing_seconds: Simulated seconds between re-probes, charged
            to ``network.now`` -- real tooling spaces retries so a
            momentarily-overloaded origin is not re-hit instantly.
    """

    attempts: int = 2
    spacing_seconds: float = 5.0


#: The default standard: up to two spaced re-probes.
DEFAULT_CONFIRMATION = ConfirmationPolicy()

#: Single-observation mode (the pre-confirmation behavior).
NO_CONFIRMATION = ConfirmationPolicy(attempts=0, spacing_seconds=0.0)


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one probe request.

    Attributes:
        status: HTTP status (0 on transport error).
        content_length: Body size in bytes.
        error: Transport error text, if any.
    """

    status: int
    content_length: int
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.error is not None


def probe(
    network: Network,
    host: str,
    user_agent: str,
    as_headless_browser: bool = True,
    path: str = "/",
) -> ProbeResult:
    """Visit ``host`` once with ``user_agent`` and summarize the result.

    The probe client is a headless browser under automation, so it
    carries fingerprint signals regardless of the UA it presents --
    matching the paper's Selenium/Chromium tooling.
    """
    headers = {"User-Agent": user_agent}
    if as_headless_browser:
        headers[AUTOMATION_HEADER] = "webdriver,headless"
    try:
        response = network.request(
            Request(host=host, path=path, headers=Headers(headers))
        )
    except NetError as exc:
        return ProbeResult(status=0, content_length=0, error=str(exc))
    return ProbeResult(status=response.status, content_length=response.content_length)


@dataclass
class SiteBlockingVerdict:
    """Per-site outcome of the differential measurement.

    Attributes:
        host: The site probed.
        control: Control-case probe result (the final observation when
            transport failures were retried).
        ai_probes: Final results for each AI UA probed.
        excluded: The control case failed (site blocks the tool), so no
            inference is made.
        blocks_ai: Whether the site actively blocks based on AI UAs.
        confirmation: The policy suspicious outcomes were held to.
        probe_attempts: Probes actually issued per case (``"control"``
            plus one entry per AI UA); >1 means confirmation fired.
    """

    host: str
    control: ProbeResult
    ai_probes: Dict[str, ProbeResult] = field(default_factory=dict)
    excluded: bool = False
    blocks_ai: bool = False
    confirmation: ConfirmationPolicy = NO_CONFIRMATION
    probe_attempts: Dict[str, int] = field(default_factory=dict)


def _differs(control: ProbeResult, ai: ProbeResult) -> bool:
    if ai.failed:
        return True
    if ai.status != control.status:
        return True
    if control.content_length == 0:
        return ai.content_length != 0
    delta = abs(ai.content_length - control.content_length) / control.content_length
    return delta > LENGTH_DELTA_THRESHOLD


def detect_active_blocking(
    network: Network,
    host: str,
    ai_user_agents: Sequence[str] = AI_PROBE_UAS,
    confirmation: Optional[ConfirmationPolicy] = None,
) -> SiteBlockingVerdict:
    """Run the control/AI differential against one site.

    *confirmation* defaults to :data:`DEFAULT_CONFIRMATION` (or
    :data:`NO_CONFIRMATION` while retries are globally disabled via
    :func:`repro.net.chaos.retries_disabled`).  Suspicious outcomes are
    re-probed before they can flip the verdict:

    * A control probe that fails at the *transport* level is retried --
      a transient reset must not exclude the site.  A non-200 HTTP
      response is accepted at face value (the server answered;
      tool-blocking is deliberate).
    * An AI probe that differs from the control is re-probed.  If any
      re-probe agrees with the control, the differential was transient
      and the site is not accused; only a differential that persists
      through every attempt sets ``blocks_ai``.
    """
    if confirmation is None:
        confirmation = (
            DEFAULT_CONFIRMATION if chaos.retries_enabled() else NO_CONFIRMATION
        )
    control = probe(network, host, DEFAULT_BROWSER_UA)
    attempts = 1
    while control.failed and attempts <= confirmation.attempts:
        network.now += confirmation.spacing_seconds
        control = probe(network, host, DEFAULT_BROWSER_UA)
        attempts += 1
    verdict = SiteBlockingVerdict(
        host=host, control=control, confirmation=confirmation
    )
    verdict.probe_attempts["control"] = attempts
    if control.failed or control.status != 200:
        verdict.excluded = True
        return verdict
    for user_agent in ai_user_agents:
        result = probe(network, host, user_agent)
        attempts = 1
        while _differs(control, result) and attempts <= confirmation.attempts:
            network.now += confirmation.spacing_seconds
            result = probe(network, host, user_agent)
            attempts += 1
        verdict.ai_probes[user_agent] = result
        verdict.probe_attempts[user_agent] = attempts
        if _differs(control, result):
            verdict.blocks_ai = True
    return verdict


@dataclass
class BlockingSurvey:
    """Aggregate results over a site list (the Section 6.2 numbers).

    Attributes:
        verdicts: Per-site verdicts in input order.
    """

    verdicts: List[SiteBlockingVerdict] = field(default_factory=list)

    @property
    def n_sites(self) -> int:
        return len(self.verdicts)

    @property
    def n_excluded(self) -> int:
        """Sites that inherently block the measurement tool (~15%)."""
        return sum(1 for v in self.verdicts if v.excluded)

    @property
    def n_blocking(self) -> int:
        """Sites inferred to actively block the AI UAs (~14% of all)."""
        return sum(1 for v in self.verdicts if v.blocks_ai)

    def blocking_hosts(self) -> List[str]:
        return [v.host for v in self.verdicts if v.blocks_ai]

    def excluded_hosts(self) -> List[str]:
        return [v.host for v in self.verdicts if v.excluded]


def survey_active_blocking(
    network: Network,
    hosts: Sequence[str],
    ai_user_agents: Sequence[str] = AI_PROBE_UAS,
    confirmation: Optional[ConfirmationPolicy] = None,
) -> BlockingSurvey:
    """Run the detector over *hosts* and aggregate."""
    survey = BlockingSurvey()
    for host in hosts:
        survey.verdicts.append(
            detect_active_blocking(
                network, host, ai_user_agents, confirmation=confirmation
            )
        )
    return survey
