"""Section 6.3: Cloudflare's Block AI Bots feature.

Paper shape: the grey-box probe recovers 17 blocked UA patterns; ~20%
of top sites are Cloudflare-hosted; the Figure 7 procedure conclusively
determines ~93% of them; only ~5.7% of determined zones enable Block AI
Bots; enablers restrict AI crawlers in robots.txt at roughly twice the
rate of other Cloudflare sites (24% vs 12%).
"""

from conftest import save_artifact

from repro.report.experiments import run_sec63_cloudflare


def test_sec63_cloudflare_audit(benchmark, audit_population, artifact_dir):
    result = benchmark.pedantic(
        run_sec63_cloudflare,
        kwargs={"population": audit_population},
        rounds=1, iterations=1,
    )
    save_artifact(artifact_dir, result)
    print(result.text)

    metrics = result.metrics
    # Grey-box coverage: every Table 1 UA in the C.3 list plus the
    # generic-list hits; the count is in the upper teens like the
    # paper's 17 (our candidate list covers a subset of C.3's patterns).
    assert 8 <= metrics["n_greybox_blocked_uas"] <= 25
    assert 13.0 <= metrics["pct_cf_hosted"] <= 27.0        # paper: 20%
    assert metrics["pct_determined"] >= 85.0               # paper: 93%
    assert 2.0 <= metrics["pct_enabled_of_determined"] <= 12.0  # paper: 5.7%
    # Enablers show stronger robots.txt intent than non-enablers.
    assert metrics["robots_rate_enabled"] > metrics["robots_rate_off"]
