"""Section 4.4: the artist-website measurement study.

Given the artist population, this pipeline performs the paper's steps
over the network (not by peeking at the generator's attributes):

1. attribute each site to a hosting provider via DNS (subdomain of the
   provider apex, or A/CNAME into provider infrastructure),
2. fetch each site's robots.txt and classify whether it disallows any
   of the Table 1 AI crawlers,
3. probe provider edge behavior (UA blocking, automation challenges),
4. assemble Table 2: provider share, edit affordances, % disallowing
   AI crawlers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..agents.darkvisitors import AI_USER_AGENT_TOKENS
from ..core.classify import classify
from ..net.dns import DnsZone, ProviderInfra
from ..net.errors import NetError
from ..net.http import Headers, Request
from ..net.transport import Network
from ..web.artists import ArtistPopulation
from ..web.providers import TOP_PROVIDERS, HostingProvider, RobotsControl

__all__ = ["ProviderRow", "ArtistStudy", "measure_artist_sites", "edit_option_label"]


def edit_option_label(provider: HostingProvider) -> str:
    """Table 2's "Edit?" cell for a provider (e.g. ``"No [AI,SE]"``)."""
    if provider.control == RobotsControl.FULL:
        return "Yes"
    marks = []
    if provider.control == RobotsControl.AI_TOGGLE:
        marks.append("AI")
    if provider.se_toggle:
        marks.append("SE")
    suffix = f" [{','.join(marks)}]" if marks else ""
    return f"No{suffix}"


@dataclass
class ProviderRow:
    """One Table 2 row, as measured.

    Attributes:
        provider: Provider name.
        n_sites: Artist sites attributed to the provider.
        pct_sites: Share of all artist sites (percent).
        edit_option: The robots.txt affordance label.
        n_disallow_ai: Attributed sites whose robots.txt disallows at
            least one Table 1 AI crawler.
        pct_disallow_ai: Percentage of attributed sites doing so.
        blocks_uas: AI user agents the provider edge actively blocks
            (probed, not configured).
        challenges_automation: Whether automated requests get challenged.
        tos_ai_stance: The provider's Terms-of-Service position on AI
            training over user content (Section 4.4's ToS review).
    """

    provider: str
    n_sites: int
    pct_sites: float
    edit_option: str
    n_disallow_ai: int
    pct_disallow_ai: float
    blocks_uas: List[str] = field(default_factory=list)
    challenges_automation: bool = False
    tos_ai_stance: str = "silent"


@dataclass
class ArtistStudy:
    """Full output of the artist measurement."""

    rows: List[ProviderRow]
    n_artists: int
    n_unattributed: int

    def row(self, provider: str) -> ProviderRow:
        """The row for *provider* (KeyError when absent)."""
        for row in self.rows:
            if row.provider == provider:
                return row
        raise KeyError(provider)


def _site_disallows_ai(network: Network, host: str) -> bool:
    """Fetch robots.txt over HTTP and classify against the 24 agents.

    The fetch presents as a regular browser: providers that challenge
    automated requests (ArtStation, Carbonmade) still serve robots.txt
    to ordinary visitors, and the study needs to read it there.
    """
    from ..agents.useragent import DEFAULT_BROWSER_UA

    try:
        response = network.request(
            Request(
                host=host,
                path="/robots.txt",
                headers=Headers({"User-Agent": DEFAULT_BROWSER_UA}),
            )
        )
    except NetError:
        return False
    if response.status != 200:
        return False
    text = response.text
    return any(
        classify(text, token).level.disallows for token in AI_USER_AGENT_TOKENS
    )


def _probe_edge_blocking(network: Network, host: str) -> List[str]:
    """Which Table 1 crawler UAs the site's edge blocks outright."""
    blocked: List[str] = []
    for token in ("Claudebot", "Bytespider", "GPTBot"):
        try:
            response = network.request(
                Request(host=host, path="/", headers=Headers({"User-Agent": token}))
            )
        except NetError:
            blocked.append(token)
            continue
        if response.status == 403:
            blocked.append(token)
    return blocked


def _probe_automation_challenge(network: Network, host: str) -> bool:
    from ..proxy.challenges import PageKind, classify_page
    from ..proxy.fingerprint import AUTOMATION_HEADER

    try:
        response = network.request(
            Request(
                host=host,
                path="/",
                headers=Headers(
                    {
                        "User-Agent": "Mozilla/5.0 (X11; Linux x86_64) Chrome/129 Safari/537.36",
                        AUTOMATION_HEADER: "webdriver",
                    }
                ),
            )
        )
    except NetError:
        return False
    return classify_page(response.text) in (PageKind.CAPTCHA, PageKind.CHALLENGE)


def measure_artist_sites(
    population: ArtistPopulation,
    network: Optional[Network] = None,
    providers: Sequence[HostingProvider] = tuple(TOP_PROVIDERS),
) -> ArtistStudy:
    """Run the full Section 4.4 measurement and assemble Table 2."""
    if network is None:
        network = Network()
        population.materialize(network)

    infra: List[ProviderInfra] = [p.infra for p in providers if p.infra]
    by_provider: Dict[str, List[str]] = {p.name: [] for p in providers}
    unattributed = 0
    for site in population.sites:
        name = population.zone.attribute(site.host, infra)
        if name is None:
            unattributed += 1
            continue
        # ProviderInfra names match HostingProvider names.
        by_provider.setdefault(name, []).append(site.host)

    total = len(population.sites)
    rows: List[ProviderRow] = []
    for provider in providers:
        hosts = by_provider.get(provider.name, [])
        n_disallow = sum(1 for host in hosts if _site_disallows_ai(network, host))
        sample_host = hosts[0] if hosts else None
        blocks = _probe_edge_blocking(network, sample_host) if sample_host else []
        challenges = (
            _probe_automation_challenge(network, sample_host) if sample_host else False
        )
        rows.append(
            ProviderRow(
                provider=provider.name,
                n_sites=len(hosts),
                pct_sites=100.0 * len(hosts) / total if total else 0.0,
                edit_option=edit_option_label(provider),
                n_disallow_ai=n_disallow,
                pct_disallow_ai=100.0 * n_disallow / len(hosts) if hosts else 0.0,
                blocks_uas=blocks,
                challenges_automation=challenges,
                tos_ai_stance=provider.tos_ai_stance,
            )
        )
    rows.sort(key=lambda r: -r.pct_sites)
    return ArtistStudy(rows=rows, n_artists=total, n_unattributed=unattributed)
