"""Content-addressed classification cache for the measurement pipelines.

The Section 3 figures classify every site's robots.txt under up to ~24
AI user agents across fifteen snapshots.  Most sites never change
between snapshots and many sites share operator-template bodies, so the
number of *distinct* (body, agent) classification problems is a small
fraction of the number of (domain, snapshot, agent) queries.

:class:`PolicyCache` memoizes the three classification primitives the
pipelines use -- :func:`~repro.core.classify.classify`,
:func:`~repro.core.classify.fully_disallows_any`, and
:func:`~repro.core.classify.explicitly_allows` -- keyed by the
content-addressed compiled policy (one per unique body, via
:class:`~repro.core.compiled.CompiledPolicyCache`) plus the query
parameters.  Results are the uncached functions' results, computed once.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

from ..core.classify import (
    Classification,
    RestrictionLevel,
    classify,
    explicitly_allows,
)
from ..core.compiled import (
    CompiledPolicyCache,
    CompiledRobots,
    policy_digest,
    shared_policy_cache,
)

if False:  # typing-only; avoids a runtime import cycle
    from .incremental import IncrementalStore

__all__ = ["PolicyCache"]


class PolicyCache:
    """Memoized robots.txt classification over unique bodies.

    All query methods accept ``None`` for "the site serves no
    robots.txt" and answer exactly like their uncached counterparts.
    """

    def __init__(self, compiled: Optional[CompiledPolicyCache] = None):
        self._compiled = compiled if compiled is not None else shared_policy_cache()
        # Keys hold the compiled policy object itself (identity-hashed),
        # which both pins it alive and avoids re-hashing body text.
        self._classifications: Dict[
            Tuple[CompiledRobots, str, bool], Classification
        ] = {}
        self._full_any: Dict[Tuple[CompiledRobots, Tuple[str, ...], bool], bool] = {}
        self._explicit_allow: Dict[Tuple[CompiledRobots, str], bool] = {}
        self._allow_any: Dict[Tuple[CompiledRobots, Tuple[str, ...]], bool] = {}
        # Plain ints on the hot path; exported as gauges via publish()
        # (memo probe tallies are process-local observations).
        self.hits = 0
        self.misses = 0
        self.persistent_hits = 0
        self._store: Optional["IncrementalStore"] = None

    def attach_store(self, store: Optional["IncrementalStore"]) -> None:
        """Back this memo with a persistent incremental store.

        On a memo miss the cache probes the store by the body's SHA-256
        content address before computing; computed verdicts are written
        back.  Persistent answers are bit-identical to computed ones
        (the store holds prior runs' computed results keyed by
        content), so attaching a store can never change outputs -- only
        skip work.  Pass ``None`` to detach.
        """
        self._store = store

    @property
    def stats(self) -> Dict[str, int]:
        """Memo-probe tallies plus current memo occupancy."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "persistent_hits": self.persistent_hits,
            "entries": (
                len(self._classifications)
                + len(self._full_any)
                + len(self._explicit_allow)
                + len(self._allow_any)
            ),
        }

    @staticmethod
    def _digest(policy: CompiledRobots, text: Union[str, bytes]) -> str:
        """The body's content address, reusing the compile-cache stamp."""
        digest = policy.content_digest
        return digest if digest is not None else policy_digest(text)

    def publish(self, registry=None, prefix: str = "measure.policy_cache") -> None:
        """Export the memo tallies to a metrics registry as gauges.

        Gauges, not counters: shared-cache hit/miss splits depend on
        which worker warmed the memo first, so they are process-local
        observations outside the cross-mode determinism contract.
        """
        from ..obs.metrics import shared_registry

        registry = registry if registry is not None else shared_registry()
        stats = self.stats
        for name, value in stats.items():
            registry.set_gauge(f"{prefix}.{name}", value)
        probes = stats["hits"] + stats["misses"]
        registry.set_gauge(
            f"{prefix}.hit_rate", stats["hits"] / probes if probes else 0.0
        )

    def policy(self, text: Union[str, bytes]) -> CompiledRobots:
        """The shared compiled policy for *text* (parsed at most once)."""
        return self._compiled.policy(text)

    def classification(
        self,
        text: Optional[Union[str, bytes]],
        user_agent: str,
        require_explicit: bool = True,
    ) -> Classification:
        """Memoized :func:`~repro.core.classify.classify`."""
        if text is None:
            return classify(None, user_agent, require_explicit=require_explicit)
        policy = self.policy(text)
        key = (policy, user_agent, require_explicit)
        cached = self._classifications.get(key)
        if cached is None:
            if self._store is not None:
                cached = self._store.get_classification(
                    self._digest(policy, text), user_agent, require_explicit
                )
                if cached is not None:
                    self.persistent_hits += 1
                    self._classifications[key] = cached
                    return cached
            self.misses += 1
            cached = classify(policy, user_agent, require_explicit=require_explicit)
            self._classifications[key] = cached
            if self._store is not None:
                self._store.put_classification(
                    self._digest(policy, text), user_agent, require_explicit, cached
                )
        else:
            self.hits += 1
        return cached

    def fully_disallows_any(
        self,
        text: Optional[Union[str, bytes]],
        user_agents: Sequence[str],
        require_explicit: bool = True,
    ) -> bool:
        """Memoized :func:`~repro.core.classify.fully_disallows_any`."""
        if text is None:
            return False
        policy = self.policy(text)
        agents = tuple(user_agents)
        key = (policy, agents, require_explicit)
        cached = self._full_any.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        if self._store is not None:
            params = _agents_key(agents, require_explicit)
            stored = self._store.get_flag(
                "full_any", self._digest(policy, text), params
            )
            if stored is not None:
                self.persistent_hits += 1
                self._full_any[key] = stored
                return stored
        self.misses += 1
        cached = any(
            self.classification(text, agent, require_explicit).level
            is RestrictionLevel.FULL
            for agent in agents
        )
        self._full_any[key] = cached
        if self._store is not None:
            self._store.put_flag(
                "full_any",
                self._digest(policy, text),
                _agents_key(agents, require_explicit),
                cached,
            )
        return cached

    def explicitly_allows(
        self, text: Optional[Union[str, bytes]], user_agent: str
    ) -> bool:
        """Memoized :func:`~repro.core.classify.explicitly_allows`."""
        if text is None:
            return False
        policy = self.policy(text)
        key = (policy, user_agent)
        cached = self._explicit_allow.get(key)
        if cached is None:
            if self._store is not None:
                stored = self._store.get_flag(
                    "explicit_allow", self._digest(policy, text), user_agent
                )
                if stored is not None:
                    self.persistent_hits += 1
                    self._explicit_allow[key] = stored
                    return stored
            self.misses += 1
            cached = explicitly_allows(policy, user_agent)
            self._explicit_allow[key] = cached
            if self._store is not None:
                self._store.put_flag(
                    "explicit_allow", self._digest(policy, text), user_agent, cached
                )
        else:
            self.hits += 1
        return cached

    def allows_any(
        self, text: Optional[Union[str, bytes]], user_agents: Sequence[str]
    ) -> bool:
        """Whether the body explicitly allows at least one of *user_agents*.

        The Figure 4 allow sweep, memoized per distinct body (bodies
        repeat across snapshots, so the sweep runs once per body per
        process -- or once ever, with a persistent store attached).
        """
        if text is None:
            return False
        policy = self.policy(text)
        agents = tuple(user_agents)
        key = (policy, agents)
        cached = self._allow_any.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        if self._store is not None:
            params = _agents_key(agents)
            stored = self._store.get_flag(
                "allow_any", self._digest(policy, text), params
            )
            if stored is not None:
                self.persistent_hits += 1
                self._allow_any[key] = stored
                return stored
        self.misses += 1
        cached = any(self.explicitly_allows(text, agent) for agent in agents)
        self._allow_any[key] = cached
        if self._store is not None:
            self._store.put_flag(
                "allow_any", self._digest(policy, text), _agents_key(agents), cached
            )
        return cached


def _agents_key(agents: Tuple[str, ...], require_explicit: Optional[bool] = None) -> str:
    """A stable sub-key for an agent-set query's parameters."""
    head = ",".join(agents)
    return head if require_explicit is None else f"{head}|{int(require_explicit)}"
