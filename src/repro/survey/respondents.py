"""Synthetic survey respondents calibrated to the paper's marginals.

The user study itself cannot be re-run offline, so the generator
produces a respondent pool whose *marginal* distributions match what
Section 4 and Appendix D report -- professional share, income duration
(Table 5), geography (Table 6), art types (Table 7), term familiarity
(Table 8), robots.txt awareness (59% never heard), willingness (97%
would enable blocking), distrust (77%), and the personal-website
cross-tabs (38 aware site owners, 27 non-users, 9 without control).

The *analysis* pipeline (:mod:`repro.survey.analysis`) recomputes every
statistic from the generated answers -- including re-coding the
generated open text with the Appendix D.3 codebooks -- so downstream
numbers are measured, not copied.

Low-quality responses (too short, straight-lined, incomplete) are
generated too, exercising the paper's validity filtering step.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..util import seeded_rng
from .coding import (
    ACTIONS_CODEBOOK,
    DISTRUST_CODEBOOK,
    ENABLE_CODEBOOK,
    NO_ADOPT_CODEBOOK,
    Codebook,
)
from .instrument import (
    ACTION_OPTIONS,
    ART_TYPES,
    DURATION_OPTIONS,
    FAMILIARITY_ITEMS,
    IMPACT_5,
    INCOME_OPTIONS,
    LIKERT_5,
)

__all__ = ["Respondent", "generate_respondents", "filter_valid"]


@dataclass
class Respondent:
    """One survey response.

    Attributes:
        rid: Respondent id.
        answers: Answers keyed by question id.  Multi-choice answers
            are tuples; the familiarity grid (Q6) is a dict item->1..5.
        completion_minutes: Self-reported completion time.
        low_quality: Ground-truth flag for generated junk responses
            (the validity filter must *detect* them without this flag).
    """

    rid: int
    answers: Dict[str, object] = field(default_factory=dict)
    completion_minutes: float = 12.0
    low_quality: bool = False


# -- quota allocations (exact, from Appendix D.2) -------------------------------

_CONTINENT_QUOTA: List[Tuple[str, str, int]] = [
    ("North America", "United States", 89),
    ("North America", "Canada", 15),
    ("North America", "Mexico", 5),
    ("Europe", "United Kingdom", 18),
    ("Europe", "Poland", 5),
    ("Europe", "Germany", 5),
    ("Europe", "France", 10),
    ("Europe", "Spain", 8),
    ("Europe", "Italy", 6),
    ("Asia", "Philippines", 9),
    ("Asia", "Japan", 6),
    ("Asia", "India", 6),
    ("South America", "Brazil", 12),
    ("South America", "Argentina", 6),
    ("Africa", "South Africa", 2),
    ("Oceania", "Australia", 1),
]

_DURATION_QUOTA = [
    (DURATION_OPTIONS[0], 17),
    (DURATION_OPTIONS[1], 68),
    (DURATION_OPTIONS[2], 44),
    (DURATION_OPTIONS[3], 47),
]

#: Art-type inclusion probabilities targeting Table 7's top-five counts
#: (Illustration 163, Digital 2D 143, Character design 99, Traditional
#: painting 78, Concept art 68 out of 203).
_ART_TYPE_P = {
    "Illustration": 0.80,
    "Digital 2D": 0.70,
    "Character and Creature Design": 0.49,
    "Traditional Painting and Drawing": 0.38,
    "Concept Art": 0.33,
    "Digital 3D": 0.18,
    "Anime and Manga Art": 0.15,
    "Game Art": 0.12,
    "Comicbook Art": 0.10,
    "Photography": 0.07,
    "Environmental": 0.07,
    "Abstract": 0.05,
    "Traditional Sculpting": 0.04,
    "Matte Painting": 0.04,
    "Items Props": 0.04,
    "Other": 0.05,
}

#: Familiarity score distributions targeting Table 8's means.
_FAMILIARITY_DIST = {
    "Website": ((1, 0.01), (2, 0.02), (3, 0.06), (4, 0.18), (5, 0.73)),          # ~4.60
    "Search engine": ((1, 0.01), (2, 0.03), (3, 0.12), (4, 0.28), (5, 0.56)),    # ~4.35
    "Generative AI": ((1, 0.03), (2, 0.08), (3, 0.22), (4, 0.31), (5, 0.36)),    # ~3.89
    "Robots.txt": ((1, 0.50), (2, 0.20), (3, 0.15), (4, 0.11), (5, 0.04)),       # ~1.99
    "Nearest diffusion tree": ((1, 0.66), (2, 0.20), (3, 0.08), (4, 0.04), (5, 0.02)),  # ~1.56
}


def _draw(rng: random.Random, dist: Sequence[Tuple[object, float]]) -> object:
    roll = rng.random()
    acc = 0.0
    for value, p in dist:
        acc += p
        if roll < acc:
            return value
    return dist[-1][0]


def _theme_sentence(rng: random.Random, codebook: Codebook, theme_name: Optional[str] = None) -> str:
    themes = codebook.themes
    if theme_name is not None:
        theme = next(t for t in themes if t.name == theme_name)
    else:
        theme = rng.choice(themes)
    keyword = rng.choice(theme.keywords)
    openers = ["Honestly, ", "For me, ", "I think ", "Mostly because ", ""]
    return f"{rng.choice(openers)}{theme.example} ({keyword})."


def _allocation(rng: random.Random, quota: Sequence[Tuple[object, int]], total: int) -> List[object]:
    values: List[object] = []
    for value, count in quota:
        values.extend([value] * count)
    if len(values) < total:
        values.extend([quota[-1][0]] * (total - len(values)))
    rng.shuffle(values)
    return values[:total]


def generate_respondents(
    seed: int = 42, n_valid: int = 203, n_invalid: int = 27
) -> List[Respondent]:
    """Generate the respondent pool (valid + low-quality responses)."""
    rng = seeded_rng(seed, "survey")

    continents = _allocation(
        rng, [((c, country), n) for c, country, n in _CONTINENT_QUOTA], n_valid
    )
    durations = _allocation(rng, _DURATION_QUOTA, 176)

    # Exactly 176 respondents make money from art; 136 are professional.
    makes_money = [True] * 176 + [False] * (n_valid - 176)
    rng.shuffle(makes_money)
    professional = [True] * 136 + [False] * (n_valid - 136)
    rng.shuffle(professional)
    # 84 heard of robots.txt; exactly 38 of them maintain personal sites.
    heard = [True] * 84 + [False] * (n_valid - 84)
    rng.shuffle(heard)
    heard_site_flags = [True] * 38 + [False] * (84 - 38)
    rng.shuffle(heard_site_flags)

    respondents: List[Respondent] = []
    duration_iter = iter(durations)
    heard_site_iter = iter(heard_site_flags)
    aware_site_seen = 0
    non_user_quota = 27         # of the 38 aware site owners, 27 do not use it
    no_control_quota = 9        # and 9 report having no control at all

    for rid in range(n_valid):
        r = Respondent(rid=rid)
        a = r.answers
        continent, country = continents[rid]
        a["Q1"] = "Yes" if professional[rid] else "No"
        if makes_money[rid]:
            a["Q2"] = rng.choice(INCOME_OPTIONS[1:])
            a["Q3"] = next(duration_iter)
        else:
            a["Q2"] = INCOME_OPTIONS[0]
        a["Q4"] = tuple(
            t for t in ART_TYPES if rng.random() < _ART_TYPE_P.get(t, 0.05)
        ) or ("Illustration",)
        a["Q5"] = country
        a["continent"] = continent
        a["Q6"] = {
            item: _draw(rng, _FAMILIARITY_DIST[item]) for item in FAMILIARITY_ITEMS
        }
        a["Q7"] = "Yes"

        platforms = ["Social Media"]
        if rng.random() < 0.75:
            platforms.append("Art Platforms")
        heard_this = heard[rid]
        if heard_this:
            has_site = next(heard_site_iter)
        else:
            has_site = rng.random() < 0.40
        if has_site:
            platforms.append("Personal Website")
            a["Q9"] = rng.choice(
                ["Paid service", "Paid service", "Free service", "I have my own server"]
            )
        a["Q8"] = tuple(platforms)

        a["Q13"] = rng.choice(
            ["Somewhat familiar", "Moderately familiar", "Very familiar"]
        )
        a["Q15"] = _theme_sentence(rng, ENABLE_CODEBOOK)
        a["Q16"] = _draw(
            rng,
            (
                (IMPACT_5[0], 0.06), (IMPACT_5[1], 0.15), (IMPACT_5[2], 0.25),
                (IMPACT_5[3], 0.30), (IMPACT_5[4], 0.24),
            ),
        )

        took_action = rid < 169  # 83% took action (shuffled below via rid mix)
        a["Q17"] = "Yes" if took_action else "No"
        if took_action:
            actions = set()
            if rng.random() < 0.71:
                actions.add("Using Glaze to protect my art before posting")
            if rng.random() < 0.45:
                actions.add("Reducing the amount of my artwork that I share online")
            if rng.random() < 0.40:
                actions.add("Posting lower resolution versions of my artwork online")
            if rng.random() < 0.15:
                actions.add("Preventing my websites from being scraped")
            if rng.random() < 0.12:
                actions.add("Other")
            if not actions:
                actions.add(rng.choice(ACTION_OPTIONS[:4]))
            a["Q18"] = tuple(sorted(actions))
            if "Other" in actions:
                a["Q18_other"] = _theme_sentence(rng, ACTIONS_CODEBOOK)

        # Q22/Q23 willingness: 97% likely or very likely; 93% very likely.
        a["Q23"] = _draw(
            rng,
            (
                (LIKERT_5[4], 0.93), (LIKERT_5[3], 0.04), (LIKERT_5[2], 0.02),
                (LIKERT_5[1], 0.01),
            ),
        )
        a["Q22"] = _draw(
            rng, ((LIKERT_5[4], 0.85), (LIKERT_5[3], 0.09), (LIKERT_5[2], 0.06))
        )
        if a["Q23"] in LIKERT_5[3:]:
            a["Q23_why"] = _theme_sentence(rng, ENABLE_CODEBOOK)
        else:
            a["Q23_why"] = _theme_sentence(rng, NO_ADOPT_CODEBOOK, "efficacy")

        a["Q24"] = "Yes" if heard_this else "No"
        if heard_this:
            understood = rng.random() < 0.90
            a["Q25"] = (
                "It tells crawlers which pages they are blocked from accessing."
                if understood
                else "Something about website code, not sure."
            )
            a["Q29"] = _answer_control(rng)
            if has_site:
                aware_site_seen += 1
                # Of the 38 aware site owners: 27 do not use robots.txt
                # on their site, and 9 report having no control over it.
                if non_user_quota > 0:
                    non_user_quota -= 1
                    uses = False
                else:
                    uses = True
                a["Q31"] = "Yes" if uses else "No"
                if not uses:
                    a["Q31_why_not"] = rng.choice(
                        [
                            "I don't know how to do it",
                            "I don't know how to do it",
                            "I am concerned it will impact the discoverability of my website online",
                            "Other",
                        ]
                    )
                if no_control_quota > 0:
                    no_control_quota -= 1
                    a["Q29"] = "I have no control over the content"
                elif a["Q29"] == "I have no control over the content":
                    a["Q29"] = "I am not sure"
        else:
            # Post-explainer comprehension: 113 of 119 get it.
            understood = rng.random() < (113 / 119)
            a["Q25"] = (
                "It is like a do-not-enter sign telling bots to stop crawling parts of a site."
                if understood
                else "No idea, it sounds technical."
            )
            a["understood_explainer"] = understood
            if understood:
                a["Q26"] = _draw(
                    rng,
                    (
                        (LIKERT_5[4], 0.45), (LIKERT_5[3], 0.30), (LIKERT_5[2], 0.15),
                        (LIKERT_5[1], 0.07), (LIKERT_5[0], 0.03),
                    ),
                )
                if a["Q26"] in LIKERT_5[:3]:
                    a["Q26_why"] = _theme_sentence(rng, NO_ADOPT_CODEBOOK)
                else:
                    a["Q26_why"] = _theme_sentence(rng, ENABLE_CODEBOOK)
            # Distrust: 77% of the never-heard group.
            a["Q27"] = _draw(
                rng,
                (
                    (LIKERT_5[0], 0.38), (LIKERT_5[1], 0.39), (LIKERT_5[2], 0.13),
                    (LIKERT_5[3], 0.08), (LIKERT_5[4], 0.02),
                ),
            )
        if "Q27" not in a:
            a["Q27"] = _draw(
                rng,
                (
                    (LIKERT_5[0], 0.35), (LIKERT_5[1], 0.38), (LIKERT_5[2], 0.15),
                    (LIKERT_5[3], 0.09), (LIKERT_5[4], 0.03),
                ),
            )
        if a["Q27"] in LIKERT_5[:2]:
            a["Q27_why"] = _theme_sentence(rng, DISTRUST_CODEBOOK)
        else:
            a["Q27_why"] = "They say they follow standards, so maybe."

        r.completion_minutes = max(4.0, rng.gauss(12.0, 3.0))
        respondents.append(r)

    rng.shuffle(respondents)
    for rid in range(n_invalid):
        respondents.append(_junk_respondent(rng, n_valid + rid))
    return respondents


def _answer_control(rng: random.Random) -> str:
    return _draw(
        rng,
        (
            ("I have full control over the full content of robots.txt", 0.25),
            ("I can click some buttons to switch between a few presets", 0.25),
            ("I have no control over the content", 0.15),
            ("I am not sure", 0.30),
            ("Other", 0.05),
        ),
    )


def _junk_respondent(rng: random.Random, rid: int) -> Respondent:
    """A low-quality response the validity filter must reject."""
    r = Respondent(rid=rid, low_quality=True)
    kind = rng.choice(["short", "straight-line", "incomplete"])
    a = r.answers
    a["Q1"] = "Yes"
    a["Q7"] = "Yes"
    if kind == "short":
        a["Q2"] = INCOME_OPTIONS[1]
        a["Q15"] = "ok"
        a["Q16"] = IMPACT_5[2]
        a["Q22"] = a["Q23"] = a["Q27"] = LIKERT_5[2]
        a["Q24"] = "No"
        a["Q25"] = "idk"
        a["Q27_why"] = "."
        r.completion_minutes = 3.0
    elif kind == "straight-line":
        a["Q2"] = INCOME_OPTIONS[1]
        a["Q15"] = "I select the middle option for everything in surveys."
        a["Q16"] = IMPACT_5[2]
        a["Q22"] = a["Q23"] = a["Q26"] = a["Q27"] = LIKERT_5[2]
        a["Q24"] = "No"
        a["Q25"] = "I select the middle option for everything in surveys."
        a["Q27_why"] = "I select the middle option for everything in surveys."
        r.completion_minutes = 2.5
    else:
        # Incomplete: bails out before the robots.txt block.
        a["Q2"] = INCOME_OPTIONS[1]
        a["Q15"] = "AI art is concerning for working artists like me."
        a["Q16"] = IMPACT_5[3]
        r.completion_minutes = 5.0
    return r


def filter_valid(respondents: Sequence[Respondent]) -> List[Respondent]:
    """The paper's validity filter: drop short/straight-line/incomplete.

    Detection uses only observable features (answer lengths, likert
    straight-lining, missing required questions, completion time) --
    never the generator's ground-truth flag.
    """
    valid: List[Respondent] = []
    for r in respondents:
        a = r.answers
        required = ("Q2", "Q16", "Q22", "Q23", "Q24", "Q27")
        if any(q not in a for q in required):
            continue
        open_answers = [
            str(a.get(q, "")) for q in ("Q15", "Q25", "Q27_why") if q in a
        ]
        if any(len(text.strip()) < 8 for text in open_answers):
            continue
        likerts = [a.get(q) for q in ("Q22", "Q23", "Q26", "Q27") if a.get(q)]
        if len(likerts) >= 3 and len(set(likerts)) == 1 and r.completion_minutes < 6:
            continue
        valid.append(r)
    return valid
