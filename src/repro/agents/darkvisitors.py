"""The Table 1 agent population (Dark Visitors-derived).

This is the reproduction's stand-in for the Dark Visitors agent list
[113]: the 24 AI-related user agents the paper studies, with the
metadata of Table 1 -- category, company, whether the company publishes
crawler IPs, whether documentation claims robots.txt compliance, and
the compliance observed in practice by the Section 5 testbed.

``respects_in_practice`` here records the *paper's* observation; the
crawler fleet (:mod:`repro.crawlers.fleet`) independently encodes each
bot's behavior, and the Table 1 benchmark checks that the testbed
measurement recovers these values rather than reading them back.
"""

from __future__ import annotations

from .registry import AgentCategory, AIUserAgent, AgentRegistry, Compliance

__all__ = ["build_registry", "TABLE1_ROWS", "AI_USER_AGENT_TOKENS"]

_YES = Compliance.YES
_NO = Compliance.NO
_UNK = Compliance.UNKNOWN

_DATA = AgentCategory.AI_DATA
_ASSIST = AgentCategory.AI_ASSISTANT
_SEARCH = AgentCategory.AI_SEARCH
_UNDOC = AgentCategory.UNDOCUMENTED
_TOKEN = AgentCategory.CONTROL_TOKEN

#: (token, category, company, publish_ip, claims_respect, respect_in_practice,
#:  full user agent string)
TABLE1_ROWS = [
    ("Amazonbot", _SEARCH, "Amazon", _YES, _YES, _YES,
     "Mozilla/5.0 (compatible; Amazonbot/0.1; +https://developer.amazon.com/amazonbot)"),
    ("AI2Bot", _DATA, "Ai2", _NO, _UNK, _UNK,
     "Mozilla/5.0 (compatible; AI2Bot/1.0; +https://www.allenai.org/crawler)"),
    ("anthropic-ai", _UNDOC, "Anthropic", _NO, _UNK, _UNK,
     "anthropic-ai"),
    ("Applebot", _SEARCH, "Apple", _YES, _YES, _YES,
     "Mozilla/5.0 (compatible; Applebot/0.1; +http://www.apple.com/go/applebot)"),
    ("Applebot-Extended", _TOKEN, "Apple", _UNK, _YES, _UNK,
     "Applebot-Extended"),
    ("Bytespider", _DATA, "ByteDance", _NO, _UNK, _NO,
     "Mozilla/5.0 (compatible; Bytespider; spider-feedback@bytedance.com)"),
    ("CCBot", _DATA, "Common Crawl", _YES, _YES, _YES,
     "CCBot/2.0 (https://commoncrawl.org/faq/)"),
    ("ChatGPT-User", _ASSIST, "OpenAI", _YES, _YES, _YES,
     "Mozilla/5.0 AppleWebKit/537.36 (compatible; ChatGPT-User/1.0; +https://openai.com/bot)"),
    ("Claude-Web", _UNDOC, "Anthropic", _NO, _UNK, _UNK,
     "Claude-Web"),
    ("ClaudeBot", _DATA, "Anthropic", _NO, _YES, _YES,
     "Mozilla/5.0 (compatible; ClaudeBot/1.0; +claudebot@anthropic.com)"),
    ("cohere-ai", _UNDOC, "Cohere", _NO, _UNK, _UNK,
     "cohere-ai"),
    ("Diffbot", _DATA, "Diffbot", _NO, _UNK, _UNK,
     "Mozilla/5.0 (compatible; Diffbot/0.1; +https://www.diffbot.com)"),
    ("FacebookBot", _DATA, "Meta", _YES, _YES, _UNK,
     "FacebookBot/1.0 (+https://developers.facebook.com/docs/sharing/webmasters/crawler)"),
    ("Google-Extended", _TOKEN, "Google", _UNK, _YES, _UNK,
     "Google-Extended"),
    ("GPTBot", _DATA, "OpenAI", _YES, _YES, _YES,
     "Mozilla/5.0 AppleWebKit/537.36 (compatible; GPTBot/1.1; +https://openai.com/gptbot)"),
    ("Kangaroo Bot", _DATA, "Kangaroo LLM", _NO, _YES, _UNK,
     "Mozilla/5.0 (compatible; Kangaroo Bot/1.0; +https://kangaroollm.com.au)"),
    ("Meta-ExternalAgent", _DATA, "Meta", _YES, _UNK, _YES,
     "meta-externalagent/1.1 (+https://developers.facebook.com/docs/sharing/webmasters/crawler)"),
    ("Meta-ExternalFetcher", _ASSIST, "Meta", _YES, _NO, _UNK,
     "meta-externalfetcher/1.1"),
    ("OAI-SearchBot", _SEARCH, "OpenAI", _YES, _YES, _UNK,
     "Mozilla/5.0 AppleWebKit/537.36 (compatible; OAI-SearchBot/1.0; +https://openai.com/searchbot)"),
    ("omgili", _DATA, "Webz.io", _NO, _YES, _UNK,
     "omgili/0.5 +http://omgili.com"),
    ("PerplexityBot", _SEARCH, "Perplexity", _NO, _YES, _UNK,
     "Mozilla/5.0 (compatible; PerplexityBot/1.0; +https://perplexity.ai/perplexitybot)"),
    ("Timpibot", _DATA, "Timpi", _NO, _UNK, _UNK,
     "Mozilla/5.0 (compatible; Timpibot/0.8; +http://www.timpi.io)"),
    ("Webzio-Extended", _TOKEN, "Webz.io", _UNK, _YES, _UNK,
     "Webzio-Extended"),
    ("YouBot", _SEARCH, "You.com", _NO, _UNK, _UNK,
     "Mozilla/5.0 (compatible; YouBot (+http://www.you.com))"),
]

#: The 24 tokens, in Table 1 order.
AI_USER_AGENT_TOKENS = [row[0] for row in TABLE1_ROWS]


def build_registry() -> AgentRegistry:
    """Build the registry of the paper's 24 AI user agents.

    >>> registry = build_registry()
    >>> len(registry)
    24
    >>> registry.get("GPTBot").company
    'OpenAI'
    """
    return AgentRegistry(
        AIUserAgent(
            token=token,
            category=category,
            company=company,
            publishes_ips=publish_ip,
            claims_respect=claims,
            respects_in_practice=practice,
            full_user_agent=full_ua,
        )
        for token, category, company, publish_ip, claims, practice, full_ua in TABLE1_ROWS
    )
