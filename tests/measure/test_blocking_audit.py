"""Tests for active-blocking detection and the Cloudflare audit."""

import pytest

from repro.agents.catalogs import CLOUDFLARE_AI_BOTS_BLOCKED, generic_crawler_user_agents
from repro.agents.darkvisitors import build_registry
from repro.measure.active_blocking import (
    detect_active_blocking,
    survey_active_blocking,
)
from repro.measure.cloudflare_audit import (
    BlockAISetting,
    audit_cloudflare_sites,
    infer_blocked_agents,
    infer_site_setting,
)
from repro.net.server import Website, render_page
from repro.net.transport import Network
from repro.proxy.cloudflare import CloudflareProxy, CloudflareSettings
from repro.proxy.reverse_proxy import ReverseProxy
from repro.proxy.rules import Action, BlockRule, RuleSet
from repro.web.population import PopulationConfig, build_web_population
from repro.web.site import BlockingConfig, SimSite


def plain_site(host):
    site = Website(host)
    site.add_page("/", render_page("Home", paragraphs=["content " * 30]))
    return site


class TestDetectActiveBlocking:
    def test_open_site_not_flagged(self):
        net = Network()
        net.register(plain_site("open.com"))
        verdict = detect_active_blocking(net, "open.com")
        assert not verdict.excluded and not verdict.blocks_ai

    def test_ua_blocking_site_flagged(self):
        net = Network()
        rules = RuleSet.blocking_user_agents(["Claudebot", "anthropic-ai"])
        net.register(ReverseProxy(plain_site("waf.com"), rules))
        verdict = detect_active_blocking(net, "waf.com")
        assert verdict.blocks_ai and not verdict.excluded

    def test_automation_blocking_site_excluded(self):
        net = Network()
        net.register(ReverseProxy(plain_site("fp.com"), block_all_automation=True))
        verdict = detect_active_blocking(net, "fp.com")
        assert verdict.excluded

    def test_transport_error_counts_as_blocking(self):
        net = Network()
        site = plain_site("reset.com")
        rules = RuleSet([BlockRule(Action.RESET, ua_patterns=["Claudebot"])])
        net.register(ReverseProxy(site, rules))
        verdict = detect_active_blocking(net, "reset.com")
        assert verdict.blocks_ai

    def test_block_page_with_same_status_detected_via_length(self):
        # A site that serves a tiny block page with status 200.
        class SneakyProxy(ReverseProxy):
            def handle(self, request):
                if "claudebot" in request.user_agent.lower():
                    from repro.net.http import Response

                    return Response(status=200, body="<p>denied</p>")
                return self.origin.handle(request)

        net = Network()
        net.register(SneakyProxy(plain_site("sneaky.com")))
        verdict = detect_active_blocking(net, "sneaky.com")
        assert verdict.blocks_ai

    def test_unresolvable_site_excluded(self):
        verdict = detect_active_blocking(Network(), "ghost.example")
        assert verdict.excluded


class TestSurveyOverPopulation:
    @pytest.fixture(scope="class")
    def audit_world(self):
        config = PopulationConfig(
            universe_size=1200, list_size=800, top5k_cut=100, audit_size=500, seed=3
        )
        population = build_web_population(config)
        net = Network()
        population.materialize(net, month=24, sites=population.audit_sites)
        return population, net

    def test_rates_in_paper_bands(self, audit_world):
        population, net = audit_world
        hosts = [s.domain for s in population.audit_sites]
        survey = survey_active_blocking(net, hosts)
        excluded_rate = survey.n_excluded / survey.n_sites
        blocking_rate = survey.n_blocking / survey.n_sites
        assert 0.08 < excluded_rate < 0.25   # paper: 15%
        assert 0.07 < blocking_rate < 0.25   # paper: 14%

    def test_blockers_rarely_use_robots(self, audit_world):
        population, net = audit_world
        hosts = [s.domain for s in population.audit_sites]
        survey = survey_active_blocking(net, hosts)
        from repro.core.classify import classify

        both = 0
        for host in survey.blocking_hosts():
            text = population.by_domain[host].robots_at(24)
            if text and any(
                classify(text, a).level.disallows
                for a in ("ClaudeBot", "anthropic-ai")
            ):
                both += 1
        # Section 6.2: only ~2% of blockers also restrict via robots.txt.
        assert both / max(survey.n_blocking, 1) < 0.25


class TestGreyBox:
    def _zone_factory(self, enabled):
        net = Network()
        origin = plain_site("own.example")
        net.register(
            CloudflareProxy(origin, CloudflareSettings(block_ai_bots=enabled)),
            host="own.example",
        )
        return net

    def test_recovers_cloudflare_ai_list(self):
        registry = build_registry()
        candidates = [a.full_user_agent for a in registry.real_crawlers()]
        candidates += generic_crawler_user_agents(100)
        flipped = infer_blocked_agents(self._zone_factory, candidates, "own.example")
        # Every flipped UA matches a documented pattern and vice versa
        # for the Table 1 crawlers present in the list.
        from repro.agents.useragent import matches_any

        for user_agent in flipped:
            assert matches_any(user_agent, CLOUDFLARE_AI_BOTS_BLOCKED)
        blocked_tokens = {"Bytespider", "ClaudeBot", "GPTBot", "CCBot", "PerplexityBot"}
        for agent in registry.real_crawlers():
            if agent.token in blocked_tokens:
                assert agent.full_user_agent in flipped, agent.token

    def test_exempt_verified_bots_not_flipped(self):
        registry = build_registry()
        candidates = [a.full_user_agent for a in registry.real_crawlers()]
        flipped = infer_blocked_agents(self._zone_factory, candidates, "own.example")
        applebot = registry.get("Applebot").full_user_agent
        searchbot = registry.get("OAI-SearchBot").full_user_agent
        assert applebot not in flipped
        assert searchbot not in flipped


class TestFigure7Inference:
    def _zone(self, **kwargs):
        confound = kwargs.pop("confound", False)
        site = SimSite(domain="zone.example", rank=1)
        site.blocking = BlockingConfig(
            cloudflare=CloudflareSettings(**kwargs), cf_custom_confound=confound
        )
        net = Network()
        net.register(site.build_handler(24), host="zone.example")
        return net

    def test_off_zone(self):
        audit = infer_site_setting(self._zone(), "zone.example")
        assert audit.setting is BlockAISetting.OFF
        assert audit.definitely_automated is False

    def test_on_zone(self):
        audit = infer_site_setting(self._zone(block_ai_bots=True), "zone.example")
        assert audit.setting is BlockAISetting.ON

    def test_definitely_automated_only(self):
        audit = infer_site_setting(
            self._zone(definitely_automated=True), "zone.example"
        )
        assert audit.setting is BlockAISetting.OFF
        assert audit.definitely_automated is True

    def test_both_enabled_reads_on(self):
        audit = infer_site_setting(
            self._zone(block_ai_bots=True, definitely_automated=True),
            "zone.example",
        )
        assert audit.setting is BlockAISetting.ON

    def test_confound_indeterminate(self):
        audit = infer_site_setting(self._zone(confound=True), "zone.example")
        assert audit.setting is BlockAISetting.INDETERMINATE

    def test_population_audit_bands(self):
        config = PopulationConfig(
            universe_size=1200, list_size=800, top5k_cut=100, audit_size=500, seed=9
        )
        population = build_web_population(config)
        net = Network()
        population.materialize(net, month=24, sites=population.audit_sites)
        cf_hosts = [
            s.domain for s in population.audit_sites if s.blocking.on_cloudflare
        ]
        summary = audit_cloudflare_sites(net, cf_hosts)
        determined_rate = summary.n_determined / summary.n_sites
        assert determined_rate > 0.8           # paper: 93%
        enabled_rate = summary.n_enabled / max(summary.n_determined, 1)
        assert 0.01 < enabled_rate < 0.15      # paper: 5.7%


class TestConfirmationProbes:
    def _open_net(self):
        net = Network()
        net.register(plain_site("open.com"))
        return net

    def test_transient_ai_reset_is_not_blocking(self):
        from repro.net.chaos import NAMED_PLANS

        net = self._open_net()
        NAMED_PLANS["ai-probe-resets"].install(net)
        verdict = detect_active_blocking(net, "open.com")
        assert not verdict.blocks_ai and not verdict.excluded
        # Confirmation fired: the first Claudebot probe reset, the
        # re-probe agreed with the control.
        assert verdict.probe_attempts["Claudebot/1.0"] == 2
        assert verdict.probe_attempts["anthropic-ai"] == 2

    def test_transient_reset_survey_zero_false_positives(self):
        from repro.net.chaos import FaultPlan, FaultRule

        hosts = [f"site{i}.example" for i in range(30)]
        net = Network()
        for host in hosts:
            net.register(plain_site(host))
        FaultPlan(
            "transient",
            (FaultRule(kind="reset", rate=1.0, max_per_host=1),),
        ).install(net)
        survey = survey_active_blocking(net, hosts)
        assert survey.n_blocking == 0
        assert survey.n_excluded == 0

    def test_without_confirmation_false_positive_returns(self):
        from repro.net.chaos import NAMED_PLANS, retries_disabled

        net = self._open_net()
        NAMED_PLANS["ai-probe-resets"].install(net)
        with retries_disabled():
            verdict = detect_active_blocking(net, "open.com")
        assert verdict.blocks_ai
        assert verdict.confirmation.attempts == 0

    def test_persistent_blocker_still_detected_under_chaos(self):
        from repro.net.chaos import NAMED_PLANS

        net = Network()
        rules = RuleSet.blocking_user_agents(["Claudebot", "anthropic-ai"])
        net.register(ReverseProxy(plain_site("waf.com"), rules))
        NAMED_PLANS["flaky-resets"].install(net)
        verdict = detect_active_blocking(net, "waf.com")
        assert verdict.blocks_ai

    def test_transient_control_failure_not_excluded(self):
        net = self._open_net()
        net.inject_flaky("open.com", failures=1)
        verdict = detect_active_blocking(net, "open.com")
        assert not verdict.excluded
        assert verdict.probe_attempts["control"] == 2

    def test_deliberate_tool_block_still_excluded_without_retry(self):
        net = Network()
        net.register(ReverseProxy(plain_site("fp.com"), block_all_automation=True))
        verdict = detect_active_blocking(net, "fp.com")
        assert verdict.excluded
        # An HTTP answer is accepted at face value -- no re-probe.
        assert verdict.probe_attempts["control"] == 1

    def test_confirmation_policy_recorded_on_verdict(self):
        from repro.measure.active_blocking import (
            ConfirmationPolicy,
            DEFAULT_CONFIRMATION,
        )

        verdict = detect_active_blocking(self._open_net(), "open.com")
        assert verdict.confirmation == DEFAULT_CONFIRMATION
        custom = ConfirmationPolicy(attempts=4, spacing_seconds=1.0)
        verdict = detect_active_blocking(
            self._open_net(), "open.com", confirmation=custom
        )
        assert verdict.confirmation == custom

    def test_spacing_charged_to_simulated_clock(self):
        from repro.measure.active_blocking import ConfirmationPolicy

        net = self._open_net()
        net.inject_flaky("open.com", failures=2)
        policy = ConfirmationPolicy(attempts=3, spacing_seconds=5.0)
        verdict = detect_active_blocking(net, "open.com", confirmation=policy)
        assert not verdict.excluded
        assert net.now == 10.0  # two spaced control re-probes
