"""Adversarial crawler knobs: UA/IP rotation and paced stealth fetching."""

import pytest

from repro.crawlers.engine import Crawler
from repro.crawlers.profiles import CrawlerProfile, RobotsBehavior
from repro.net.server import Website, render_page
from repro.net.transport import Network


def make_world():
    net = Network()
    site = Website("target.com")
    site.add_page("/", render_page("Home", links=["/a", "/b", "/c"]))
    site.add_page("/a", render_page("A"))
    site.add_page("/b", render_page("B"))
    site.add_page("/c", render_page("C"))
    site.set_robots_txt("User-agent: *\nDisallow:")
    net.register(site)
    return net, site


class TestIdentityRotation:
    def test_pools_round_robin(self):
        profile = CrawlerProfile.oblivious(
            "Rotator",
            ua_pool=("UA-a", "UA-b", "UA-c"),
            ip_pool=("10.0.0.1", "10.0.0.2"),
        )
        assert [profile.user_agent_for(i) for i in range(4)] == [
            "UA-a", "UA-b", "UA-c", "UA-a",
        ]
        assert [profile.source_ip_for(i) for i in range(4)] == [
            "10.0.0.1", "10.0.0.2", "10.0.0.1", "10.0.0.2",
        ]

    def test_empty_pools_fall_back_to_static_identity(self):
        profile = CrawlerProfile.oblivious("Plain")
        assert profile.user_agent_for(7) == profile.user_agent
        assert profile.source_ip_for(7) == profile.source_ip

    def test_engine_rotates_per_request(self):
        net, site = make_world()
        profile = CrawlerProfile.oblivious(
            "Rotator", ua_pool=("UA-a", "UA-b"), ip_pool=("10.0.0.1", "10.0.0.2")
        )
        Crawler(profile, net).crawl("target.com", max_pages=4)
        uas = [e.user_agent for e in site.access_log]
        ips = [e.client_ip for e in site.access_log]
        assert uas == ["UA-a", "UA-b", "UA-a", "UA-b"]
        assert ips == ["10.0.0.1", "10.0.0.2", "10.0.0.1", "10.0.0.2"]

    def test_rotation_index_is_lifetime_not_per_crawl(self):
        net, _ = make_world()
        profile = CrawlerProfile.oblivious("Rotator", ua_pool=("UA-a", "UA-b"))
        crawler = Crawler(profile, net)
        crawler.crawl("target.com", max_pages=3)
        sent = crawler._requests_sent
        assert sent == 3
        # The next crawl resumes the round-robin where the last left off.
        second = Website("second.com")
        second.add_page("/", render_page("Home"))
        net.register(second)
        crawler.crawl("second.com", max_pages=1)
        entry = next(iter(second.access_log))
        assert entry.user_agent == ("UA-a", "UA-b")[sent % 2]


class TestStealthPacing:
    def test_gap_jitter_is_seeded_and_bounded(self):
        profile = CrawlerProfile.stealth("Ghost", gap_jitter_ms=400, seed=11)
        same = CrawlerProfile.stealth("Ghost", gap_jitter_ms=400, seed=11)
        jitters = [profile.gap_jitter_seconds("h.example", i) for i in range(32)]
        assert jitters == [same.gap_jitter_seconds("h.example", i) for i in range(32)]
        assert all(0.0 <= j <= 0.4 for j in jitters)
        assert len(set(jitters)) > 1  # actually jitters
        other_seed = CrawlerProfile.stealth("Ghost", gap_jitter_ms=400, seed=12)
        assert jitters != [
            other_seed.gap_jitter_seconds("h.example", i) for i in range(32)
        ]

    def test_zero_jitter_profiles_pay_none(self):
        profile = CrawlerProfile.oblivious("Plain")
        assert profile.gap_jitter_seconds("h.example", 3) == 0.0

    def test_pacing_charges_the_simulated_clock(self):
        net, site = make_world()
        profile = CrawlerProfile.stealth(
            "Ghost", fetch_interval=2.0, gap_jitter_ms=0, seed=0
        )
        result = Crawler(profile, net).crawl("target.com", max_pages=4)
        # 3 gaps between 4 content fetches (robots fetch is free).
        assert net.now == pytest.approx(6.0)
        assert result.time_spent == pytest.approx(6.0)
        timestamps = [e.timestamp for e in site.access_log
                      if e.path != "/robots.txt"]
        gaps = [b - a for a, b in zip(timestamps, timestamps[1:])]
        assert gaps == [pytest.approx(2.0)] * 3

    def test_unpaced_profiles_leave_the_clock_alone(self):
        net, _ = make_world()
        profile = CrawlerProfile.oblivious("Plain", default_fetch_interval=2.0)
        result = Crawler(profile, net).crawl("target.com", max_pages=4)
        assert net.now == 0.0  # interval charged to the budget only
        assert result.time_spent == pytest.approx(6.0)

    def test_stealth_factory_shape(self):
        profile = CrawlerProfile.stealth("Ghost", seed=5)
        assert profile.behavior is RobotsBehavior.FETCH_AND_IGNORE
        assert profile.paces_on_clock
        assert profile.default_fetch_interval == 1.0
        assert profile.stealth_gap_jitter_ms == 400
        assert profile.stealth_seed == 5
