"""Tests for the periodic crawl scheduler."""

import pytest

from repro.crawlers.engine import Crawler
from repro.crawlers.profiles import CrawlerProfile
from repro.crawlers.scheduler import CrawlScheduler, CrawlTask
from repro.net.server import Website, render_page
from repro.net.transport import Network

DAY = 86_400.0


def make_world():
    net = Network()
    site = Website("sched.example")
    site.add_page("/", render_page("Home", links=["/a"]))
    site.add_page("/a", render_page("A"))
    site.set_robots_txt("User-agent: *\nDisallow:\n")
    net.register(site)
    return net, site


class TestScheduling:
    def test_periodic_dispatch_counts(self):
        net, _ = make_world()
        scheduler = CrawlScheduler(net)
        crawler = Crawler(CrawlerProfile.respectful("DailyBot"), net)
        scheduler.schedule(crawler, "sched.example", interval=DAY)
        report = scheduler.run_until(6 * DAY)
        # Dispatches at t=0,1,...,6 days inclusive.
        assert report.crawls[("DailyBot", "sched.example")] == 7

    def test_clock_advances_with_dispatches(self):
        net, site = make_world()
        scheduler = CrawlScheduler(net)
        crawler = Crawler(CrawlerProfile.respectful("DailyBot"), net)
        scheduler.schedule(crawler, "sched.example", interval=DAY)
        scheduler.run_until(2 * DAY)
        timestamps = sorted({entry.timestamp for entry in site.access_log})
        assert timestamps == [0.0, DAY, 2 * DAY]

    def test_one_shot_task(self):
        net, _ = make_world()
        scheduler = CrawlScheduler(net)
        crawler = Crawler(CrawlerProfile.respectful("OnceBot"), net)
        scheduler.schedule(crawler, "sched.example", interval=0, repeat=False,
                           start_at=DAY)
        report = scheduler.run_until(10 * DAY)
        assert report.crawls[("OnceBot", "sched.example")] == 1
        assert scheduler.pending == 0

    def test_future_tasks_stay_queued(self):
        net, _ = make_world()
        scheduler = CrawlScheduler(net)
        crawler = Crawler(CrawlerProfile.respectful("LateBot"), net)
        scheduler.schedule(crawler, "sched.example", interval=DAY, start_at=5 * DAY)
        report = scheduler.run_until(2 * DAY)
        assert not report.crawls
        assert scheduler.pending == 1
        report = scheduler.run_until(5 * DAY)
        assert report.crawls[("LateBot", "sched.example")] == 1

    def test_interleaved_crawlers_ordered_by_time(self):
        net, site = make_world()
        scheduler = CrawlScheduler(net)
        fast = Crawler(CrawlerProfile.defiant("FastBot", "FastBot"), net)
        slow = Crawler(CrawlerProfile.respectful("SlowBot"), net)
        scheduler.schedule(fast, "sched.example", interval=DAY / 4)
        scheduler.schedule(slow, "sched.example", interval=DAY)
        report = scheduler.run_until(DAY)
        assert report.crawls[("FastBot", "sched.example")] == 5
        assert report.crawls[("SlowBot", "sched.example")] == 2

    def test_invalid_repeat_interval_rejected(self):
        net, _ = make_world()
        scheduler = CrawlScheduler(net)
        crawler = Crawler(CrawlerProfile.respectful("X"), net)
        with pytest.raises(ValueError):
            scheduler.schedule(crawler, "sched.example", interval=0)

    def test_errors_collected(self):
        net, _ = make_world()
        scheduler = CrawlScheduler(net)
        crawler = Crawler(CrawlerProfile.respectful("GhostBot"), net)
        scheduler.schedule(crawler, "missing.example", interval=DAY, repeat=False)
        report = scheduler.run_until(DAY)
        assert report.errors
        assert report.errors[0][0] == "GhostBot"


class TestCacheInterplay:
    def test_robots_cache_ttl_respected_across_dispatches(self):
        net, site = make_world()
        scheduler = CrawlScheduler(net)
        profile = CrawlerProfile.respectful("CachyBot", robots_cache_ttl=3 * DAY)
        crawler = Crawler(profile, net)
        scheduler.schedule(crawler, "sched.example", interval=DAY)
        report = scheduler.run_until(6 * DAY)
        # 7 crawls, but robots.txt fetched only when the cache expires:
        # t=0 (fresh), t=3d, t=6d.
        assert report.crawls[("CachyBot", "sched.example")] == 7
        assert report.robots_fetches[("CachyBot", "sched.example")] == 3

    def test_revalidating_bot_sees_policy_change_at_ttl(self):
        net, site = make_world()
        scheduler = CrawlScheduler(net)
        profile = CrawlerProfile.respectful("Reval", robots_cache_ttl=2 * DAY)
        profile.revalidates_robots = True
        crawler = Crawler(profile, net)
        scheduler.schedule(crawler, "sched.example", interval=DAY)
        warm = scheduler.run_until(DAY)        # cache warm, policy open
        key = ("Reval", "sched.example")
        assert warm.pages[key] == 4            # t=0 and t=1d, two pages each
        site.set_robots_txt("User-agent: *\nDisallow: /\n")
        report = scheduler.run_until(6 * DAY)  # revalidation at t=2d picks it up
        assert report.pages.get(key, 0) == 0   # every later crawl is kept out
