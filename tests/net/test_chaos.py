"""Tests for the deterministic fault-injection layer (repro.net.chaos)."""

import pytest

from repro.net import chaos
from repro.net.chaos import (
    ChaosController,
    FaultPlan,
    FaultRule,
    NAMED_PLANS,
    deterministic_fraction,
    plan,
    plan_names,
)
from repro.net.errors import ConnectionRefused, ConnectionReset, DNSFailure
from repro.net.http import Request
from repro.net.server import Website
from repro.net.transport import Network
from repro.obs.metrics import shared_registry


@pytest.fixture(autouse=True)
def _chaos_hygiene():
    """Every test leaves no armed plan and retries enabled."""
    yield
    chaos.deactivate()
    chaos.set_retries_enabled(True)


def make_net(*hosts, robots="User-agent: *\nDisallow: /private/"):
    net = Network()
    for host in hosts:
        site = Website(host)
        site.add_page("/", "<p>home</p>")
        site.set_robots_txt(robots)
        net.register(site)
    return net


class TestFaultRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(kind="meteor")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(kind="reset", rate=1.5)

    def test_inverted_month_window_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(kind="reset", months=(9, 6))

    def test_explicit_hosts_override_rate(self):
        rule = FaultRule(kind="reset", rate=0.0, hosts=("a.com",))
        assert rule.matches_host("a.com", 0, 0, "p")
        assert not rule.matches_host("b.com", 0, 0, "p")

    def test_host_suffix_filter(self):
        rule = FaultRule(kind="reset", host_suffix=".edu")
        assert rule.matches_host("lib.state.edu", 0, 0, "p")
        assert not rule.matches_host("lib.state.com", 0, 0, "p")

    def test_rate_sampling_is_deterministic(self):
        rule = FaultRule(kind="reset", rate=0.5)
        first = [rule.matches_host(f"h{i}.com", 3, 0, "p") for i in range(200)]
        second = [rule.matches_host(f"h{i}.com", 3, 0, "p") for i in range(200)]
        assert first == second
        # Roughly half the host space is affected.
        assert 60 < sum(first) < 140

    def test_different_seeds_sample_different_hosts(self):
        rule = FaultRule(kind="reset", rate=0.5)
        a = [rule.matches_host(f"h{i}.com", 0, 0, "p") for i in range(200)]
        b = [rule.matches_host(f"h{i}.com", 1, 0, "p") for i in range(200)]
        assert a != b

    def test_month_window_inclusive(self):
        rule = FaultRule(kind="outage", months=(6, 9))
        assert not rule.active_in(5)
        assert rule.active_in(6)
        assert rule.active_in(9)
        assert not rule.active_in(10)

    def test_no_window_always_active(self):
        assert FaultRule(kind="reset").active_in(-1)


class TestDeterministicFraction:
    def test_stable_across_calls(self):
        assert deterministic_fraction(1, "p", 0, "x.com") == deterministic_fraction(
            1, "p", 0, "x.com"
        )

    def test_in_unit_interval(self):
        for i in range(100):
            assert 0.0 <= deterministic_fraction(i, "plan", i, f"h{i}") < 1.0


class TestChaosController:
    def test_reset_fires_once_per_host_then_heals(self):
        net = make_net("a.com")
        FaultPlan("p", (FaultRule(kind="reset", max_per_host=1),)).install(net)
        with pytest.raises(ConnectionReset):
            net.request(Request(host="a.com"))
        assert net.request(Request(host="a.com")).ok

    def test_refuse_kind_raises_refused(self):
        net = make_net("a.com")
        FaultPlan("p", (FaultRule(kind="refuse"),)).install(net)
        with pytest.raises(ConnectionRefused):
            net.request(Request(host="a.com"))

    def test_outage_is_persistent(self):
        net = make_net("a.com")
        FaultPlan("p", (FaultRule(kind="outage", max_per_host=1),)).install(net)
        for _ in range(5):
            with pytest.raises(ConnectionRefused):
                net.request(Request(host="a.com"))

    def test_outage_respects_month_window(self):
        net = make_net("a.com")
        FaultPlan("p", (FaultRule(kind="outage", months=(6, 9)),)).install(net)
        net.month = 5
        assert net.request(Request(host="a.com")).ok
        net.month = 7
        with pytest.raises(ConnectionRefused):
            net.request(Request(host="a.com"))
        net.month = 10
        assert net.request(Request(host="a.com")).ok

    def test_latency_advances_simulated_clock_only(self):
        net = make_net("a.com")
        FaultPlan(
            "p",
            (FaultRule(kind="latency", latency_seconds=2.5, max_per_host=None),),
        ).install(net)
        assert net.request(Request(host="a.com")).ok
        assert net.now == 2.5
        assert net.request(Request(host="a.com")).ok
        assert net.now == 5.0

    def test_agent_filter_only_hits_matching_ua(self):
        net = make_net("a.com")
        FaultPlan(
            "p", (FaultRule(kind="reset", agent_contains="claude"),)
        ).install(net)
        ok = net.request(
            Request(host="a.com", headers={"User-Agent": "Mozilla/5.0"})
        )
        assert ok.ok
        with pytest.raises(ConnectionReset):
            net.request(
                Request(host="a.com", headers={"User-Agent": "Claudebot/1.0"})
            )

    def test_truncate_robots_cuts_body(self):
        net = make_net("a.com")
        FaultPlan(
            "p", (FaultRule(kind="truncate_robots", truncate_at=4),)
        ).install(net)
        response = net.request(Request(host="a.com", path="/robots.txt"))
        assert response.status == 200
        assert response.content_length == 4

    def test_garbage_robots_is_deterministic_junk(self):
        first = make_net("a.com")
        second = make_net("a.com")
        plan_obj = FaultPlan("p", (FaultRule(kind="garbage_robots"),))
        plan_obj.install(first, seed=7)
        plan_obj.install(second, seed=7)
        a = first.request(Request(host="a.com", path="/robots.txt"))
        b = second.request(Request(host="a.com", path="/robots.txt"))
        assert a.body == b.body
        assert a.body != make_net("a.com").request(
            Request(host="a.com", path="/robots.txt")
        ).body

    def test_non_robots_paths_never_mutated(self):
        net = make_net("a.com")
        FaultPlan("p", (FaultRule(kind="garbage_robots"),)).install(net)
        assert "home" in net.request(Request(host="a.com", path="/")).text

    def test_dns_failure_wins_over_chaos(self):
        net = Network()
        FaultPlan("p", (FaultRule(kind="reset"),)).install(net)
        with pytest.raises(DNSFailure):
            net.request(Request(host="ghost.example"))

    def test_injected_errors_flow_through_net_error_counters(self):
        registry = shared_registry()
        before = registry.counter_value("net.errors", kind="ConnectionReset")
        net = make_net("a.com")
        FaultPlan("p", (FaultRule(kind="reset"),)).install(net)
        with pytest.raises(ConnectionReset):
            net.request(Request(host="a.com"))
        after = registry.counter_value("net.errors", kind="ConnectionReset")
        assert after == before + 1

    def test_chaos_fault_counter_labeled_by_plan(self):
        registry = shared_registry()
        before = registry.counter_value("chaos.faults", kind="reset", plan="px")
        net = make_net("a.com")
        FaultPlan("px", (FaultRule(kind="reset"),)).install(net)
        with pytest.raises(ConnectionReset):
            net.request(Request(host="a.com"))
        assert (
            registry.counter_value("chaos.faults", kind="reset", plan="px")
            == before + 1
        )

    def test_faults_injected_tally(self):
        net = make_net("a.com", "b.com")
        controller = FaultPlan(
            "p", (FaultRule(kind="reset", max_per_host=1),)
        ).install(net)
        for host in ("a.com", "b.com"):
            with pytest.raises(ConnectionReset):
                net.request(Request(host=host))
        assert controller.faults_injected() == 2

    def test_clear_chaos_detaches(self):
        net = make_net("a.com")
        FaultPlan("p", (FaultRule(kind="outage"),)).install(net)
        net.clear_chaos()
        assert net.request(Request(host="a.com")).ok

    def test_same_seed_same_faults_across_networks(self):
        plan_obj = FaultPlan("p", (FaultRule(kind="reset", rate=0.4),))
        hosts = [f"h{i}.com" for i in range(50)]

        def faulted(seed):
            net = make_net(*hosts)
            plan_obj.install(net, seed=seed)
            out = set()
            for host in hosts:
                try:
                    net.request(Request(host=host))
                except ConnectionReset:
                    out.add(host)
            return out

        assert faulted(0) == faulted(0)
        assert faulted(0) != faulted(1)


class TestActivation:
    def test_activation_installs_on_new_networks(self):
        chaos.activate(FaultPlan("p", (FaultRule(kind="reset"),)), seed=0)
        net = make_net("a.com")
        assert net.chaos is not None
        with pytest.raises(ConnectionReset):
            net.request(Request(host="a.com"))
        chaos.deactivate()
        assert make_net("a.com").chaos is None

    def test_chaos_active_context_restores_previous(self):
        inner = FaultPlan("inner", (FaultRule(kind="reset"),))
        outer = FaultPlan("outer", (FaultRule(kind="refuse"),))
        chaos.activate(outer, seed=3)
        with chaos.chaos_active(inner, seed=0):
            assert chaos.active_plan() == (inner, 0)
        assert chaos.active_plan() == (outer, 3)
        chaos.deactivate()
        assert chaos.active_plan() is None

    def test_retries_disabled_context(self):
        assert chaos.retries_enabled()
        with chaos.retries_disabled():
            assert not chaos.retries_enabled()
        assert chaos.retries_enabled()


class TestNamedPlans:
    def test_lookup_and_unknown(self):
        assert plan("flaky-resets").name == "flaky-resets"
        with pytest.raises(KeyError):
            plan("nope")

    def test_plan_names_sorted(self):
        names = plan_names()
        assert list(names) == sorted(names)
        assert "flaky-resets" in names

    def test_all_named_plans_have_valid_rules(self):
        for name, p in NAMED_PLANS.items():
            assert p.name == name
            assert p.rules
            assert p.description

    def test_transient_plans_are_heal_bounded(self):
        # The byte-identity guarantee rests on every fault of these
        # plans being bounded per host (a retry pass can always heal).
        for name in ("flaky-resets", "flaky-refusals", "ai-probe-resets",
                     "mixed-storm"):
            for rule in NAMED_PLANS[name].rules:
                if rule.kind in ("reset", "refuse"):
                    assert rule.max_per_host is not None, (name, rule)

    def test_ai_probe_resets_spare_browser_traffic(self):
        net = make_net("a.com")
        NAMED_PLANS["ai-probe-resets"].install(net)
        assert net.request(
            Request(host="a.com", headers={"User-Agent": "Mozilla/5.0 Chrome"})
        ).ok
        with pytest.raises(ConnectionReset):
            net.request(
                Request(host="a.com", headers={"User-Agent": "Claudebot/1.0"})
            )
        with pytest.raises(ConnectionReset):
            net.request(
                Request(host="a.com", headers={"User-Agent": "anthropic-ai"})
            )
