"""HTTP message model shared by the in-memory and real-socket stacks.

The measurement pipelines in this project care about exactly the
observable surface the paper's methodology uses: status codes (after
redirects), response body length, response body content (for block-page
detection), and the request's user agent and source IP.  The model here
carries that surface and nothing speculative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple, Union
from urllib.parse import urlsplit

__all__ = ["Headers", "Request", "Response", "split_url"]


class Headers:
    """Case-insensitive HTTP header collection preserving original names.

    >>> headers = Headers({"User-Agent": "GPTBot/1.1"})
    >>> headers["user-agent"]
    'GPTBot/1.1'
    """

    def __init__(self, items: Optional[Mapping[str, str]] = None):
        self._items: Dict[str, Tuple[str, str]] = {}
        if items:
            for name, value in items.items():
                self[name] = value

    def __setitem__(self, name: str, value: str) -> None:
        self._items[name.lower()] = (name, str(value))

    def __getitem__(self, name: str) -> str:
        return self._items[name.lower()][1]

    def __delitem__(self, name: str) -> None:
        del self._items[name.lower()]

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._items

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._items.values())

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        return dict(self.lower_items()) == dict(other.lower_items())

    def __repr__(self) -> str:
        return f"Headers({dict(self)!r})"

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Value for *name* or *default*."""
        entry = self._items.get(name.lower())
        return entry[1] if entry else default

    def lower_items(self) -> Iterator[Tuple[str, str]]:
        """Iterate ``(lowercased-name, value)`` pairs."""
        for key, (_, value) in self._items.items():
            yield key, value

    def copy(self) -> "Headers":
        """A shallow copy."""
        clone = Headers()
        clone._items = dict(self._items)
        return clone


def split_url(url: str) -> Tuple[str, str, str]:
    """Split an absolute URL into ``(scheme, host, path-with-query)``.

    >>> split_url("https://example.com/a?b=1")
    ('https', 'example.com', '/a?b=1')
    """
    parts = urlsplit(url)
    path = parts.path or "/"
    if parts.query:
        path = f"{path}?{parts.query}"
    return parts.scheme or "https", parts.netloc, path


@dataclass
class Request:
    """One HTTP request.

    Attributes:
        host: Target hostname (virtual-host routing key).
        path: Path plus optional query string, starting with ``/``.
        method: HTTP method; the crawlers here use GET and HEAD.
        headers: Request headers; ``User-Agent`` is the one that matters.
        client_ip: Source address as dotted quad, used by IP-based
            blocking and verified-bot validation.
        scheme: ``https`` by default.
    """

    host: str
    path: str = "/"
    method: str = "GET"
    headers: Headers = field(default_factory=Headers)
    client_ip: str = "198.51.100.1"
    scheme: str = "https"

    def __post_init__(self) -> None:
        if not self.path.startswith("/"):
            self.path = "/" + self.path
        if isinstance(self.headers, dict):
            self.headers = Headers(self.headers)

    @property
    def user_agent(self) -> str:
        """The ``User-Agent`` header, or ``""`` when absent."""
        return self.headers.get("User-Agent", "")

    @property
    def url(self) -> str:
        """The absolute URL of this request."""
        return f"{self.scheme}://{self.host}{self.path}"

    @property
    def path_only(self) -> str:
        """Path without the query string."""
        return self.path.split("?", 1)[0]

    def with_user_agent(self, user_agent: str) -> "Request":
        """A copy of this request with a different user agent."""
        headers = self.headers.copy()
        headers["User-Agent"] = user_agent
        return Request(
            host=self.host,
            path=self.path,
            method=self.method,
            headers=headers,
            client_ip=self.client_ip,
            scheme=self.scheme,
        )


@dataclass
class Response:
    """One HTTP response.

    Attributes:
        status: Numeric status code.
        body: Response body.  Stored as bytes; string bodies are
            UTF-8-encoded on construction.
        headers: Response headers.
        url: The final URL that produced this response (after any
            redirects followed by the client).
    """

    status: int = 200
    body: Union[bytes, str] = b""
    headers: Headers = field(default_factory=Headers)
    url: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.body, str):
            self.body = self.body.encode("utf-8")
        if isinstance(self.headers, dict):
            self.headers = Headers(self.headers)

    @property
    def ok(self) -> bool:
        """Whether the status is a 2xx success."""
        return 200 <= self.status < 300

    @property
    def is_redirect(self) -> bool:
        """Whether the response redirects (3xx with a Location header)."""
        return self.status in (301, 302, 303, 307, 308) and "Location" in self.headers

    @property
    def text(self) -> str:
        """Body decoded as UTF-8 (replacement on errors)."""
        assert isinstance(self.body, bytes)
        return self.body.decode("utf-8", errors="replace")

    @property
    def content_length(self) -> int:
        """Body length in bytes (the block-page detection feature)."""
        assert isinstance(self.body, bytes)
        return len(self.body)
