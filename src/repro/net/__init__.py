"""HTTP substrate: messages, in-memory network, clients, DNS, logs.

The substrate has two interchangeable transports:

* the in-memory :class:`Network`, used for population-scale sweeps, and
* :class:`RealHttpServer` / :func:`fetch_real`, which expose the same
  handlers over genuine localhost TCP for integration tests.
"""

from .accesslog import AccessLog, LogEntry, format_clf, parse_clf_line
from .chaos import ChaosController, FaultPlan, FaultRule
from .client import HttpClient
from .dns import DnsZone, ProviderInfra, Resolution
from .errors import (
    ConnectionRefused,
    ConnectionReset,
    DNSFailure,
    NetError,
    RobotsDisallowed,
    TooManyRedirects,
)
from .http import Headers, Request, Response, split_url
from .realserver import NetworkHandler, RealHttpServer, RemoteNetwork, fetch_real
from .server import Page, Website, extract_links, render_page
from .sitemap import SitemapEntry, discover_sitemap_urls, parse_sitemap, render_sitemap, render_sitemap_index
from .warc import WarcRecord, parse_warc, render_warc, snapshot_to_warc, warc_to_records
from .transport import Handler, Network

__all__ = [
    "AccessLog",
    "LogEntry",
    "format_clf",
    "parse_clf_line",
    "ChaosController",
    "FaultPlan",
    "FaultRule",
    "HttpClient",
    "DnsZone",
    "ProviderInfra",
    "Resolution",
    "ConnectionRefused",
    "ConnectionReset",
    "DNSFailure",
    "NetError",
    "RobotsDisallowed",
    "TooManyRedirects",
    "Headers",
    "Request",
    "Response",
    "split_url",
    "NetworkHandler",
    "RealHttpServer",
    "RemoteNetwork",
    "fetch_real",
    "Page",
    "Website",
    "extract_links",
    "render_page",
    "Handler",
    "Network",
    "SitemapEntry",
    "discover_sitemap_urls",
    "parse_sitemap",
    "render_sitemap",
    "render_sitemap_index",
    "WarcRecord",
    "parse_warc",
    "render_warc",
    "snapshot_to_warc",
    "warc_to_records",
]
