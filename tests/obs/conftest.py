"""Shared fixtures for the telemetry unit tests.

Every test in this package runs against pristine global telemetry
state: the enable flags are restored and the process-wide registries
(metrics, series, tracer) are reset both before and after each test,
so no test can leak counters, series points, or buffered spans into a
neighbor -- regardless of execution order.
"""

import pytest

from repro.net.accesslog import reset_agent_label_memo
from repro.obs.metrics import set_metrics_enabled, shared_registry
from repro.obs.series import shared_series
from repro.obs.trace import set_tracing_enabled, shared_tracer


@pytest.fixture(autouse=True)
def clean_telemetry_state():
    """Reset flags, the shared registries, and the accesslog memos."""
    set_metrics_enabled(True)
    set_tracing_enabled(False)
    shared_registry().reset()
    shared_series().reset()
    shared_tracer().reset()
    reset_agent_label_memo()
    yield
    set_metrics_enabled(True)
    set_tracing_enabled(False)
    shared_registry().reset()
    shared_series().reset()
    shared_tracer().reset()
    reset_agent_label_memo()
