"""Command-line interface.

Installed as the ``repro`` console script::

    repro check robots.txt GPTBot /art/         # allow/deny + winning rule
    repro classify robots.txt                   # restriction level per AI agent
    repro lint robots.txt                       # author-mistake findings
    repro compare robots.txt                    # compliant vs legacy parser
    repro aitxt ai.txt /gallery/piece.png       # ai.txt training permission
    repro agents                                # the Table 1 registry
    repro experiment figure2 [--fast]           # run a paper experiment
    repro reproduce --workers 4 [--fast]        # run the whole battery
    repro chaos --plan flaky-resets --seed 0    # fault-inject, assert no drift
    repro stats results --critical-path         # where did the time go?
    repro stats --diff base/ candidate/         # CI regression gate
    repro dashboard results --category news     # agent x month operator view
    repro serve-metrics results                 # Prometheus /metrics endpoint
    repro alerts results --rules slo.toml       # SLO gate; exit 1 on firing
    repro logs results/logs top path            # query the wide-event store
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .agents.darkvisitors import AI_USER_AGENT_TOKENS, build_registry
from .core.aitxt import AiTxtPolicy
from .core.classify import classify
from .core.diagnostics import lint
from .core.legacy import LegacyPolicy
from .core.policy import RobotsPolicy
from .report.tables import render_table

__all__ = ["main", "build_parser"]

#: Experiments runnable from the CLI (the orchestrator registry keys,
#: spelled out so the lightweight subcommands never import the heavy
#: report stack just to build the argparse tree).
EXPERIMENT_IDS = [
    "table1", "table2", "table3", "figure2", "figure3", "figure4",
    "sec22", "sec62", "sec63", "sec81", "appb2", "survey",
    "tables9_12", "crosstabs", "taxonomy", "category",
    "behavioral", "selective",
]

#: Named population strata (mirrors repro.web.tranco.STRATUM_SIZES,
#: spelled out for the same lightweight-argparse reason).
STRATUM_IDS = ["top-1k", "top-10k", "top-100k", "top-1m"]

#: Dimensions ``repro logs`` can group/rank by (mirrors
#: repro.obs.logql.DIMENSIONS, spelled out for the same reason).
LOG_DIMENSIONS = ["agent", "category", "host", "month", "outcome", "path", "status"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` tool."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="robots.txt / AI-crawler tooling from the IMC'25 reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="may <agent> fetch <path> under this robots.txt?")
    check.add_argument("robots_file")
    check.add_argument("agent")
    check.add_argument("path")

    cls = sub.add_parser("classify", help="restriction level per AI user agent")
    cls.add_argument("robots_file")
    cls.add_argument("agents", nargs="*", help="agents to classify (default: the 24 Table 1 agents)")
    cls.add_argument("--include-wildcard", action="store_true",
                     help="count User-agent: * rules too (ablation mode)")

    lint_cmd = sub.add_parser("lint", help="find author mistakes in a robots.txt")
    lint_cmd.add_argument("robots_file")

    compare = sub.add_parser("compare", help="compliant vs buggy-legacy parser verdicts")
    compare.add_argument("robots_file")
    compare.add_argument("--paths", nargs="*", default=["/", "/page", "/images/a.png"])
    compare.add_argument("--agents", nargs="*", default=["GPTBot", "CCBot", "anybot"])

    aitxt = sub.add_parser("aitxt", help="may content at <path> be used for AI training?")
    aitxt.add_argument("aitxt_file")
    aitxt.add_argument("path")

    sub.add_parser("agents", help="print the Table 1 AI user-agent registry")

    experiment = sub.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument("experiment_id", choices=EXPERIMENT_IDS)
    experiment.add_argument("--fast", action="store_true",
                            help="use a small population for a quick run")

    reproduce = sub.add_parser(
        "reproduce",
        help="run the whole experiment battery over one shared world",
    )
    reproduce.add_argument("--fast", action="store_true",
                           help="use a small population for a quick run")
    reproduce.add_argument("--workers", type=int, default=1,
                           help="experiment worker pool size (results are "
                                "bit-identical for any count)")
    reproduce.add_argument("--only", nargs="*", metavar="ID",
                           choices=EXPERIMENT_IDS, default=None,
                           help="run only these experiments")
    reproduce.add_argument("--telemetry-dir", metavar="DIR", default=None,
                           help="also write METRICS.json, SERIES.json and "
                                "TRACE.jsonl into DIR")
    reproduce.add_argument("--profile", action="store_true",
                           help="attach tracemalloc/cProfile samplers to "
                                "pipeline phases; prints a per-phase summary "
                                "and writes PROFILE.json into "
                                "--telemetry-dir when given")
    reproduce.add_argument("--incremental", action="store_true",
                           help="reuse unchanged experiment results from the "
                                "persistent store; re-run only experiments "
                                "whose inputs changed")
    reproduce.add_argument("--incremental-dir", metavar="DIR",
                           default=".repro-cache",
                           help="incremental store directory "
                                "(default: .repro-cache)")
    reproduce.add_argument("--explain-invalidation", action="store_true",
                           help="report, per experiment, whether it was "
                                "assembled from the store or re-run and why "
                                "(implies --incremental)")
    reproduce.add_argument("--set", metavar="KEY.PARAM=VALUE", action="append",
                           dest="param_edits", default=None,
                           help="override a declared experiment parameter "
                                "(e.g. --set table1.months=4); invalidates "
                                "exactly that experiment's cached result")
    reproduce.add_argument("--strata", nargs="+", metavar="STRATUM",
                           choices=STRATUM_IDS, default=None,
                           help="run the streaming figure battery over these "
                                "population strata (sharded columnar archives) "
                                "instead of the registry battery")
    reproduce.add_argument("--shards", type=int, default=0,
                           help="shard count for strata archives "
                                "(0 = sized automatically)")
    reproduce.add_argument("--archive-dir", metavar="DIR",
                           default=".repro-archives",
                           help="per-stratum archive root for --strata "
                                "(default: .repro-archives); matching "
                                "archives are reopened without re-crawling")
    reproduce.add_argument("--log-dir", metavar="DIR", default=None,
                           help="also archive every simulated request as a "
                                "sharded columnar log store under DIR and "
                                "derive per-(agent, host) traffic features "
                                "(FEATURES.json); query with `repro logs`")

    chaos_cmd = sub.add_parser(
        "chaos",
        help="run experiments under a fault plan; assert byte-identical results",
    )
    chaos_cmd.add_argument("--plan", default="flaky-resets",
                           help="named fault plan (default: flaky-resets; "
                                "see repro.net.chaos.NAMED_PLANS)")
    chaos_cmd.add_argument("--seed", type=int, default=0,
                           help="seed for the plan's per-host fault sampling")
    chaos_cmd.add_argument("--experiments", nargs="*", metavar="ID",
                           choices=EXPERIMENT_IDS,
                           default=["figure2", "sec62"],
                           help="experiments to compare under faults "
                                "(default: figure2 sec62)")
    chaos_cmd.add_argument("--fast", action="store_true",
                           help="use a small population for a quick run")
    chaos_cmd.add_argument("--no-retries", action="store_true",
                           help="disable all retry/confirmation hardening: "
                                "shows what the fault plan does to an "
                                "unprotected pipeline (expect drift)")
    chaos_cmd.add_argument("--results-dir", metavar="DIR", default=None,
                           help="also write baseline/ and chaos/ result "
                                "texts into DIR for inspection")

    stats = sub.add_parser(
        "stats",
        help="analyze a telemetry directory (tables, critical path, run diffs)",
    )
    stats.add_argument("telemetry", nargs="?", default="results",
                       help="telemetry directory or METRICS.json path "
                            "(default: results)")
    stats.add_argument("--section", choices=["counters", "gauges", "histograms"],
                       default=None, help="print only one metrics section")
    stats.add_argument("--critical-path", action="store_true",
                       help="print the slowest span chain from TRACE.jsonl")
    stats.add_argument("--utilization", action="store_true",
                       help="print the experiment-worker concurrency timeline")
    stats.add_argument("--folded", metavar="PATH", default=None,
                       help="write flamegraph-style folded stacks to PATH")
    stats.add_argument("--diff", nargs=2, metavar=("BASELINE", "CANDIDATE"),
                       default=None,
                       help="structurally diff two telemetry directories; "
                            "exits 1 on regressions (CI gate)")
    stats.add_argument("--threshold", type=float, default=0.25,
                       help="relative-change threshold for --diff "
                            "(default: 0.25)")
    stats.add_argument("--from-logs", action="store_true",
                       help="treat TELEMETRY as a wide-event log store "
                            "directory and summarize its records instead "
                            "of reading METRICS.json")

    dashboard = sub.add_parser(
        "dashboard",
        help="per-agent monthly traffic/block matrix from SERIES.json",
    )
    dashboard.add_argument("telemetry", nargs="?", default="results",
                           help="telemetry directory containing SERIES.json "
                                "(default: results)")
    dashboard.add_argument("--category", default=None,
                           help="restrict to one site_category cohort")
    dashboard.add_argument("--from-logs", action="store_true",
                           help="treat TELEMETRY as a wide-event log store "
                                "directory and rebuild the matrix from raw "
                                "records instead of SERIES.json")

    serve = sub.add_parser("serve", help="serve a directory over localhost HTTP")
    serve.add_argument("directory")
    serve.add_argument("--port", type=int, default=0)
    serve.add_argument("--requests", type=int, default=None,
                       help="exit after N requests (default: run until Ctrl-C)")

    serve_metrics = sub.add_parser(
        "serve-metrics",
        help="Prometheus /metrics + /healthz over a telemetry export "
             "or the live in-process registries",
    )
    serve_metrics.add_argument("telemetry", nargs="?", default=None,
                               help="telemetry directory with METRICS.json/"
                                    "SERIES.json to serve statically "
                                    "(default: scrape the live in-process "
                                    "registries instead)")
    serve_metrics.add_argument("--port", type=int, default=0,
                               help="TCP port (default: 0 = ephemeral)")
    serve_metrics.add_argument("--requests", type=int, default=None,
                               help="exit after N requests "
                                    "(default: run until Ctrl-C)")
    serve_metrics.add_argument("--interval", type=float, default=5.0,
                               help="live-mode scrape interval in seconds "
                                    "(default: 5)")
    serve_metrics.add_argument("--jsonl", metavar="PATH", default=None,
                               help="live mode: also append each scrape's "
                                    "deltas to PATH as OTLP-style JSONL")

    alerts_cmd = sub.add_parser(
        "alerts",
        help="evaluate SLO/alert rules over a telemetry export; "
             "exit 1 when any rule fires (CI gate)",
    )
    alerts_cmd.add_argument("telemetry", nargs="?", default="results",
                            help="telemetry directory containing METRICS.json "
                                 "and SERIES.json (default: results)")
    alerts_cmd.add_argument("--rules", metavar="FILE", required=True,
                            help="declarative rule file (TOML [[rule]] tables "
                                 "or JSON {\"rules\": [...]})")
    alerts_cmd.add_argument("--baseline", metavar="DIR", default=None,
                            help="baseline telemetry directory for drift "
                                 "rules (required by kind=drift)")
    alerts_cmd.add_argument("--log-store", metavar="DIR", default=None,
                            help="wide-event log store directory "
                                 "(required by kind=log_volume)")

    logs = sub.add_parser(
        "logs",
        help="query the request-plane wide-event log store",
    )
    logs.add_argument("log_dir",
                      help="log-store directory written by "
                           "`repro reproduce --log-dir`")
    logs_sub = logs.add_subparsers(dest="logs_command", required=True)

    def _add_log_filters(command: argparse.ArgumentParser) -> None:
        command.add_argument("--agent", default=None,
                             help="keep one agent label (e.g. GPTBot)")
        command.add_argument("--host", default=None, help="keep one host")
        command.add_argument("--outcome", default=None,
                             help="keep one outcome (served, blocked_403, ...)")
        command.add_argument("--site-category", dest="category", default=None,
                             help="keep one site category cohort")
        command.add_argument("--month", type=int, default=None,
                             help="keep one simulated month index")
        command.add_argument("--robots-only", action="store_true",
                             help="keep robots.txt fetches only")

    logs_query = logs_sub.add_parser(
        "query", help="print matching records in global-sequence order")
    _add_log_filters(logs_query)
    logs_query.add_argument("--limit", type=int, default=20,
                            help="stop after N records (default: 20)")

    logs_top = logs_sub.add_parser(
        "top", help="rank the most-requested values of one dimension")
    logs_top.add_argument("dimension", choices=LOG_DIMENSIONS)
    _add_log_filters(logs_top)
    logs_top.add_argument("-k", type=int, default=10,
                          help="list the top K values (default: 10)")

    logs_timeline = logs_sub.add_parser(
        "timeline", help="per-agent monthly request-count matrix")
    _add_log_filters(logs_timeline)

    logs_sub.add_parser(
        "verify",
        help="re-hash every shard and check record geometry/ordering")

    return parser


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        return handle.read()


def _cmd_check(args: argparse.Namespace) -> int:
    policy = RobotsPolicy(_read(args.robots_file))
    verdict = policy.verdict(args.agent, args.path)
    status = "ALLOWED" if verdict.allowed else "DISALLOWED"
    rule = (
        f' (matched rule: {"Allow" if verdict.rule.allow else "Disallow"}: '
        f"{verdict.rule.path!r}, line {verdict.rule.line_number})"
        if verdict.rule
        else " (no matching rule; protocol default)"
    )
    print(f"{args.agent} -> {args.path}: {status}{rule}")
    return 0 if verdict.allowed else 1


def _cmd_classify(args: argparse.Namespace) -> int:
    text = _read(args.robots_file)
    agents = args.agents or AI_USER_AGENT_TOKENS
    rows = []
    for agent in agents:
        result = classify(text, agent, require_explicit=not args.include_wildcard)
        rows.append((agent, result.level.name, result.explicit, result.explicit_allow))
    print(render_table(["agent", "level", "explicit rule", "explicit allow"], rows))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    findings = lint(_read(args.robots_file))
    if not findings:
        print("no findings")
        return 0
    rows = [(f.line_number or "-", f.severity.value, f.code, f.message) for f in findings]
    print(render_table(["line", "severity", "code", "message"], rows))
    return 1 if any(f.severity.value in ("warning", "error") for f in findings) else 0


def _cmd_compare(args: argparse.Namespace) -> int:
    text = _read(args.robots_file)
    compliant = RobotsPolicy(text)
    legacy = LegacyPolicy(text)
    rows = []
    disagreements = 0
    for agent in args.agents:
        for path in args.paths:
            a = compliant.is_allowed(agent, path)
            b = legacy.is_allowed(agent, path)
            if a != b:
                disagreements += 1
            rows.append((agent, path, "allow" if a else "deny",
                         "allow" if b else "deny", "" if a == b else "<-- differs"))
    print(render_table(["agent", "path", "RFC 9309", "legacy parser", ""], rows))
    print(f"\n{disagreements} disagreement(s)")
    return 0


def _cmd_aitxt(args: argparse.Namespace) -> int:
    policy = AiTxtPolicy(_read(args.aitxt_file))
    permitted = policy.may_train(args.path)
    print(f"{args.path}: training use {'PERMITTED' if permitted else 'NOT permitted'}")
    return 0 if permitted else 1


def _cmd_agents(_: argparse.Namespace) -> int:
    registry = build_registry()
    rows = [
        (a.token, a.category.value, a.company, a.publishes_ips.value,
         a.claims_respect.value, a.respects_in_practice.value)
        for a in registry
    ]
    print(render_table(
        ["User Agent", "Category", "Company", "Publish IP", "Claims Respect",
         "Respects (paper)"],
        rows,
    ))
    return 0


def _fast_config():
    from .web.population import PopulationConfig

    return PopulationConfig(universe_size=1200, list_size=800, top5k_cut=100,
                            audit_size=300)


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .report.orchestrator import run_one

    result = run_one(
        args.experiment_id, config=_fast_config() if args.fast else None
    )
    print(result.text)
    print("\nmetrics:")
    for name, value in sorted(result.metrics.items()):
        print(f"  {name} = {value:.4f}")
    return 0


def _parse_param_edits(items):
    """``KEY.PARAM=VALUE`` strings -> ``{key: {param: value}}``.

    Values parse as JSON when possible (``4``, ``true``, ``"x"``) and
    fall back to the raw string otherwise.
    """
    import json

    overrides = {}
    for item in items:
        head, sep, raw = item.partition("=")
        key, dot, param = head.partition(".")
        if not sep or not dot or not key or not param:
            raise ValueError(
                f"malformed --set {item!r}; expected KEY.PARAM=VALUE"
            )
        try:
            value = json.loads(raw)
        except ValueError:
            value = raw
        overrides.setdefault(key, {})[param] = value
    return overrides


#: Human explanations for RunReport.incremental dispositions.
_DISPOSITION_NOTES = {
    "hit": "assembled from store (inputs unchanged)",
    "run:first": "ran (no stored result)",
    "run:invalidated": "ran (config/parameter inputs changed)",
    "bypassed:chaos": "store bypassed (fault plan armed)",
}


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from .net.logstore import LogStoreError
    from .report.orchestrator import run_all
    from .web.archive import ArchiveError

    incremental = args.incremental or args.explain_invalidation
    if args.strata and (incremental or args.only or args.param_edits):
        print("repro reproduce: --strata runs the streaming archive battery "
              "and cannot combine with --only/--incremental/--set",
              file=sys.stderr)
        return 2
    try:
        param_overrides = (
            _parse_param_edits(args.param_edits) if args.param_edits else None
        )
    except ValueError as exc:
        print(f"repro reproduce: {exc}", file=sys.stderr)
        return 2

    try:
        report = run_all(
            config=_fast_config() if args.fast else None,
            workers=args.workers,
            experiments=args.only,
            collect_workers=args.workers,
            telemetry_dir=args.telemetry_dir,
            incremental=args.incremental_dir if incremental else None,
            param_overrides=param_overrides,
            strata=args.strata,
            shards=args.shards,
            archive_dir=args.archive_dir,
            profile=args.profile,
            log_dir=args.log_dir,
        )
    except (ArchiveError, LogStoreError) as exc:
        # Archive/log-store problems (truncation, digest mismatch,
        # missing shards) surface as one operator-facing line, never a
        # traceback.
        print(f"repro reproduce: {exc}", file=sys.stderr)
        return 2
    except (KeyError, ValueError) as exc:
        print(f"repro reproduce: {exc}", file=sys.stderr)
        return 2
    for result in report.results:
        print(f"== {result.title} ==")
        print(result.text)
        print()
    print(f"ran {len(report.results)} experiment(s) "
          f"[mode={report.mode}, workers={report.workers}] "
          f"world {report.world_seconds:.1f}s, total {report.total_seconds:.1f}s")
    for entry in report.to_timings()["experiments"]:
        print(f"  {entry['key']:12s} {entry['seconds']:.2f}s")
    if report.incremental:
        reran = [k for k, v in report.incremental.items() if v.startswith("run:")]
        hits = sum(1 for v in report.incremental.values() if v == "hit")
        print(f"incremental: {hits} from store, {len(reran)} re-ran "
              f"[{args.incremental_dir}]")
    if args.explain_invalidation:
        print("invalidation report:")
        for key, disposition in report.incremental.items():
            note = _DISPOSITION_NOTES.get(disposition, disposition)
            print(f"  {key:12s} {disposition:16s} {note}")
    if args.profile and report.profiler is not None:
        print("profile (per phase):")
        for line in report.profiler.summary_lines():
            print(f"  {line}")
    if args.telemetry_dir:
        print(f"telemetry: {args.telemetry_dir}/METRICS.json, "
              f"{args.telemetry_dir}/SERIES.json, "
              f"{args.telemetry_dir}/TRACE.jsonl "
              f"({len(report.spans)} spans)"
              + (f", {args.telemetry_dir}/PROFILE.json" if args.profile else ""))
    if args.log_dir:
        features_dir = args.telemetry_dir or args.log_dir
        print(f"log store: {args.log_dir} "
              f"(features: {features_dir}/FEATURES.json; "
              f"behavioral verdicts: {features_dir}/BEHAVIORAL.json; "
              f"query with `repro logs {args.log_dir} ...`)")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Graceful degradation as a testable invariant.

    Runs the requested experiments twice over fresh (uncached) worlds --
    once fault-free, once under the named fault plan -- and compares the
    result texts byte for byte.  With the retry/confirmation hardening
    active, a healable plan must produce zero drift (exit 0); with
    ``--no-retries`` the same faults are expected to leak into the
    results (exit 1), which is the point of the demonstration.
    """
    from contextlib import nullcontext
    from pathlib import Path

    from .net.chaos import plan, plan_names, retries_disabled
    from .obs.metrics import shared_registry
    from .report.orchestrator import run_all
    from .web.worldstore import WorldStore

    try:
        fault_plan = plan(args.plan)
    except KeyError:
        print(f"repro chaos: unknown plan {args.plan!r}; "
              f"known plans: {', '.join(plan_names())}", file=sys.stderr)
        return 2

    config = _fast_config() if args.fast else None
    keys = args.experiments

    # Fresh stores on both sides: the content-addressed world cache must
    # never hand a fault-free world to the chaos run or vice versa.
    print(f"baseline run ({len(keys)} experiment(s), fault-free)...")
    baseline = run_all(config, experiments=keys, store=WorldStore())

    registry = shared_registry()
    before_errors = registry.counter_totals("net.errors")
    hardening = retries_disabled() if args.no_retries else nullcontext()
    print(f"chaos run (plan={fault_plan.name!r}, seed={args.seed}, "
          f"retries {'DISABLED' if args.no_retries else 'enabled'})...")
    with hardening:
        chaotic = run_all(
            config,
            experiments=keys,
            store=WorldStore(),
            fault_plan=fault_plan,
            chaos_seed=args.seed,
        )

    faults = registry.counter_totals("chaos.faults")
    after_errors = registry.counter_totals("net.errors")
    print("\nfaults injected:")
    for key, value in faults.items():
        if value:
            print(f"  {key} = {value}")
    if not any(faults.values()):
        print("  (none -- plan matched no hosts at this scale/seed)")
    error_delta = {
        key: after_errors.get(key, 0) - before_errors.get(key, 0)
        for key in after_errors
        if after_errors.get(key, 0) != before_errors.get(key, 0)
    }
    if error_delta:
        print("transport errors during chaos run:")
        for key, value in sorted(error_delta.items()):
            print(f"  {key} = +{value}")

    if args.results_dir:
        for label, report in (("baseline", baseline), ("chaos", chaotic)):
            directory = Path(args.results_dir) / label
            directory.mkdir(parents=True, exist_ok=True)
            for result in report.results:
                (directory / f"{result.experiment_id}.txt").write_text(
                    result.text + "\n"
                )
        print(f"result texts written under {args.results_dir}/")

    drifted = []
    for base_result, chaos_result in zip(baseline.results, chaotic.results):
        identical = base_result.text == chaos_result.text
        status = "identical" if identical else "DRIFTED"
        print(f"  {base_result.experiment_id:12s} {status}")
        if not identical:
            drifted.append(base_result.experiment_id)

    if drifted:
        print(f"\nRESULT: DRIFT in {', '.join(drifted)} "
              f"under plan {fault_plan.name!r}"
              + (" (expected: retries disabled)" if args.no_retries else ""))
        return 1
    print(f"\nRESULT: OK -- results byte-identical under plan "
          f"{fault_plan.name!r} (seed {args.seed})")
    return 0


def _print_metrics_tables(payload: dict, source: str, section) -> None:
    sections = [section] if section else ["counters", "gauges", "histograms"]
    print(f"metrics export: {source} "
          f"(schema v{payload.get('schema_version', '?')})")
    if "counters" in sections:
        rows = sorted(payload.get("counters", {}).items())
        print(f"\ncounters ({len(rows)}):")
        print(render_table(["counter", "total"], rows) if rows else "  (none)")
    if "gauges" in sections:
        rows = [(name, f"{value:g}")
                for name, value in sorted(payload.get("gauges", {}).items())]
        print(f"\ngauges ({len(rows)}):")
        print(render_table(["gauge", "value"], rows) if rows else "  (none)")
    if "histograms" in sections:
        rows = []
        for name, hist in sorted(payload.get("histograms", {}).items()):
            count = hist.get("count", 0)
            total = hist.get("sum", 0.0)
            mean = total / count if count else 0.0
            rows.append((name, count, f"{total:g}", f"{mean:.2f}"))
        print(f"\nhistograms ({len(rows)}):")
        print(render_table(["histogram", "count", "sum", "mean"], rows)
              if rows else "  (none)")


def _print_diff(diff) -> None:
    if diff.timing_regressions:
        rows = [(name, f"{a:.3f}", f"{b:.3f}", f"+{(b - a) / a * 100.0:.0f}%")
                for name, a, b in diff.timing_regressions]
        print(f"timing regressions ({len(rows)}):")
        print(render_table(["span", "baseline s", "candidate s", "change"], rows))
    if diff.timing_improvements:
        rows = [(name, f"{a:.3f}", f"{b:.3f}", f"{(b - a) / a * 100.0:.0f}%")
                for name, a, b in diff.timing_improvements]
        print(f"\ntiming improvements ({len(rows)}):")
        print(render_table(["span", "baseline s", "candidate s", "change"], rows))
    drift = [("counter", *row) for row in diff.counter_drift]
    drift += [("series", *row) for row in diff.series_drift]
    if drift:
        rows = [(kind, key, f"{a:g}", f"{b:g}") for kind, key, a, b in drift]
        print(f"\nmetric drift ({len(rows)}):")
        print(render_table(["kind", "key", "baseline", "candidate"], rows))
    for label, keys in (("removed", diff.removed), ("added", diff.added)):
        if keys:
            print(f"\n{label} keys ({len(keys)}):")
            for key in keys:
                print(f"  {key}")
    if diff.has_regressions:
        print("\nRESULT: REGRESSED "
              f"(threshold {diff.threshold:.0%}; see above)")
    else:
        print(f"\nRESULT: OK (no drift beyond {diff.threshold:.0%})")


def _print_cache_effectiveness(payload) -> None:
    """Incremental cache effectiveness, when the run recorded any.

    Reads the ``incremental.*`` counters (experiment-level store
    decisions), the ``delta.*`` gauges, and the
    ``measure.policy_cache.persistent_hits`` gauge (body-level
    persistent probes) out of a METRICS.json payload.
    """
    counters = payload.get("counters", {})
    gauges = payload.get("gauges", {})
    hits = counters.get("incremental.hits", 0)
    misses = counters.get("incremental.misses", 0)
    invalidations = counters.get("incremental.invalidations", 0)
    decisions = hits + misses + invalidations
    persistent = gauges.get("measure.policy_cache.persistent_hits", 0)
    if not decisions and not persistent:
        return
    print("\nincremental cache effectiveness:")
    if decisions:
        print(f"  experiments: {hits}/{decisions} from store "
              f"({misses} first-run, {invalidations} invalidated)")
    if persistent:
        print(f"  body verdicts: {persistent:.0f} persistent hits")


def _parse_rendered_labels(key: str, prefix: str) -> dict:
    """``name{a=1,b=x}`` -> ``{"a": "1", "b": "x"}`` for *prefix* keys."""
    body = key[len(prefix) + 1 : -1]
    return dict(part.split("=", 1) for part in body.split(",") if "=" in part)


def _print_shard_balance(payload) -> None:
    """Per-shard site balance and archive volume, when a run sharded.

    Reads the ``shard.sites{shard=...,stage=...}`` counters (one per
    shard per pipeline stage) and the ``archive.bytes_written`` family
    out of a METRICS.json payload.  Silent when the run never sharded.
    """
    counters = payload.get("counters", {})
    stages: dict = {}
    for key, total in counters.items():
        if key.startswith("shard.sites{"):
            labels = _parse_rendered_labels(key, "shard.sites")
            stage = labels.get("stage", "?")
            stages.setdefault(stage, {})[int(labels.get("shard", -1))] = total
    archive_bytes = sum(
        total for key, total in counters.items()
        if key == "archive.bytes_written" or key.startswith("archive.bytes_written{")
    )
    if not stages and not archive_bytes:
        return
    print("\nshard balance:")
    for stage in sorted(stages):
        sites = [stages[stage][shard] for shard in sorted(stages[stage])]
        total = sum(sites)
        mean = total / len(sites) if sites else 0.0
        skew = max(sites) / mean if mean else 0.0
        print(f"  {stage}: {total} sites over {len(sites)} shard(s), "
              f"peak {max(sites)} ({skew:.2f}x mean)")
    if archive_bytes:
        print(f"  archive: {archive_bytes} bytes written")


def _print_archive_probes(payload) -> None:
    """Per-shard archive residency, when a strata run published probes.

    Reads the ``archive.*{shard=...}`` gauge families (data bytes on
    disk, mmap'd bytes currently mapped, body-cache occupancy) written
    by ``ArchiveSet.publish_probes``.  Silent when the run never opened
    a sharded archive.
    """
    gauges = payload.get("gauges", {})
    shards: dict = {}
    for key, value in gauges.items():
        if key.startswith("archive.") and "{" in key:
            name = key.partition("{")[0]
            field = name[len("archive."):]
            labels = _parse_rendered_labels(key, name)
            shard = labels.get("shard")
            if shard is None:
                continue
            label = (labels.get("stratum", ""), shard)
            shards.setdefault(label, {})[field] = value
    if not shards:
        return
    print("\narchive probes (per shard):")
    rows = []
    for (stratum, shard), fields in sorted(shards.items()):
        rows.append((
            stratum or "-",
            shard,
            f"{fields.get('data_bytes', 0):.0f}",
            f"{fields.get('mapped_bytes', 0):.0f}",
            f"{fields.get('body_cache_entries', 0):.0f}",
            f"{fields.get('body_cache_chars', 0):.0f}",
        ))
    print(render_table(
        ["stratum", "shard", "data B", "mapped B", "cached bodies", "cached chars"],
        rows,
    ))


def _print_profile(directory) -> None:
    """The PROFILE.json phase table, when the run profiled.

    Silent when the directory has no (or a corrupt) profile artifact --
    profiling is opt-in and most telemetry exports won't carry one.
    """
    from .obs.analyze import TelemetryError
    from .obs.profile import load_profile

    try:
        payload = load_profile(directory / "PROFILE.json")
    except TelemetryError:
        return
    phases = payload.get("phases", [])
    if not phases:
        return
    print(f"\nprofile ({len(phases)} phase(s)):")
    rows = []
    for phase in phases:
        peak = phase.get("memory_peak_bytes")
        delta = phase.get("memory_delta_bytes")
        cpu = phase.get("cpu_seconds")
        rows.append((
            phase.get("name", "?"),
            f"{phase.get('seconds', 0.0):.3f}",
            f"{peak / 1e6:.2f}" if peak is not None else "-",
            f"{delta / 1e6:+.2f}" if delta is not None else "-",
            f"{cpu:.3f}" if cpu is not None else "-",
        ))
    print(render_table(
        ["phase", "wall s", "peak MB", "delta MB", "cpu s"], rows
    ))


def _print_behavioral(directory) -> None:
    """The BEHAVIORAL.json verdict summary, when the run exported one.

    Silent when the directory has no (or a corrupt) verdict artifact --
    only runs with a log store produce it.
    """
    import json

    path = directory / "BEHAVIORAL.json"
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return
    summary = payload.get("summary", {})
    if not summary:
        return
    total = sum(summary.values())
    print(f"\nbehavioral verdicts ({total} (agent, host) pair(s)):")
    rows = [(verdict, count) for verdict, count in sorted(summary.items())]
    print(render_table(["verdict", "pairs"], rows))
    gated = [
        (agent, host, entry["verdict"], entry["score"],
         " ".join(entry.get("signals", ())))
        for agent, hosts in sorted(payload.get("verdicts", {}).items())
        for host, entry in sorted(hosts.items())
        if entry.get("verdict") != "allow"
    ]
    if gated:
        print(f"\ngated pairs ({len(gated)}):")
        print(render_table(["agent", "host", "verdict", "score", "signals"],
                           gated))


def _cmd_stats_from_logs(target: str) -> int:
    """``repro stats --from-logs``: summarize a log store's records."""
    from .net.logstore import LogStore, LogStoreError
    from .obs.logql import LogFilter, group_by, query, top_k

    try:
        with LogStore.open(target) as store:
            digest = store.config_digest[:12] if store.config_digest else "-"
            print(f"log store: {target} ({store.n_records} record(s), "
                  f"{store.n_shards} shard(s), config {digest})")
            outcomes = group_by(store, ("outcome",))
            robots = len(query(store, LogFilter(robots_only=True)))
            agents = top_k(store, "agent", k=10)
    except LogStoreError as exc:
        print(f"repro stats: {exc}", file=sys.stderr)
        return 2

    rows = [(outcome, count) for (outcome,), count in outcomes.items()]
    print(f"\noutcomes ({len(rows)}):")
    print(render_table(["outcome", "requests"], rows) if rows else "  (none)")
    print(f"\nrobots.txt fetches: {robots}")
    print(f"\ntop agents ({len(agents)}):")
    print(render_table(["agent", "requests"], agents) if agents else "  (none)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .obs.analyze import (
        TelemetryError,
        critical_path,
        diff_runs,
        folded_stacks,
        load_metrics,
        load_trace,
        worker_utilization,
    )

    if args.from_logs:
        return _cmd_stats_from_logs(args.telemetry)

    try:
        if args.diff is not None:
            diff = diff_runs(args.diff[0], args.diff[1],
                             threshold=args.threshold)
            _print_diff(diff)
            return 1 if diff.has_regressions else 0

        target = Path(args.telemetry)
        metrics_path = target / "METRICS.json" if target.is_dir() else target
        trace_path = metrics_path.parent / "TRACE.jsonl"

        wants_trace = args.critical_path or args.utilization or args.folded
        if not wants_trace:
            payload = load_metrics(metrics_path)
            _print_metrics_tables(payload, str(metrics_path), args.section)
            _print_cache_effectiveness(payload)
            _print_shard_balance(payload)
            _print_archive_probes(payload)
            _print_profile(metrics_path.parent)
            _print_behavioral(metrics_path.parent)
            return 0

        records = load_trace(trace_path)
        if args.critical_path:
            chain = critical_path(records)
            print(f"critical path ({len(chain)} spans, "
                  f"{sum(float(r.get('duration_seconds', 0.0)) for r in chain[:1]):.3f}s root):")
            for depth, record in enumerate(chain):
                print(f"  {'  ' * depth}{record.get('name', '?')} "
                      f"{float(record.get('duration_seconds', 0.0)):.3f}s")
            try:
                _print_cache_effectiveness(load_metrics(metrics_path))
            except TelemetryError:
                pass  # a trace without metrics is still analyzable
        if args.utilization:
            timeline = worker_utilization(records)
            rows = [(f"{seg['start']:.3f}", f"{seg['end']:.3f}", seg["active"])
                    for seg in timeline]
            print(f"\nworker utilization ({len(rows)} intervals):")
            print(render_table(["start s", "end s", "active"], rows)
                  if rows else "  (no experiment spans)")
        if args.folded:
            lines = folded_stacks(records)
            with open(args.folded, "w", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n")
            print(f"\nwrote {len(lines)} folded stack lines to {args.folded}")
        return 0
    except TelemetryError as exc:
        print(f"repro stats: {exc}", file=sys.stderr)
        return 2


def _dashboard_matrix_from_logs(target: str, category):
    """The dashboard's ``{agent: {month: cell}}`` shape from raw records.

    Returns ``(matrix, source_label)`` or raises SystemExit-free errors
    via the ``(None, exit_code)`` convention the caller unwraps.
    """
    from .net.logstore import LogStore, LogStoreError
    from .obs.analyze import BLOCKED_OUTCOMES
    from .obs.logql import LogFilter, group_by

    try:
        with LogStore.open(target) as store:
            if category is not None:
                known = sorted(
                    value for (value,) in group_by(store, ("category",))
                )
                if category not in known:
                    vocabulary = ", ".join(known) if known else "(none recorded)"
                    print(f"repro dashboard: unknown category "
                          f"{category!r}; known categories: {vocabulary}",
                          file=sys.stderr)
                    return None, 2
            counts = group_by(
                store,
                ("agent", "month", "outcome"),
                LogFilter(category=category) if category else None,
            )
    except LogStoreError as exc:
        print(f"repro dashboard: {exc}", file=sys.stderr)
        return None, 2

    matrix: dict = {}
    for (agent, month, outcome), n in counts.items():
        cell = matrix.setdefault(agent, {}).setdefault(
            month, {"requests": 0, "blocked": 0, "challenged": 0}
        )
        cell["requests"] += n
        if outcome in BLOCKED_OUTCOMES:
            cell["blocked"] += n
        elif outcome == "challenged":
            cell["challenged"] += n
    return matrix, 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .crawlers.commoncrawl import month_label
    from .obs.analyze import (
        TelemetryError,
        dashboard_matrix,
        known_categories,
        load_series,
    )

    cohort = f"site_category={args.category}" if args.category else "all sites"
    if args.from_logs:
        matrix, code = _dashboard_matrix_from_logs(args.telemetry, args.category)
        if matrix is None:
            return code
        source = f"log store {args.telemetry}"
    else:
        try:
            series_path = Path(args.telemetry) / "SERIES.json"
            payload = load_series(series_path)
            if args.category is not None:
                known = known_categories(payload)
                if args.category not in known:
                    vocabulary = ", ".join(known) if known else "(none recorded)"
                    print(f"repro dashboard: unknown category "
                          f"{args.category!r}; known categories: {vocabulary}",
                          file=sys.stderr)
                    return 2
            matrix = dashboard_matrix(payload, category=args.category)
        except TelemetryError as exc:
            print(f"repro dashboard: {exc}", file=sys.stderr)
            return 2
        source = str(series_path)

    if not matrix:
        print(f"no {'records' if args.from_logs else 'sim.requests series'} "
              f"for {cohort} in {source}")
        return 0

    months = sorted({m for rows in matrix.values() for m in rows})
    print(f"operator dashboard ({cohort}); cells are "
          "requests / blocked / challenged per simulated month")
    table_rows = []
    for agent in sorted(matrix):
        row = [agent]
        for month in months:
            cell = matrix[agent].get(month)
            row.append(
                f"{cell['requests']}/{cell['blocked']}/{cell['challenged']}"
                if cell else "-"
            )
        table_rows.append(tuple(row))
    headers = ["agent"] + [month_label(m) if m >= 0 else "?" for m in months]
    print(render_table(headers, table_rows))
    try:
        from .obs.analyze import load_metrics

        _print_shard_balance(load_metrics(Path(args.telemetry) / "METRICS.json"))
    except TelemetryError:
        pass  # a series-only telemetry dir is still a valid dashboard
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from .net.realserver import RealHttpServer
    from .net.server import Website

    site = Website.from_directory(args.directory)
    with RealHttpServer(site, port=args.port) as server:
        print(f"serving {args.directory} at http://{server.address}/ "
              f"({len(site.pages)} pages)")
        try:
            while True:
                if args.requests is not None and len(site.access_log) >= args.requests:
                    break
                time.sleep(0.05)
        except KeyboardInterrupt:
            pass
    print(f"served {len(site.access_log)} request(s)")
    return 0


def _cmd_serve_metrics(args: argparse.Namespace) -> int:
    """Prometheus text exposition over HTTP, static or live.

    With a telemetry directory: serve its METRICS.json/SERIES.json
    exactly as written (the rendered counter totals are byte-for-byte
    the export's).  Without one: scrape the live in-process registries
    every ``--interval`` seconds and serve the latest cumulative state,
    optionally streaming each scrape's deltas to ``--jsonl``.
    """
    import time
    from pathlib import Path

    from .obs.analyze import TelemetryError, load_metrics, load_series
    from .obs.live import JsonlSink, LiveTelemetry, MetricsHTTPServer

    live = None
    if args.telemetry is not None:
        directory = Path(args.telemetry)
        try:
            metrics_payload = load_metrics(directory / "METRICS.json")
            series_payload = load_series(directory / "SERIES.json")
        except TelemetryError as exc:
            print(f"repro serve-metrics: {exc}", file=sys.stderr)
            return 2
        source = lambda: (metrics_payload, series_payload)  # noqa: E731
        health = lambda: {"mode": "static", "telemetry": str(directory)}  # noqa: E731
        server = MetricsHTTPServer(source, health=health, port=args.port)
        label = f"static export from {directory}"
    else:
        live = LiveTelemetry()
        if args.jsonl:
            live.add_sink(JsonlSink(args.jsonl))
        server = live.serve(port=args.port)
        live.start(interval_seconds=args.interval)
        label = f"live registries (scrape every {args.interval:g}s)"

    if live is None:
        server.start()
    print(f"serving {label} at {server.url}/metrics "
          f"(health: {server.url}/healthz)")
    try:
        while True:
            if args.requests is not None and server.request_count >= args.requests:
                break
            time.sleep(0.05)
    except KeyboardInterrupt:
        pass
    finally:
        if live is not None:
            live.stop()
        server.stop()
    print(f"handled {server.request_count} request(s)")
    return 0


def _cmd_alerts(args: argparse.Namespace) -> int:
    """The SLO gate: evaluate declarative rules over a telemetry export.

    Exit codes follow the CI-gate convention: 0 clean, 1 when any rule
    fires, 2 for operator errors (bad rule file, missing telemetry,
    drift rules without a ``--baseline``).
    """
    from pathlib import Path

    from .obs.alerts import AlertEngine, AlertError, load_rules
    from .obs.analyze import TelemetryError, load_metrics, load_series

    try:
        rules = load_rules(args.rules)
    except AlertError as exc:
        print(f"repro alerts: {exc}", file=sys.stderr)
        return 2

    directory = Path(args.telemetry)
    try:
        metrics_payload = load_metrics(directory / "METRICS.json")
        series_payload = load_series(directory / "SERIES.json")
        baseline_metrics = baseline_series = None
        if args.baseline:
            baseline = Path(args.baseline)
            baseline_metrics = load_metrics(baseline / "METRICS.json")
            baseline_series = load_series(baseline / "SERIES.json")
    except TelemetryError as exc:
        print(f"repro alerts: {exc}", file=sys.stderr)
        return 2

    log_timelines = None
    if args.log_store:
        from .net.logstore import LogStore, LogStoreError
        from .obs.logql import timelines

        try:
            with LogStore.open(args.log_store) as store:
                log_timelines = timelines(store)
        except LogStoreError as exc:
            print(f"repro alerts: {exc}", file=sys.stderr)
            return 2

    engine = AlertEngine(rules, baseline_metrics=baseline_metrics,
                         baseline_series=baseline_series)
    try:
        events = engine.evaluate(metrics=metrics_payload,
                                 series=series_payload,
                                 log_timelines=log_timelines)
    except AlertError as exc:
        print(f"repro alerts: {exc}", file=sys.stderr)
        return 2

    print(f"evaluated {len(rules)} rule(s) against {directory}"
          + (f" (baseline: {args.baseline})" if args.baseline else "")
          + (f" (log store: {args.log_store})" if args.log_store else ""))
    if not events:
        print("RESULT: OK -- no alerts fired")
        return 0
    for event in events:
        print(f"  [{event.severity.upper():5s}] {event.rule}: {event.message}")
    print(f"RESULT: FIRING -- {len(events)} alert(s)")
    return 1


def _cmd_logs(args: argparse.Namespace) -> int:
    """Operator console over the wide-event log store.

    Every subcommand is a pure function of the archive bytes, so
    identical stores always print identical output.  Exit codes: 0 on
    success, 2 for operator errors (missing/corrupt store) as one
    stderr line.
    """
    from .crawlers.commoncrawl import month_label
    from .net.logstore import LogStore, LogStoreError
    from .obs.logql import LogFilter, query, timelines, top_k

    where = LogFilter(
        agent=getattr(args, "agent", None),
        host=getattr(args, "host", None),
        outcome=getattr(args, "outcome", None),
        category=getattr(args, "category", None),
        month=getattr(args, "month", None),
        robots_only=getattr(args, "robots_only", False),
    )
    try:
        with LogStore.open(args.log_dir) as store:
            if args.logs_command == "verify":
                store.verify()
                print(f"OK -- {store.n_records} record(s) across "
                      f"{store.n_shards} shard(s) verified")
                return 0

            if args.logs_command == "query":
                records = query(store, where, limit=max(args.limit, 0))
                if not records:
                    print("no matching records")
                    return 0
                rows = [
                    (r.seq, month_label(r.month) if r.month >= 0 else "?",
                     r.agent, r.host, r.path, r.status, r.outcome)
                    for r in records
                ]
                print(render_table(
                    ["seq", "month", "agent", "host", "path", "status",
                     "outcome"],
                    rows,
                ))
                print(f"\n{len(records)} record(s) "
                      f"(of {store.n_records} in the store)")
                return 0

            if args.logs_command == "top":
                ranked = top_k(store, args.dimension, k=args.k, where=where)
                if not ranked:
                    print("no matching records")
                    return 0
                print(render_table([args.dimension, "requests"], ranked))
                return 0

            lines = timelines(store, where)
    except LogStoreError as exc:
        print(f"repro logs: {exc}", file=sys.stderr)
        return 2

    if not lines:
        print("no matching records")
        return 0
    months = sorted({m for per_month in lines.values() for m in per_month})
    rows = [
        tuple([agent] + [str(lines[agent].get(m, "-")) for m in months])
        for agent in lines
    ]
    headers = ["agent"] + [month_label(m) if m >= 0 else "?" for m in months]
    print("requests per agent per simulated month")
    print(render_table(headers, rows))
    return 0


_HANDLERS = {
    "check": _cmd_check,
    "classify": _cmd_classify,
    "lint": _cmd_lint,
    "compare": _cmd_compare,
    "aitxt": _cmd_aitxt,
    "agents": _cmd_agents,
    "experiment": _cmd_experiment,
    "reproduce": _cmd_reproduce,
    "chaos": _cmd_chaos,
    "stats": _cmd_stats,
    "dashboard": _cmd_dashboard,
    "serve": _cmd_serve,
    "serve-metrics": _cmd_serve_metrics,
    "alerts": _cmd_alerts,
    "logs": _cmd_logs,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
