"""Offline analysis of exported telemetry artifacts.

A run with ``telemetry_dir`` set leaves three artifacts behind --
``METRICS.json`` (counter/gauge/histogram totals), ``SERIES.json``
(labeled time series on the simulated-month clock) and ``TRACE.jsonl``
(the span records).  This module turns those files back into answers an
operator actually asks:

* *Where did the wall-clock go?* -- :func:`critical_path` walks the
  span DAG from the slowest root down its slowest children, naming the
  chain a faster machine would have to shorten.
* *Were the workers busy?* -- :func:`worker_utilization` rebuilds the
  concurrency timeline of ``experiment:*`` spans.
* *What does each experiment spend time on itself?* --
  :func:`self_time_tree` and :func:`folded_stacks` (flamegraph-style
  ``a;b;c <microseconds>`` lines).
* *Did this run regress against that one?* -- :func:`diff_runs`
  compares two telemetry directories structurally: experiment-span
  slowdowns plus counter/series drift beyond a relative threshold.
* *What did each agent see, month by month?* --
  :func:`dashboard_matrix` folds ``sim.requests`` series into the
  agent-by-month view ``repro dashboard`` renders.

Every loader raises :class:`TelemetryError` with a one-line message on
missing or corrupt inputs so the CLI can exit cleanly without a
traceback.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .metrics import METRICS_SCHEMA_VERSION
from .series import SERIES_SCHEMA_VERSION
from .trace import TRACE_SCHEMA_VERSION

__all__ = [
    "TelemetryError",
    "load_metrics",
    "load_series",
    "load_trace",
    "parse_key",
    "critical_path",
    "worker_utilization",
    "self_time_tree",
    "folded_stacks",
    "RunDiff",
    "diff_runs",
    "dashboard_matrix",
]


class TelemetryError(Exception):
    """A telemetry artifact is missing, corrupt, or unrecognized."""


# -- loaders -------------------------------------------------------------------


def _load_json(path: Path, artifact: str, schema_version: int) -> Dict[str, object]:
    if not path.is_file():
        raise TelemetryError(f"missing telemetry artifact: {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (ValueError, OSError) as exc:
        raise TelemetryError(f"corrupt {artifact}: {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise TelemetryError(f"corrupt {artifact}: {path}: expected a JSON object")
    found = payload.get("schema_version")
    if found != schema_version:
        raise TelemetryError(
            f"unsupported {artifact} schema_version {found!r} in {path}"
            f" (expected {schema_version})"
        )
    return payload


def load_metrics(path: Union[str, Path]) -> Dict[str, object]:
    """Parse a ``METRICS.json`` payload, validating its schema."""
    return _load_json(Path(path), "METRICS.json", METRICS_SCHEMA_VERSION)


def load_series(path: Union[str, Path]) -> Dict[str, object]:
    """Parse a ``SERIES.json`` payload, validating its schema."""
    payload = _load_json(Path(path), "SERIES.json", SERIES_SCHEMA_VERSION)
    if not isinstance(payload.get("series"), dict):
        raise TelemetryError(
            f"corrupt SERIES.json: {path}: missing 'series' object"
        )
    return payload


def load_trace(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse a ``TRACE.jsonl`` file into its span records."""
    path = Path(path)
    if not path.is_file():
        raise TelemetryError(f"missing telemetry artifact: {path}")
    records: List[Dict[str, object]] = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise TelemetryError(f"corrupt TRACE.jsonl: {path}: {exc}") from exc
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise TelemetryError(
                f"corrupt TRACE.jsonl: {path}: line {lineno}: {exc}"
            ) from exc
        if not isinstance(record, dict) or "span_id" not in record:
            raise TelemetryError(
                f"corrupt TRACE.jsonl: {path}: line {lineno}: not a span record"
            )
        if record.get("schema_version") != TRACE_SCHEMA_VERSION:
            raise TelemetryError(
                f"unsupported TRACE.jsonl schema_version"
                f" {record.get('schema_version')!r} in {path}: line {lineno}"
            )
        records.append(record)
    return records


def parse_key(rendered: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`repro.obs.metrics.render_key`.

    ``"sim.requests{agent=GPTBot,outcome=served}"`` becomes
    ``("sim.requests", {"agent": "GPTBot", "outcome": "served"})``.
    """
    if not rendered.endswith("}") or "{" not in rendered:
        return rendered, {}
    name, _, raw = rendered[:-1].partition("{")
    labels: Dict[str, str] = {}
    for pair in raw.split(","):
        key, _, value = pair.partition("=")
        if key:
            labels[key] = value
    return name, labels


# -- span-tree analysis --------------------------------------------------------


def _children_index(
    records: List[Dict[str, object]],
) -> Tuple[List[Dict[str, object]], Dict[str, List[Dict[str, object]]]]:
    """Split records into roots and a parent-id -> children index."""
    ids = {record["span_id"] for record in records}
    roots: List[Dict[str, object]] = []
    children: Dict[str, List[Dict[str, object]]] = {}
    for record in records:
        parent = record.get("parent_id") or ""
        if parent and parent in ids:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)
    return roots, children


def _duration(record: Dict[str, object]) -> float:
    return float(record.get("duration_seconds", 0.0))


def critical_path(records: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """The slowest root-to-leaf chain through the span DAG.

    Starts at the longest-duration root and repeatedly descends into
    the longest-duration child.  Ties break on span name so the path
    is deterministic across runs.
    """
    roots, children = _children_index(records)
    if not roots:
        return []
    path: List[Dict[str, object]] = []
    node = max(roots, key=lambda r: (_duration(r), str(r.get("name", ""))))
    while node is not None:
        path.append(node)
        kids = children.get(node["span_id"], [])
        node = (
            max(kids, key=lambda r: (_duration(r), str(r.get("name", ""))))
            if kids
            else None
        )
    return path


def worker_utilization(
    records: List[Dict[str, object]], prefix: str = "experiment:"
) -> List[Dict[str, float]]:
    """Concurrency timeline of spans whose name starts with *prefix*.

    Returns intervals ``{"start": s, "end": e, "active": n}`` with
    offsets in seconds from the earliest matching span's start and
    ``active`` the number of spans in flight over that interval.
    """
    spans = [
        record
        for record in records
        if str(record.get("name", "")).startswith(prefix)
    ]
    if not spans:
        return []
    origin = min(float(s["start_unix"]) for s in spans)
    events: List[Tuple[float, int]] = []
    for record in spans:
        start = float(record["start_unix"]) - origin
        events.append((start, +1))
        events.append((start + _duration(record), -1))
    events.sort()
    timeline: List[Dict[str, float]] = []
    active = 0
    last = 0.0
    for offset, step in events:
        if active and offset > last:
            timeline.append({"start": last, "end": offset, "active": active})
        active += step
        last = offset
    return timeline


def self_time_tree(
    records: List[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Nested ``{name, duration, self, children}`` trees, one per root.

    ``self`` is the span's duration minus its direct children's
    durations (clamped at zero -- overlapping thread-pool children can
    exceed their parent's wall clock).
    """
    roots, children = _children_index(records)

    def build(record: Dict[str, object]) -> Dict[str, object]:
        kids = children.get(record["span_id"], [])
        built = [build(kid) for kid in kids]
        duration = _duration(record)
        child_total = sum(_duration(kid) for kid in kids)
        return {
            "name": record.get("name", ""),
            "duration_seconds": duration,
            "self_seconds": max(0.0, duration - child_total),
            "children": built,
        }

    return [build(root) for root in roots]


def folded_stacks(records: List[Dict[str, object]]) -> List[str]:
    """Flamegraph-style folded stack lines (self time in microseconds).

    Each span contributes ``root;...;name <int microseconds>`` of
    *self* time; feed the lines to any flamegraph renderer.  Lines are
    sorted for determinism.
    """
    lines: List[str] = []

    def walk(node: Dict[str, object], prefix: str) -> None:
        path = f"{prefix};{node['name']}" if prefix else str(node["name"])
        micros = int(round(node["self_seconds"] * 1e6))
        lines.append(f"{path} {micros}")
        for child in node["children"]:
            walk(child, path)

    for tree in self_time_tree(records):
        walk(tree, "")
    return sorted(lines)


# -- structural run diff -------------------------------------------------------


@dataclass
class RunDiff:
    """Structural comparison of two telemetry directories.

    Attributes:
        timing_regressions: Experiment spans slower in B beyond the
            threshold: ``(name, seconds_a, seconds_b)``.
        timing_improvements: Experiment spans faster in B beyond the
            threshold (informational).
        counter_drift: Counters whose totals moved beyond the
            threshold: ``(key, value_a, value_b)``.
        series_drift: Series whose totals moved beyond the threshold.
        added: Counter/series keys present only in B (informational).
        removed: Counter/series keys present only in A.
        threshold: The relative-change threshold applied.
    """

    timing_regressions: List[Tuple[str, float, float]] = field(default_factory=list)
    timing_improvements: List[Tuple[str, float, float]] = field(default_factory=list)
    counter_drift: List[Tuple[str, float, float]] = field(default_factory=list)
    series_drift: List[Tuple[str, float, float]] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    threshold: float = 0.25

    @property
    def has_regressions(self) -> bool:
        """True when the diff should fail a CI gate."""
        return bool(
            self.timing_regressions
            or self.counter_drift
            or self.series_drift
            or self.removed
        )


def _experiment_seconds(records: List[Dict[str, object]]) -> Dict[str, float]:
    seconds: Dict[str, float] = {}
    for record in records:
        name = str(record.get("name", ""))
        if name.startswith("experiment:"):
            seconds[name] = seconds.get(name, 0.0) + _duration(record)
    return seconds


def _series_totals(payload: Dict[str, object]) -> Dict[str, float]:
    totals: Dict[str, float] = {}
    for key, entry in payload.get("series", {}).items():
        totals[key] = float(entry.get("total", 0.0))
    return totals


def _drifted(value_a: float, value_b: float, threshold: float) -> bool:
    if value_a == value_b:
        return False
    base = max(abs(value_a), abs(value_b))
    return abs(value_b - value_a) / base > threshold


def diff_runs(
    dir_a: Union[str, Path],
    dir_b: Union[str, Path],
    threshold: float = 0.25,
) -> RunDiff:
    """Structurally compare telemetry directory *dir_b* against *dir_a*.

    *dir_a* is the baseline.  Experiment spans slower in B by more
    than *threshold* (relative) are regressions; counters and series
    whose totals drift beyond *threshold*, and keys that disappeared,
    also fail the gate.  Gauges are process-local observations and are
    deliberately ignored.
    """
    dir_a, dir_b = Path(dir_a), Path(dir_b)
    metrics_a = load_metrics(dir_a / "METRICS.json")
    metrics_b = load_metrics(dir_b / "METRICS.json")
    series_a = _series_totals(load_series(dir_a / "SERIES.json"))
    series_b = _series_totals(load_series(dir_b / "SERIES.json"))
    trace_a = load_trace(dir_a / "TRACE.jsonl")
    trace_b = load_trace(dir_b / "TRACE.jsonl")

    diff = RunDiff(threshold=threshold)

    seconds_a = _experiment_seconds(trace_a)
    seconds_b = _experiment_seconds(trace_b)
    for name in sorted(seconds_a.keys() & seconds_b.keys()):
        before, after = seconds_a[name], seconds_b[name]
        if after > before and _drifted(before, after, threshold):
            diff.timing_regressions.append((name, before, after))
        elif before > after and _drifted(before, after, threshold):
            diff.timing_improvements.append((name, before, after))

    counters_a = metrics_a.get("counters", {})
    counters_b = metrics_b.get("counters", {})
    for key in sorted(counters_a.keys() & counters_b.keys()):
        if _drifted(float(counters_a[key]), float(counters_b[key]), threshold):
            diff.counter_drift.append(
                (key, float(counters_a[key]), float(counters_b[key]))
            )
    for key in sorted(series_a.keys() & series_b.keys()):
        if _drifted(series_a[key], series_b[key], threshold):
            diff.series_drift.append((key, series_a[key], series_b[key]))

    keys_a = set(counters_a) | set(series_a)
    keys_b = set(counters_b) | set(series_b)
    diff.added = sorted(keys_b - keys_a)
    diff.removed = sorted(keys_a - keys_b)
    return diff


# -- operator dashboard --------------------------------------------------------

#: ``sim.requests`` outcomes counted as blocked in the dashboard.
BLOCKED_OUTCOMES = frozenset({"blocked_403", "reset"})


def known_categories(series_payload: Dict[str, object]) -> List[str]:
    """Every ``site_category`` label value the run's ``sim.requests`` saw.

    The vocabulary the dashboard's ``--category`` filter validates
    against: asking for a cohort outside this set is an operator typo,
    not an empty matrix.
    """
    categories = set()
    for rendered in series_payload.get("series", {}):
        name, labels = parse_key(rendered)
        if name == "sim.requests" and "site_category" in labels:
            categories.add(labels["site_category"])
    return sorted(categories)


def dashboard_matrix(
    series_payload: Dict[str, object],
    category: Optional[str] = None,
) -> Dict[str, Dict[int, Dict[str, int]]]:
    """Fold ``sim.requests`` series into an agent-by-month rollup.

    Returns ``{agent: {month: {"requests", "blocked", "challenged"}}}``
    -- the same nested shape as
    :meth:`repro.net.accesslog.AccessLog.monthly_summary`, so one
    renderer serves both.  *category* (a ``site_category`` label value)
    restricts the rollup to that site cohort.
    """
    matrix: Dict[str, Dict[int, Dict[str, int]]] = {}
    for rendered, entry in series_payload.get("series", {}).items():
        name, labels = parse_key(rendered)
        if name != "sim.requests":
            continue
        if category is not None and labels.get("site_category") != category:
            continue
        agent = labels.get("agent", "other")
        outcome = labels.get("outcome", "")
        months = entry.get("months", [])
        values = entry.get("values", [])
        rows = matrix.setdefault(agent, {})
        for month, value in zip(months, values):
            cell = rows.setdefault(
                int(month), {"requests": 0, "blocked": 0, "challenged": 0}
            )
            cell["requests"] += int(value)
            if outcome in BLOCKED_OUTCOMES:
                cell["blocked"] += int(value)
            elif outcome == "challenged":
                cell["challenged"] += int(value)
    return matrix
