"""Streaming aggregations must be byte-identical to the in-memory ones.

The streaming plane iterates shard archives (O(shard) resident state)
instead of materialized SiteRecords; every Figure 2-4 / Table 3 output
must match the classic SnapshotSeries computation exactly, including
ordering-sensitive payloads (removal-domain insertion order, the Table
4 row order).
"""

import pytest

from repro.measure.longitudinal import (
    allow_and_removal_trend,
    collect_shard_archives,
    collect_snapshots,
    first_allow_table,
    full_disallow_trend,
    per_agent_trend,
    snapshot_coverage_table,
)
from repro.measure.streaming import (
    streaming_allow_and_removal_trend,
    streaming_analysis_domains,
    streaming_coverage_table,
    streaming_first_allow_table,
    streaming_full_disallow_trend,
    streaming_per_agent_trend,
)
from repro.web.archive import ArchiveSet
from repro.web.population import PopulationConfig, build_web_population

CONFIG = PopulationConfig(
    universe_size=450, list_size=300, top5k_cut=40, audit_size=80, seed=7
)


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    population = build_web_population(CONFIG)
    series = collect_snapshots(population, workers=1)
    root = tmp_path_factory.mktemp("archive")
    collect_shard_archives(population, root, shards=3, workers=1)
    archive = ArchiveSet.open(root)
    yield population, series, archive
    archive.close()


class TestStreamingParity:
    def test_analysis_domains_identical(self, world):
        _, series, archive = world
        assert streaming_analysis_domains(archive) == series.analysis_domains
        assert archive.stable_domains() == series.stable_domains

    def test_figure2_rows_identical(self, world):
        population, series, archive = world
        top5k = {s.domain for s in population.stable_top5k}
        assert streaming_full_disallow_trend(archive) == full_disallow_trend(
            series, top5k
        )
        assert streaming_full_disallow_trend(
            archive, require_explicit=False
        ) == full_disallow_trend(series, top5k, require_explicit=False)

    def test_figure3_trends_identical(self, world):
        _, series, archive = world
        assert streaming_per_agent_trend(archive) == per_agent_trend(series)

    def test_figure4_trend_identical_including_order(self, world):
        _, series, archive = world
        classic = allow_and_removal_trend(series)
        streamed = streaming_allow_and_removal_trend(archive)
        assert streamed.explicit_allow_counts == classic.explicit_allow_counts
        assert streamed.removals_per_period == classic.removals_per_period
        # Dict equality AND iteration order: the paper artifact renders
        # removal domains in first-removal order.
        assert list(streamed.removal_domains.items()) == list(
            classic.removal_domains.items()
        )

    def test_table4_rows_identical(self, world):
        _, series, archive = world
        assert streaming_first_allow_table(archive) == first_allow_table(series)

    def test_table3_rows_identical(self, world):
        _, series, archive = world
        assert streaming_coverage_table(archive) == snapshot_coverage_table(series)

    def test_body_store_backend_changes_nothing(self, world):
        population, series, archive = world
        store = archive.body_store()
        cold = streaming_full_disallow_trend(archive, store=store)
        store.flush()
        # A second pass answers from the persisted per-body facts.
        warm = streaming_full_disallow_trend(archive, store=store)
        top5k = {s.domain for s in population.stable_top5k}
        assert cold == warm == full_disallow_trend(series, top5k)
        assert store.fact_count() > 0


class TestStreamingRunners:
    def test_experiment_results_identical(self, world):
        from repro.report.experiments import (
            LongitudinalBundle,
            run_figure2,
            run_figure2_streaming,
            run_figure3,
            run_figure3_streaming,
            run_figure4,
            run_figure4_streaming,
            run_table3,
            run_table3_streaming,
        )

        population, series, archive = world
        bundle = LongitudinalBundle(population=population, series=series)
        pairs = [
            (run_figure2(bundle), run_figure2_streaming(archive)),
            (run_figure3(bundle), run_figure3_streaming(archive)),
            (run_figure4(bundle), run_figure4_streaming(archive)),
            (run_table3(bundle), run_table3_streaming(archive)),
        ]
        for classic, streamed in pairs:
            assert streamed.text == classic.text
            assert streamed.metrics == classic.metrics
            assert streamed.experiment_id == classic.experiment_id
