"""Server access logs.

The Section 5 testbed decides crawler compliance entirely from server
logs: which user agents arrived, from which IPs, whether robots.txt was
fetched before content, and which paths were retrieved.  This module
provides the log record, an appendable log with the query helpers that
analysis needs, and Combined-Log-Format rendering/parsing so logs can be
round-tripped through files like real web-server logs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from ..agents.darkvisitors import AI_USER_AGENT_TOKENS
from ..obs.metrics import MetricsRegistry, metrics_enabled, shared_registry
from ..obs.series import SeriesRegistry, shared_series

__all__ = [
    "LogEntry",
    "AccessLog",
    "agent_label",
    "reset_agent_label_memo",
    "record_sim_request",
    "set_log_sink",
    "active_log_sink",
    "format_clf",
    "parse_clf_line",
    "ingest_clf_lines",
    "load_clf_file",
]

#: Lowered token -> canonical label, in registry order (first match wins).
_AGENT_TOKEN_TABLE = tuple(
    (token.lower(), token) for token in AI_USER_AGENT_TOKENS
)

#: Memo of raw UA string -> canonical label.  Bounded: synthetic UAs in
#: the simulation repeat across runs, but a cap keeps adversarial
#: cardinality (random UA suffixes) from growing the dict forever.
_AGENT_LABEL_MEMO: Dict[str, str] = {}
_AGENT_LABEL_MEMO_CAP = 8192


def agent_label(user_agent: str) -> str:
    """Normalize a raw User-Agent into the bounded agent vocabulary.

    Returns the canonical Table 1 crawler token whose name appears in
    the UA (case-insensitive substring, registry order), or ``"other"``
    -- the label normalization that keeps series cardinality bounded.
    """
    label = _AGENT_LABEL_MEMO.get(user_agent)
    if label is None:
        lowered = user_agent.lower()
        label = "other"
        for token_lower, token in _AGENT_TOKEN_TABLE:
            if token_lower in lowered:
                label = token
                break
        if len(_AGENT_LABEL_MEMO) < _AGENT_LABEL_MEMO_CAP:
            _AGENT_LABEL_MEMO[user_agent] = label
    return label


def clock_ticks(now: float) -> int:
    """Millisecond ticks on the simulated wall clock (never negative).

    The wide-event ``ticks`` column stores these: integral, monotonic
    per handler, and deterministic because every experiment/collection
    unit drives its own :class:`~repro.net.transport.Network` clock.
    """
    ticks = int(round(now * 1000))
    return ticks if ticks > 0 else 0


def reset_agent_label_memo() -> None:
    """Clear the process-wide UA->label memo and series-handle cache.

    Test fixtures that reset the shared registries must call this too:
    the memo caps cardinality per *process*, so UAs interned by one
    test would otherwise shadow a later test's view, and cached series
    handles would keep feeding registries that were already reset.
    """
    _AGENT_LABEL_MEMO.clear()
    _SIM_REQUEST_SERIES.clear()


#: ``(agent, outcome, category)`` -> series handle, cached because the
#: request path is hot and registry probes cost a sorted-tuple build.
_SIM_REQUEST_SERIES: Dict[tuple, object] = {}

#: The installed wide-event sink (duck-typed ``emit(...)``; normally a
#: :class:`repro.net.logstore.LogSink`).  Module-global like the shared
#: registries: the request path cannot thread a handle through every
#: server/proxy layer.
_LOG_SINK = None


def set_log_sink(sink):
    """Install *sink* as the process-wide wide-event sink.

    Returns the previously installed sink (or None) so callers can
    restore it -- the same install/uninstall discipline the live
    telemetry pipeline uses.
    """
    global _LOG_SINK
    previous = _LOG_SINK
    _LOG_SINK = sink
    return previous


def active_log_sink():
    """The currently installed wide-event sink, or None."""
    return _LOG_SINK


def record_sim_request(
    user_agent: str,
    outcome: str,
    category: str,
    month: int,
    host: str = "",
    path: str = "",
    status: int = 0,
    ticks: int = 0,
) -> None:
    """Record one simulated request: ``sim.requests`` series + wide event.

    Shared by the origin server (``served`` / ``not_found``) and the
    proxy layers (``blocked_403`` / ``challenged`` / ``decoy`` /
    ``reset``), so every request lands in the operator-view matrix --
    and the installed log sink -- exactly once, at the layer that
    terminated it.  The series half is gated on :func:`metrics_enabled`;
    the wide event fires whenever a sink is installed.  *ticks* is the
    simulated wall clock in milliseconds (see
    :func:`repro.net.logstore.clock_ticks`).
    """
    sink = _LOG_SINK
    if sink is None and not metrics_enabled():
        return
    agent = agent_label(user_agent)
    if metrics_enabled():
        handle_key = (agent, outcome, category)
        series = _SIM_REQUEST_SERIES.get(handle_key)
        if series is None:
            series = shared_series().series(
                "sim.requests",
                agent=agent,
                outcome=outcome,
                site_category=category or "uncategorized",
            )
            _SIM_REQUEST_SERIES[handle_key] = series
        series.add(month)
    if sink is not None:
        sink.emit(
            host,
            path,
            user_agent,
            agent,
            outcome,
            category or "uncategorized",
            month,
            status,
            ticks,
            path.split("?", 1)[0] == "/robots.txt",
        )


@dataclass(frozen=True)
class LogEntry:
    """One logged request.

    Attributes:
        timestamp: Simulation time (seconds since epoch-of-run; the unit
            only needs to be monotonic and comparable).
        client_ip: Source address.
        method: HTTP method.
        path: Request path including query.
        status: Response status sent.
        body_bytes: Response body size.
        user_agent: The request's User-Agent header.
        host: The virtual host that served the request.
        seq: Monotonic per-log sequence number, stamped by
            :meth:`AccessLog.append` (-1 while unattached).  Simulation
            timestamps tie constantly (many fetches share one logical
            month), so parallel analysis passes sort on ``(timestamp,
            seq)`` for a deterministic order.
        month: Simulated-month index (the logical clock spans and
            series use) at which the request was served; -1 when the
            serving handler was never clocked.
    """

    timestamp: float
    client_ip: str
    method: str
    path: str
    status: int
    body_bytes: int
    user_agent: str
    host: str = ""
    seq: int = -1
    month: int = -1

    @property
    def is_robots_fetch(self) -> bool:
        """Whether this entry is a robots.txt retrieval."""
        return self.path.split("?", 1)[0] == "/robots.txt"


class AccessLog:
    """An append-only request log with the queries analysis needs."""

    def __init__(self) -> None:
        self._entries: List[LogEntry] = []
        self._next_seq = 0

    def append(self, entry: LogEntry) -> None:
        """Record one request, stamping its sequence number.

        Entries arriving with the default ``seq=-1`` get the log's next
        monotonic sequence number; pre-stamped entries (e.g. replayed
        from another log) keep theirs.
        """
        if entry.seq < 0:
            # The one sanctioned mutation of the frozen record: stamping
            # arrival order at the single append point.
            object.__setattr__(entry, "seq", self._next_seq)
        self._next_seq += 1
        self._entries.append(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries)

    def clear(self) -> None:
        """Drop all entries (sequence numbering restarts at zero)."""
        self._entries.clear()
        self._next_seq = 0

    def entries(
        self,
        user_agent_contains: Optional[str] = None,
        path: Optional[str] = None,
        predicate: Optional[Callable[[LogEntry], bool]] = None,
    ) -> List[LogEntry]:
        """Entries filtered by substring-of-UA, exact path, and predicate."""
        out = []
        for entry in self._entries:
            if user_agent_contains is not None and (
                user_agent_contains.lower() not in entry.user_agent.lower()
            ):
                continue
            if path is not None and entry.path.split("?", 1)[0] != path:
                continue
            if predicate is not None and not predicate(entry):
                continue
            out.append(entry)
        return out

    def user_agents_seen(self) -> List[str]:
        """Distinct user agents in arrival order."""
        seen: List[str] = []
        for entry in self._entries:
            if entry.user_agent not in seen:
                seen.append(entry.user_agent)
        return seen

    def fetched_robots(self, user_agent_contains: str) -> bool:
        """Whether any request matching the UA fetched /robots.txt."""
        return any(
            e.is_robots_fetch
            for e in self.entries(user_agent_contains=user_agent_contains)
        )

    def fetched_content(self, user_agent_contains: str) -> bool:
        """Whether any request matching the UA fetched a non-robots path."""
        return any(
            not e.is_robots_fetch
            for e in self.entries(user_agent_contains=user_agent_contains)
        )

    def content_paths(self, user_agent_contains: str) -> List[str]:
        """Non-robots paths fetched by requests matching the UA."""
        return [
            e.path
            for e in self.entries(user_agent_contains=user_agent_contains)
            if not e.is_robots_fetch
        ]

    def ips_for(self, user_agent_contains: str) -> List[str]:
        """Distinct client IPs for a UA, in arrival order."""
        seen: List[str] = []
        for entry in self.entries(user_agent_contains=user_agent_contains):
            if entry.client_ip not in seen:
                seen.append(entry.client_ip)
        return seen

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-user-agent request and robots-fetch counts.

        Returns ``{user_agent: {"requests": n, "robots_fetches": n}}``
        in first-seen order -- the per-agent provenance the compliance
        analysis derives its verdicts from.
        """
        out: Dict[str, Dict[str, int]] = {}
        for entry in self._entries:
            counts = out.get(entry.user_agent)
            if counts is None:
                counts = {"requests": 0, "robots_fetches": 0}
                out[entry.user_agent] = counts
            counts["requests"] += 1
            if entry.is_robots_fetch:
                counts["robots_fetches"] += 1
        return out

    def monthly_summary(
        self, fill_gaps: bool = True
    ) -> Dict[str, Dict[int, Dict[str, int]]]:
        """Month-bucketed per-agent rollup of this log.

        Returns ``{agent_label: {month: {"requests": n,
        "robots_fetches": n, "blocked": n}}}`` with agents normalized
        through :func:`agent_label` and months ascending -- the same
        nested shape ``repro dashboard`` renders from ``SERIES.json``,
        so one renderer serves both sources.  ``blocked`` counts 403
        responses.

        With *fill_gaps* (the default) every agent carries an explicit
        zero-count entry for each month inside the log's observed
        month range, so consumers sampling the rollup -- live
        telemetry scrapes, dashboards -- see a contiguous axis rather
        than holes that are ambiguous between "no traffic" and "not
        yet sampled".  The unclocked ``-1`` bucket is never filled:
        it marks entries recorded outside any simulated month, not a
        month on the axis.  (Zero-count months feed
        :class:`~repro.obs.series.Series` as zero-amount adds, which
        record nothing -- SERIES.json bytes are unchanged.)
        """
        out: Dict[str, Dict[int, Dict[str, int]]] = {}
        for entry in self._entries:
            agent = agent_label(entry.user_agent)
            months = out.setdefault(agent, {})
            counts = months.get(entry.month)
            if counts is None:
                counts = {"requests": 0, "robots_fetches": 0, "blocked": 0}
                months[entry.month] = counts
            counts["requests"] += 1
            if entry.is_robots_fetch:
                counts["robots_fetches"] += 1
            if entry.status == 403:
                counts["blocked"] += 1
        if fill_gaps:
            clocked = [
                month
                for months in out.values()
                for month in months
                if month >= 0
            ]
            if clocked:
                axis = range(min(clocked), max(clocked) + 1)
                for months in out.values():
                    for month in axis:
                        months.setdefault(
                            month,
                            {"requests": 0, "robots_fetches": 0, "blocked": 0},
                        )
        return {
            agent: dict(sorted(months.items())) for agent, months in out.items()
        }

    def publish(
        self,
        registry: Optional[MetricsRegistry] = None,
        site: str = "",
        series: Optional[SeriesRegistry] = None,
    ) -> None:
        """Feed :meth:`summary` into a metrics registry as counters.

        Counters: ``accesslog.requests{agent=...}`` and
        ``accesslog.robots_fetches{agent=...}`` (plus ``site=`` when
        given).  The :meth:`monthly_summary` rollup additionally feeds
        the ``accesslog.requests`` *series* per month.  Call once per
        measurement window; repeated calls add.
        """
        if not metrics_enabled():
            return
        registry = registry if registry is not None else shared_registry()
        for user_agent, counts in self.summary().items():
            labels = {"agent": user_agent}
            if site:
                labels["site"] = site
            registry.inc("accesslog.requests", counts["requests"], **labels)
            if counts["robots_fetches"]:
                registry.inc(
                    "accesslog.robots_fetches", counts["robots_fetches"], **labels
                )
        series = series if series is not None else shared_series()
        for agent, months in self.monthly_summary().items():
            labels = {"agent": agent}
            if site:
                labels["site"] = site
            for month, counts in months.items():
                series.add(
                    "accesslog.requests", month, counts["requests"], **labels
                )


def _escape_quoted(value: str) -> str:
    """Escape a value for a double-quoted CLF field."""
    return value.replace("\\", "\\\\").replace('"', '\\"')


_QUOTED_ESCAPE_RE = re.compile(r"\\(.)")


def _unescape_quoted(value: str) -> str:
    return _QUOTED_ESCAPE_RE.sub(r"\1", value)


def format_clf(entry: LogEntry) -> str:
    """Render an entry in Combined Log Format (fixed dummy date fields).

    Quotes and backslashes inside the User-Agent are escaped so the
    line stays parseable (real web servers do the same); month-clocked
    entries carry their simulated month in the timestamp field
    (``[17 m3]``), which :func:`parse_clf_line` restores.

    >>> line = format_clf(LogEntry(0, "1.2.3.4", "GET", "/", 200, 5, "bot"))
    >>> line.startswith('1.2.3.4 - - [')
    True
    """
    stamp = str(int(entry.timestamp))
    if entry.month >= 0:
        stamp += f" m{entry.month}"
    return (
        f'{entry.client_ip} - - [{stamp}] '
        f'"{entry.method} {entry.path} HTTP/1.1" {entry.status} '
        f'{entry.body_bytes} "-" "{_escape_quoted(entry.user_agent)}"'
    )


_CLF_RE = re.compile(
    r'^(?P<ip>\S+) \S+ \S+ \[(?P<ts>[^\]]*)\] '
    r'"(?P<method>\S+) (?P<path>\S+) [^"]*" (?P<status>\d+) '
    r'(?P<bytes>\d+|-) "(?:[^"\\]|\\.)*" "(?P<ua>(?:[^"\\]|\\.)*)"$'
)


def parse_clf_line(line: str) -> Optional[LogEntry]:
    """Parse a Combined-Log-Format line back into a :class:`LogEntry`.

    Returns None for lines that do not match the format.
    """
    match = _CLF_RE.match(line.strip())
    if not match:
        return None
    stamp = match.group("ts").split()
    timestamp = 0.0
    month = -1
    if stamp:
        try:
            timestamp = float(stamp[0])
        except ValueError:
            timestamp = 0.0
        if len(stamp) > 1 and stamp[1].startswith("m"):
            try:
                month = int(stamp[1][1:])
            except ValueError:
                month = -1
    size = match.group("bytes")
    return LogEntry(
        timestamp=timestamp,
        client_ip=match.group("ip"),
        method=match.group("method"),
        path=match.group("path"),
        status=int(match.group("status")),
        body_bytes=0 if size == "-" else int(size),
        user_agent=_unescape_quoted(match.group("ua")),
        month=month,
    )


def ingest_clf_lines(lines) -> "tuple[List[LogEntry], int]":
    """Parse an iterable of CLF lines; returns ``(entries, skipped)``.

    Blank lines are ignored.  Unparseable lines are *counted*, not
    silently dropped: the skipped total is returned and accumulated in
    the ``net.clf_parse_errors`` counter so a bad ingest is visible in
    the metrics export, not just smaller than expected.
    """
    entries: List[LogEntry] = []
    skipped = 0
    for line in lines:
        if not line.strip():
            continue
        entry = parse_clf_line(line)
        if entry is None:
            skipped += 1
            continue
        entries.append(entry)
    if skipped and metrics_enabled():
        shared_registry().counter("net.clf_parse_errors").inc(skipped)
    return entries, skipped


def load_clf_file(path) -> "tuple[AccessLog, int]":
    """Read a CLF file into a fresh :class:`AccessLog`.

    Returns ``(log, skipped)`` where *skipped* counts unparseable lines
    (also reported through ``net.clf_parse_errors``; see
    :func:`ingest_clf_lines`).
    """
    with open(path, encoding="utf-8") as handle:
        entries, skipped = ingest_clf_lines(handle)
    log = AccessLog()
    for entry in entries:
        log.append(entry)
    return log, skipped
