"""Semantic diffing of robots.txt versions.

The longitudinal analysis wants to know not just *that* a file changed
between snapshots but *what the change meant*: which agents gained or
lost restrictions, whether the edit was surgical (only the targeted
groups touched -- the Future PLC pattern of Section 3.3) or a rewrite,
and whether the new version expresses reverse intent (explicit allows,
Section 3.4).  :func:`diff_robots` compares two versions at the level
of per-agent restriction outcomes, and :func:`classify_change` maps a
diff onto the paper's change taxonomy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from .classify import RestrictionLevel, classify, explicitly_allows
from .compiled import shared_policy_cache
from .serialize import agents_mentioned

__all__ = ["AgentChange", "RobotsDiff", "diff_robots", "ChangeKind", "classify_change"]


@dataclass(frozen=True)
class AgentChange:
    """How one agent's treatment changed between versions.

    Attributes:
        agent: The agent token (as named in either version).
        before: Restriction level in the old version.
        after: Restriction level in the new version.
    """

    agent: str
    before: RestrictionLevel
    after: RestrictionLevel

    @property
    def tightened(self) -> bool:
        return self.after > self.before

    @property
    def loosened(self) -> bool:
        return self.after < self.before


@dataclass
class RobotsDiff:
    """The semantic difference between two robots.txt versions.

    Attributes:
        changes: Per-agent level changes (unchanged agents omitted).
        agents_added: Agents named only in the new version.
        agents_removed: Agents named only in the old version.
        allow_gained: Agents explicitly allowed only in the new version.
        wildcard_changed: Whether the ``*`` group's effective rules
            changed (probed on representative paths).
    """

    changes: List[AgentChange] = field(default_factory=list)
    agents_added: List[str] = field(default_factory=list)
    agents_removed: List[str] = field(default_factory=list)
    allow_gained: List[str] = field(default_factory=list)
    wildcard_changed: bool = False

    @property
    def is_empty(self) -> bool:
        """Whether the versions are semantically equivalent (for the
        probed agents and paths)."""
        return not (
            self.changes
            or self.agents_added
            or self.agents_removed
            or self.allow_gained
            or self.wildcard_changed
        )

    def tightened_agents(self) -> List[str]:
        return [c.agent for c in self.changes if c.tightened]

    def loosened_agents(self) -> List[str]:
        return [c.agent for c in self.changes if c.loosened]


_WILDCARD_PROBES = ("/", "/admin/", "/images/a.png", "/blog/post", "/search?q=x")


def diff_robots(
    before: Optional[str],
    after: Optional[str],
    agents: Optional[Sequence[str]] = None,
) -> RobotsDiff:
    """Compute the semantic diff between two robots.txt versions.

    Args:
        before / after: File contents (None = no robots.txt served).
        agents: Agents to compare.  Defaults to the union of agents
            named in either version.
    """
    named_before = set(agents_mentioned(before)) if before else set()
    named_after = set(agents_mentioned(after)) if after else set()
    probe_agents: Iterable[str]
    if agents is None:
        probe_agents = sorted((named_before | named_after) - {"*"})
    else:
        probe_agents = agents

    diff = RobotsDiff()
    diff.agents_added = sorted(a for a in named_after - named_before if a != "*")
    diff.agents_removed = sorted(a for a in named_before - named_after if a != "*")

    # Each version is parsed at most once per process: the shared
    # content-addressed compile cache hands back one memoized policy per
    # distinct body, so probing N agents costs one parse, not N.
    cache = shared_policy_cache()
    policy_before = cache.policy(before) if before is not None else None
    policy_after = cache.policy(after) if after is not None else None

    for agent in probe_agents:
        level_before = classify(policy_before, agent).level
        level_after = classify(policy_after, agent).level
        if level_before is not level_after:
            diff.changes.append(AgentChange(agent, level_before, level_after))
        allowed_before = policy_before is not None and explicitly_allows(policy_before, agent)
        allowed_after = policy_after is not None and explicitly_allows(policy_after, agent)
        if allowed_after and not allowed_before:
            diff.allow_gained.append(agent)

    # Wildcard comparison is structural (the effective rule multiset of
    # the "*" groups) so arbitrary path edits are caught, with probe
    # paths as a belt-and-braces semantic check.
    def wildcard_rules(policy):
        if policy is None:
            return None
        rules = policy.rules_for("generic-probe-bot").rules
        return sorted((rule.allow, rule.path) for rule in rules if rule.path)

    if wildcard_rules(policy_before) != wildcard_rules(policy_after):
        diff.wildcard_changed = True
    else:
        for path in _WILDCARD_PROBES:
            verdict_before = (
                policy_before.is_allowed("generic-probe-bot", path)
                if policy_before
                else True
            )
            verdict_after = (
                policy_after.is_allowed("generic-probe-bot", path)
                if policy_after
                else True
            )
            if verdict_before != verdict_after:
                diff.wildcard_changed = True
                break
    return diff


class ChangeKind(enum.Enum):
    """The paper-aligned taxonomy of robots.txt changes."""

    #: Versions semantically equivalent (formatting-only edits).
    NO_CHANGE = "no-change"
    #: AI restrictions added (the Section 3.2 adoption events).
    AI_RESTRICTION_ADDED = "ai-restriction-added"
    #: AI restrictions removed, rest untouched (the Section 3.3
    #: data-deal pattern).
    AI_RESTRICTION_REMOVED = "ai-restriction-removed"
    #: Explicit allow appeared (the Section 3.4 reverse intent).
    EXPLICIT_ALLOW_ADDED = "explicit-allow-added"
    #: Only non-AI rules changed (wildcard paths, SEO bots, sitemaps).
    UNRELATED_CHANGE = "unrelated-change"
    #: Both additions and removals of AI restrictions (rewrites).
    MIXED = "mixed"


def classify_change(
    before: Optional[str],
    after: Optional[str],
    ai_agents: Sequence[str],
) -> ChangeKind:
    """Map one version transition onto the change taxonomy.

    >>> classify_change(
    ...     "User-agent: *\\nDisallow: /x/",
    ...     "User-agent: *\\nDisallow: /x/\\nUser-agent: GPTBot\\nDisallow: /",
    ...     ["GPTBot"],
    ... ).value
    'ai-restriction-added'
    """
    diff = diff_robots(before, after)
    if diff.is_empty:
        return ChangeKind.NO_CHANGE
    ai_set = {a.lower() for a in ai_agents}
    tightened = [a for a in diff.tightened_agents() if a.lower() in ai_set]
    loosened = [a for a in diff.loosened_agents() if a.lower() in ai_set]
    allows = [a for a in diff.allow_gained if a.lower() in ai_set]
    if allows and not tightened:
        return ChangeKind.EXPLICIT_ALLOW_ADDED
    if tightened and loosened:
        return ChangeKind.MIXED
    if tightened:
        return ChangeKind.AI_RESTRICTION_ADDED
    if loosened:
        return ChangeKind.AI_RESTRICTION_REMOVED
    return ChangeKind.UNRELATED_CHANGE
