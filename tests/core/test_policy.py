"""Tests for repro.core.policy."""

from repro.core.policy import RobotsPolicy, extract_product_token


class TestExtractProductToken:
    def test_plain_token(self):
        assert extract_product_token("GPTBot") == "GPTBot"

    def test_token_with_version(self):
        assert extract_product_token("GPTBot/1.2") == "GPTBot"

    def test_token_with_comment(self):
        assert extract_product_token("CCBot (https://commoncrawl.org)") == "CCBot"

    def test_hyphenated_token(self):
        assert extract_product_token("ChatGPT-User/1.0") == "ChatGPT-User"

    def test_empty_string(self):
        assert extract_product_token("") == ""


class TestAgentSelection:
    POLICY = RobotsPolicy(
        "User-agent: Googlebot\n"
        "Allow: /\n"
        "\n"
        "User-agent: ChatGPT-User\n"
        "User-agent: GPTBot\n"
        "Disallow: /\n"
        "\n"
        "User-agent: *\n"
        "Disallow: /secret/\n"
    )

    def test_named_agent_fully_disallowed(self):
        assert not self.POLICY.is_allowed("GPTBot", "/anything")
        assert not self.POLICY.is_allowed("ChatGPT-User", "/")

    def test_googlebot_allowed_everywhere(self):
        assert self.POLICY.is_allowed("Googlebot", "/secret/x")

    def test_other_agents_fall_to_wildcard(self):
        assert self.POLICY.is_allowed("Bingbot", "/page")
        assert not self.POLICY.is_allowed("Bingbot", "/secret/page")

    def test_matching_is_case_insensitive(self):
        assert not self.POLICY.is_allowed("gptbot", "/x")
        assert not self.POLICY.is_allowed("GPTBOT", "/x")

    def test_full_user_agent_string_matched_by_token(self):
        ua = "Mozilla/5.0 AppleWebKit/537.36; compatible; GPTBot/1.0"
        # Token extraction takes the leading run: "Mozilla".  Callers in
        # this codebase pass the product token; verify that behavior.
        assert self.POLICY.is_allowed(ua, "/page")  # Mozilla -> wildcard? no:
        # Mozilla falls to wildcard group, /page is outside /secret/.

    def test_prefix_matching_governs_subproducts(self):
        policy = RobotsPolicy("User-agent: googlebot\nDisallow: /")
        assert not policy.is_allowed("Googlebot-Image", "/x")

    def test_specific_group_shadows_wildcard_entirely(self):
        policy = RobotsPolicy(
            "User-agent: *\nDisallow: /\nUser-agent: GPTBot\nDisallow: /a\n"
        )
        # GPTBot gets only its own group: / is allowed, /a is not.
        assert policy.is_allowed("GPTBot", "/")
        assert not policy.is_allowed("GPTBot", "/a")

    def test_most_specific_token_wins(self):
        policy = RobotsPolicy(
            "User-agent: google\nDisallow: /\n"
            "User-agent: googlebot\nAllow: /\n"
        )
        assert policy.is_allowed("Googlebot", "/x")

    def test_equal_length_groups_merge(self):
        policy = RobotsPolicy(
            "User-agent: GPTBot\nDisallow: /a\n"
            "User-agent: GPTBot\nDisallow: /b\n"
        )
        assert not policy.is_allowed("GPTBot", "/a")
        assert not policy.is_allowed("GPTBot", "/b")

    def test_robots_txt_itself_always_fetchable(self):
        policy = RobotsPolicy("User-agent: *\nDisallow: /")
        assert policy.is_allowed("Anybot", "/robots.txt")


class TestPolicyAccessors:
    def test_sitemaps(self):
        policy = RobotsPolicy("Sitemap: https://e.com/a.xml\nSitemap: https://e.com/b.xml")
        assert policy.sitemaps == ["https://e.com/a.xml", "https://e.com/b.xml"]

    def test_crawl_delay_exposed(self):
        policy = RobotsPolicy("User-agent: slowbot\nCrawl-delay: 10\nDisallow: /x")
        assert policy.crawl_delay("slowbot") == 10.0
        assert policy.crawl_delay("fastbot") is None

    def test_has_explicit_group(self):
        policy = RobotsPolicy("User-agent: GPTBot\nDisallow: /\nUser-agent: *\nAllow: /")
        assert policy.has_explicit_group("GPTBot")
        assert not policy.has_explicit_group("CCBot")

    def test_named_agents(self):
        policy = RobotsPolicy("User-agent: A\nDisallow: /\nUser-agent: B\nAllow: /")
        assert policy.named_agents() == ["a", "b"]

    def test_verdict_includes_rule(self):
        policy = RobotsPolicy("User-agent: *\nDisallow: /admin")
        verdict = policy.verdict("anybot", "/admin/panel")
        assert not verdict.allowed
        assert verdict.rule.path == "/admin"

    def test_empty_policy_allows_everything(self):
        policy = RobotsPolicy("")
        assert policy.is_allowed("GPTBot", "/anything")

    def test_from_parsed_roundtrip(self):
        from repro.core.parser import parse

        parsed = parse("User-agent: *\nDisallow: /")
        policy = RobotsPolicy.from_parsed(parsed)
        assert not policy.is_allowed("x", "/y")


class TestGroupSpecificityEdgeCases:
    def test_group_with_multiple_matching_tokens_uses_longest(self):
        # One group lists both a short and a long token matching the
        # crawler; a more specific group elsewhere must NOT be shadowed
        # by the short token's length.
        policy = RobotsPolicy(
            "User-agent: foo\n"
            "User-agent: foobot\n"
            "Disallow: /\n"
            "\n"
            "User-agent: foobo\n"
            "Allow: /\n"
        )
        # Crawler "foobot": group 1 matches at length 6 ("foobot"),
        # group 2 at length 5 ("foobo") -> group 1 wins alone.
        assert not policy.is_allowed("foobot", "/x")

    def test_equally_specific_groups_merge(self):
        policy = RobotsPolicy(
            "User-agent: foobot\nDisallow: /a\n"
            "User-agent: foobot\nDisallow: /b\n"
        )
        assert not policy.is_allowed("foobot", "/a")
        assert not policy.is_allowed("foobot", "/b")
