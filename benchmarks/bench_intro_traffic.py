"""Section 1 context: bots dominate site traffic.

Paper framing (citing Akamai and Imperva): roughly 50-70% of website
traffic is automated, and aggressive AI crawlers (ByteDance's
Bytespider in particular) produce DDoS-like load on small sites.
"""

from conftest import save_artifact

from repro.net.server import Website, render_page
from repro.report.experiments import ExperimentResult
from repro.report.tables import render_table
from repro.web.traffic import TrafficMix, analyze_traffic, simulate_traffic


def run_traffic(days=3, seed=42):
    site = Website("smallsite.example")
    site.add_page("/", render_page("Home", links=["/blog", "/gallery"]))
    site.add_page("/blog", render_page("Blog", links=["/blog/post1"]))
    site.add_page("/blog/post1", render_page("Post 1"))
    site.add_page("/gallery", render_page("Gallery"))
    simulate_traffic(site, TrafficMix(), days=days, seed=seed)
    return analyze_traffic(site.access_log)


def test_intro_traffic_composition(benchmark, artifact_dir):
    report = benchmark.pedantic(run_traffic, rounds=1, iterations=1)

    rows = [(token, count) for token, count in report.top_talkers(8)]
    result = ExperimentResult(
        "intro_traffic",
        "Traffic composition (Section 1 context)",
        render_table(["agent", "requests"], rows,
                     title=f"bot share: {100 * report.bot_share:.1f}% "
                           f"of {report.total_requests} requests")
        ,
        {"bot_share_pct": 100 * report.bot_share,
         "total_requests": float(report.total_requests)},
    )
    save_artifact(artifact_dir, result)
    print(result.text)

    # Akamai/Imperva band: ~50-70% automated.
    assert 45.0 <= result.metrics["bot_share_pct"] <= 75.0
    # Bytespider is the single heaviest crawler (the DDoS anecdotes).
    crawler_talkers = [t for t, _ in report.top_talkers(10) if t != "Mozilla"]
    assert crawler_talkers[0] == "Bytespider"
