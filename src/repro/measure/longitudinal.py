"""Section 3: longitudinal robots.txt analysis over snapshots.

Pipeline: take a web population, run the Common-Crawl-style snapshotter
over the 15 snapshot specs (optionally in parallel -- each spec builds
an independent network, so snapshots are embarrassingly parallel),
filter to the Stable-with-robots set (the paper's "Stable Top 100K":
ranked every month *and* a robots.txt in every snapshot), then compute
the statistics behind Figures 2-4 and Tables 3-4:

* per-snapshot % of sites fully disallowing >= 1 AI user agent, split
  by Top-5K tier (Figure 2),
* per-snapshot per-agent % partially-or-fully disallowing (Figure 3),
* explicit-allow counts and restriction removals per period (Figure 4),
* domains explicitly allowing GPTBot with first-allow snapshot
  (Table 4),
* snapshot coverage statistics (Table 3).

Performance architecture: robots.txt bodies are interned across the
series, every aggregation groups domains by **unique body** and
classifies each (body, agent) problem exactly once through the series'
content-addressed :class:`~repro.measure.cache.PolicyCache`, instead of
re-parsing identical text per domain per snapshot per figure.  All
outputs are bit-identical to the per-domain re-parsing formulation.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..agents.darkvisitors import AI_USER_AGENT_TOKENS
from ..core.classify import RestrictionLevel
from ..crawlers.commoncrawl import (
    SNAPSHOT_SPECS,
    SiteRecord,
    Snapshot,
    SnapshotCrawler,
    SnapshotSpec,
    carry_forward_snapshot,
)
from ..net import chaos
from ..net.accesslog import active_log_sink
from ..net.logstore import log_stream
from ..net.transport import Network
from ..obs import live as _live
from ..obs.metrics import metrics_enabled, shared_registry, snapshot_delta
from ..obs.series import shared_series
from ..obs.series import snapshot_delta as series_delta
from ..obs.trace import adopt_current_span, current_span, span
from ..web.archive import ShardWriter, merge_error_budgets
from ..web.population import WebPopulation
from ..web.sharding import (
    partition_domains,
    record_shard_balance,
    resolve_shard_mode,
    shard_count_for,
)
from .cache import PolicyCache

__all__ = [
    "SnapshotSeries",
    "collect_snapshots",
    "collect_shard_archives",
    "delta_fetch_plan",
    "stable_with_robots",
    "full_disallow_trend",
    "per_agent_trend",
    "allow_and_removal_trend",
    "first_allow_table",
    "snapshot_coverage_table",
]

#: Agents plotted individually in Figure 3.
FIGURE3_AGENTS = [
    "GPTBot",
    "CCBot",
    "ChatGPT-User",
    "anthropic-ai",
    "Google-Extended",
    "Bytespider",
    "ClaudeBot",
    "PerplexityBot",
]


@dataclass
class SnapshotSeries:
    """All snapshots for a population plus derived site sets.

    Attributes:
        snapshots: One :class:`Snapshot` per spec, in time order.
        stable_domains: Domains of the population's stable set.
        analysis_domains: Stable domains with a robots.txt in *every*
            snapshot -- the paper's Stable Top 100K analogue.
        cache: Content-addressed classification cache shared by every
            aggregation over this series.
    """

    snapshots: List[Snapshot]
    stable_domains: List[str]
    analysis_domains: List[str]
    cache: PolicyCache = field(default_factory=PolicyCache, repr=False, compare=False)
    _body_rows: Dict[str, List[Optional[str]]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def robots_for(self, domain: str, snapshot: Snapshot) -> Optional[str]:
        """robots.txt content for *domain* in *snapshot* (www fallback)."""
        record = snapshot.record_for(domain)
        if record is None or not record.ok:
            return None
        return record.robots_txt

    def analysis_bodies(self, snapshot: Snapshot) -> List[Optional[str]]:
        """Per-domain robots bodies aligned with ``analysis_domains``.

        Computed once per snapshot and memoized; bodies are interned, so
        the row is a list of shared references, not text copies.
        """
        key = snapshot.spec.snapshot_id
        row = self._body_rows.get(key)
        if row is None:
            row = [self.robots_for(d, snapshot) for d in self.analysis_domains]
            self._body_rows[key] = row
        return row

    def analysis_body_counts(
        self, snapshot: Snapshot
    ) -> List[Tuple[Optional[str], int]]:
        """``(unique body, domain count)`` groups over the analysis set.

        Aggregations that only need per-snapshot rates iterate these
        groups instead of per-domain rows: each distinct body is then
        classified once regardless of how many domains serve it.
        """
        counts: Dict[Optional[str], int] = {}
        for body in self.analysis_bodies(snapshot):
            counts[body] = counts.get(body, 0) + 1
        return list(counts.items())


def delta_fetch_plan(
    population: WebPopulation, specs: Sequence[SnapshotSpec]
) -> List[List["SimSite"]]:
    """Per-spec site subsets a delta crawl must actually refetch.

    The first spec always fetches the full stable set; every later spec
    fetches only the sites whose *served* robots state differs from the
    previous spec's month (see
    :meth:`~repro.web.site.SimSite.robots_changed_between`).  Records
    for every other site carry forward unchanged: their handlers are
    memoized per effective robots text and serving is
    response-stateless, so refetching would reproduce the same record
    byte for byte.  Blocking/proxy configuration is month-invariant in
    this world model (it is not keyed by month anywhere), so robots
    state is the only time-varying fetch input.

    The plan depends only on the population's evolution schedules --
    not on any fetched data -- so delta snapshots stay embarrassingly
    parallel.
    """
    return _site_fetch_plan(list(population.stable), specs, use_delta=True)


def _site_fetch_plan(
    sites: List["SimSite"], specs: Sequence[SnapshotSpec], use_delta: bool
) -> List[List["SimSite"]]:
    """Per-spec fetch subsets for *sites* (the shard-local delta plan).

    The plan is a pure per-site filter, so partitioning sites into
    shards and planning per shard yields exactly the global plan,
    partitioned.
    """
    if not use_delta:
        return [list(sites) for _ in specs]
    plan: List[List[SimSite]] = []
    previous: Optional[SnapshotSpec] = None
    for spec in specs:
        if previous is None:
            plan.append(list(sites))
        else:
            plan.append(
                [
                    site
                    for site in sites
                    if site.robots_changed_between(
                        previous.month_index, spec.month_index
                    )
                ]
            )
        previous = spec
    return plan


def _use_delta(specs: Sequence[SnapshotSpec], delta: Optional[bool]) -> bool:
    """Whether delta collection is sound (and wanted) for this crawl."""
    # Chaos faults are month- and host-windowed at the *transport*
    # layer, invisible to the evolution model the delta plan reads, so
    # carried-forward records could mask injected errors.  Never delta
    # under an armed plan.
    use = len(specs) > 1 and chaos.active_plan() is None
    if delta is not None:
        use = use and delta
    return use


def collect_snapshots(
    population: WebPopulation,
    specs: Sequence[SnapshotSpec] = tuple(SNAPSHOT_SPECS),
    workers: Optional[int] = None,
    delta: Optional[bool] = None,
    shards: Optional[int] = None,
    mode: str = "auto",
) -> SnapshotSeries:
    """Run the snapshot crawler over the population's stable set.

    Each snapshot materializes the population at the snapshot's month
    and crawls every stable site's robots.txt with the CCBot client.

    Args:
        workers: Number of snapshots to crawl concurrently.  Each spec
            builds its own independent :class:`Network`, so snapshots
            parallelize without shared mutable state; results are
            assembled in spec order, making the output bit-identical
            for any worker count (``None``/``1`` = sequential).
        delta: Diff-aware collection: refetch only sites whose robots
            state changed since the previous spec and carry every other
            record forward (bit-identical output, O(changed) work).
            ``None`` (the default) enables delta whenever it is sound:
            more than one spec and no armed chaos plan.  An armed
            :class:`~repro.net.chaos.FaultPlan` forces a full crawl even
            when ``delta=True``, because injected faults break the
            purity argument that makes carry-forward safe.
        shards: Switch to shard-partitioned collection: sites are
            partitioned by :func:`repro.web.sharding.shard_of` and each
            worker crawls *every* spec for one shard (``0`` sizes the
            shard count automatically, ``None`` keeps the classic
            spec-parallel path).  Every record is a pure function of
            ``(site, month)``, so any shards x workers x mode
            combination assembles a byte-identical series.
        mode: Sharded execution mode (``"auto"``/``"serial"``/
            ``"thread"``/``"process"``); ignored on the classic path.
    """
    specs = list(specs)
    if shards is not None:
        return _collect_sharded(
            population, specs, workers=workers, delta=delta,
            shards=shards, mode=mode,
        )
    domains = [site.domain for site in population.stable]
    use_delta = _use_delta(specs, delta)
    plan = (
        delta_fetch_plan(population, specs)
        if use_delta
        else [list(population.stable) for _ in specs]
    )

    def collect_one(task: Tuple[SnapshotSpec, List["SimSite"]]) -> Snapshot:
        spec, fetch_sites = task
        # The span carries both clocks: wall time plus the simulated
        # month the snapshot pertains to (the logical clock).  The named
        # wide-event stream makes the crawl's log records land in the
        # same archive position for any worker count.
        with log_stream(f"collect:{spec.snapshot_id}"), span(
            "collect_snapshot",
            logical=spec.month_index,
            snapshot=spec.snapshot_id,
            n_domains=len(fetch_sites),
        ):
            network = Network()
            population.materialize(network, month=spec.month_index, sites=fetch_sites)
            crawler = SnapshotCrawler(network)
            snapshot = crawler.snapshot(spec, [site.domain for site in fetch_sites])
            network.publish_request_histogram()
        if metrics_enabled():
            # In a full crawl every site counts as refetched, so the
            # series doubles as a live view of how much work delta
            # collection avoids month over month.
            shared_series().add(
                "delta.sites_refetched", spec.month_index, len(fetch_sites)
            )
        # The batch pipeline's simulated-month clock drives the live
        # telemetry plane: one scrape as each month's snapshot lands.
        # Costs a single None check when no pipeline is installed.
        _live.month_tick(spec.month_index)
        return snapshot

    tasks = list(zip(specs, plan))
    with span(
        "collect_snapshots",
        n_specs=len(specs),
        workers=workers or 1,
        delta=use_delta,
    ):
        if workers is None or workers <= 1 or len(specs) <= 1:
            snapshots = [collect_one(task) for task in tasks]
        else:
            with ThreadPoolExecutor(
                max_workers=min(workers, len(specs)),
                # Worker threads start with an empty span context;
                # adopt the collection span so per-snapshot spans stay
                # its children rather than becoming roots.
                initializer=adopt_current_span,
                initargs=(current_span(),),
            ) as pool:
                # executor.map preserves spec order regardless of
                # completion order, so parallelism cannot reorder the
                # series.
                snapshots = list(pool.map(collect_one, tasks))

    if use_delta:
        # Assemble full snapshots in spec order: each month's records
        # dict lays down every stable domain in canonical order, taking
        # the freshly fetched record when the site was in the plan and
        # the previous assembled month's record otherwise.  Insertion
        # order therefore matches a full crawl exactly.
        assembled: List[Snapshot] = [snapshots[0]]
        for fetched in snapshots[1:]:
            assembled.append(
                carry_forward_snapshot(fetched, assembled[-1], domains)
            )
        snapshots = assembled

    # Intern robots bodies across the whole series: fifteen snapshots of
    # a mostly-unchanged population collapse to one string per distinct
    # body, and downstream grouping hashes each body once.
    body_pool: Dict[str, str] = {}
    for snapshot in snapshots:
        snapshot.intern_bodies(body_pool)

    analysis = stable_with_robots(snapshots, domains)
    return SnapshotSeries(
        snapshots=snapshots, stable_domains=domains, analysis_domains=analysis
    )


#: Ambient state for sharded collection workers: ``(population, specs,
#: parts, use_delta, ship_telemetry, keep_records, archive)`` where
#: *archive* is ``None`` or ``(root, n_shards, config_digest)``.  Set by
#: :func:`_run_shard_collection` before a fork pool spawns so children
#: inherit the population instead of re-pickling it per shard.
_COLLECT_CONTEXT: Optional[tuple] = None


def _crawl_shard(
    population: WebPopulation,
    specs: Sequence[SnapshotSpec],
    sites: List["SimSite"],
    use_delta: bool,
) -> List[Snapshot]:
    """Crawl every spec for one shard's sites (full per-shard snapshots).

    The engine is the classic collection loop restricted to a site
    subset: per-spec fetch plan, a fresh :class:`Network` per spec,
    shard-local carry-forward.  Because every record is a pure function
    of ``(site, month)`` -- chaos faults included, they key on
    ``(rule, host)`` counters -- the union of shard crawls equals an
    unsharded crawl record for record.
    """
    domains = [site.domain for site in sites]
    plan = _site_fetch_plan(sites, specs, use_delta)
    snapshots: List[Snapshot] = []
    for spec, fetch_sites in zip(specs, plan):
        with span(
            "collect_snapshot",
            logical=spec.month_index,
            snapshot=spec.snapshot_id,
            n_domains=len(fetch_sites),
        ):
            network = Network()
            population.materialize(
                network, month=spec.month_index, sites=fetch_sites
            )
            crawler = SnapshotCrawler(network)
            snapshot = crawler.snapshot(
                spec, [site.domain for site in fetch_sites]
            )
            network.publish_request_histogram()
        if metrics_enabled():
            # Per-shard refetch counts sum into the same per-month
            # series points, so sharded totals match unsharded ones.
            shared_series().add(
                "delta.sites_refetched", spec.month_index, len(fetch_sites)
            )
        snapshots.append(snapshot)
    if use_delta:
        assembled = [snapshots[0]]
        for fetched in snapshots[1:]:
            assembled.append(
                carry_forward_snapshot(fetched, assembled[-1], domains)
            )
        snapshots = assembled
    return snapshots


def _collect_shard(index: int):
    """Worker entry: crawl shard *index* against the ambient context.

    Returns ``(snapshots_or_budgets, metrics_delta, series_delta,
    log_delta)``.  In process mode the worker ships its telemetry and
    wide-event deltas (the fork child's registry and log sink are
    copies); with ``keep_records=False`` (archive mode) only the
    per-spec error budgets travel back, not the records.
    """
    context = _COLLECT_CONTEXT
    assert context is not None, "sharded collection must set the context"
    population, specs, parts, use_delta, ship, keep_records, archive = context
    registry = shared_registry()
    series = shared_series()
    sink = active_log_sink()
    if ship:
        before = registry.snapshot()
        series_before = series.snapshot()
        sink_marks = sink.marks() if sink is not None else None
    # One wide-event stream per shard: the shard crawls all specs
    # sequentially in one worker, so the stream is single-writer.
    with log_stream(f"collect-shard:{index:04d}"):
        snapshots = _crawl_shard(population, specs, parts[index], use_delta)
    if archive is not None:
        root, n_shards, config_digest = archive
        sites = parts[index]
        writer = ShardWriter(root, index, n_shards, config_digest)
        writer.set_sites(
            [site.domain for site in sites],
            [site.rank for site in sites],
            [site.tier for site in sites],
        )
        for snapshot in snapshots:
            writer.add_snapshot(
                snapshot.spec, snapshot.records, snapshot.error_budget
            )
        writer.commit()
    payload = (
        snapshots
        if keep_records
        else [snapshot.error_budget for snapshot in snapshots]
    )
    if not ship:
        return payload, None, None, None
    return (
        payload,
        snapshot_delta(registry.snapshot(), before),
        series_delta(series.snapshot(), series_before),
        sink.delta(sink_marks) if sink_marks is not None else None,
    )


def _run_shard_collection(
    population: WebPopulation,
    specs: List[SnapshotSpec],
    shards: int,
    workers: Optional[int],
    mode: str,
    delta: Optional[bool],
    keep_records: bool,
    archive: Optional[Tuple[str, int, str]] = None,
) -> Tuple[List[object], List[List["SimSite"]]]:
    """Fan the shard crawl out and fold telemetry back in.

    Returns each shard's payload (snapshots or budgets, shard order)
    plus the partition itself, which the caller needs to map domains
    back to shards.
    """
    global _COLLECT_CONTEXT
    sites = list(population.stable)
    n_workers = max(1, workers or 1)
    n_shards = shard_count_for(len(sites), shards if shards > 0 else None)
    parts = partition_domains(
        sites, n_shards, key=(site.domain for site in sites)
    )
    record_shard_balance(parts, stage="collect")
    resolved = resolve_shard_mode(mode, min(n_workers, n_shards))
    use_delta = _use_delta(specs, delta)
    if archive is not None:
        archive = (archive[0], n_shards, archive[2])
    _COLLECT_CONTEXT = (
        population, specs, parts, use_delta,
        resolved == "process", keep_records, archive,
    )
    try:
        indices = range(n_shards)
        with span(
            "collect_snapshots",
            n_specs=len(specs),
            workers=n_workers,
            delta=use_delta,
            shards=n_shards,
            mode=resolved,
        ):
            if resolved == "serial":
                outputs = [_collect_shard(i) for i in indices]
            elif resolved == "process":
                context = multiprocessing.get_context("fork")
                with ProcessPoolExecutor(
                    max_workers=n_workers, mp_context=context
                ) as pool:
                    outputs = list(pool.map(_collect_shard, indices))
            else:
                with ThreadPoolExecutor(
                    max_workers=n_workers,
                    initializer=adopt_current_span,
                    initargs=(current_span(),),
                ) as pool:
                    outputs = list(pool.map(_collect_shard, indices))
    finally:
        _COLLECT_CONTEXT = None
    registry = shared_registry()
    series = shared_series()
    sink = active_log_sink()
    payloads: List[object] = []
    for payload, delta_snapshot, sdelta, log_delta in outputs:
        if delta_snapshot is not None:
            registry.merge(delta_snapshot)
        if sdelta is not None:
            series.merge(sdelta)
        if log_delta is not None and sink is not None:
            sink.merge(log_delta)
        payloads.append(payload)
    return payloads, parts


def _collect_sharded(
    population: WebPopulation,
    specs: List[SnapshotSpec],
    workers: Optional[int],
    delta: Optional[bool],
    shards: int,
    mode: str,
) -> SnapshotSeries:
    """Shard-partitioned in-memory collection (bit-identical assembly)."""
    domains = [site.domain for site in population.stable]
    shard_snapshots, _ = _run_shard_collection(
        population, specs, shards=shards, workers=workers, mode=mode,
        delta=delta, keep_records=True,
    )
    snapshots: List[Snapshot] = []
    for spec_index, spec in enumerate(specs):
        combined: Dict[str, SiteRecord] = {}
        budgets = []
        for per_shard in shard_snapshots:
            shard_snapshot = per_shard[spec_index]
            combined.update(shard_snapshot.records)
            budgets.append(shard_snapshot.error_budget)
        # Lay records down in canonical stable order so iteration
        # matches an unsharded crawl exactly.
        snapshots.append(
            Snapshot(
                spec=spec,
                records={domain: combined[domain] for domain in domains},
                error_budget=merge_error_budgets(budgets),
            )
        )
    body_pool: Dict[str, str] = {}
    for snapshot in snapshots:
        snapshot.intern_bodies(body_pool)
    analysis = stable_with_robots(snapshots, domains)
    return SnapshotSeries(
        snapshots=snapshots, stable_domains=domains, analysis_domains=analysis
    )


def collect_shard_archives(
    population: WebPopulation,
    root: Union[str, Path],
    specs: Sequence[SnapshotSpec] = tuple(SNAPSHOT_SPECS),
    shards: int = 0,
    workers: Optional[int] = None,
    mode: str = "auto",
    delta: Optional[bool] = None,
    config_digest: str = "",
) -> Path:
    """Crawl the population straight into a columnar shard archive.

    The write-only twin of sharded :func:`collect_snapshots`: each
    worker crawls its shard and commits a
    :class:`~repro.web.archive.ShardWriter` directory under *root*;
    records never accumulate in the parent, so peak memory is
    O(largest shard) regardless of population size.  Streaming
    aggregations (:mod:`repro.measure.streaming`) then consume the
    archive shard by shard.

    Returns *root*; open the result with
    :class:`repro.web.archive.ArchiveSet`.
    """
    root = Path(root)
    _run_shard_collection(
        population, list(specs), shards=shards, workers=workers, mode=mode,
        delta=delta, keep_records=False,
        archive=(str(root), 0, config_digest),
    )
    return root


def stable_with_robots(
    snapshots: Sequence[Snapshot], domains: Sequence[str]
) -> List[str]:
    """Domains with a successfully fetched robots.txt in every snapshot."""
    keep: List[str] = []
    for domain in domains:
        ok_everywhere = True
        for snapshot in snapshots:
            record = snapshot.record_for(domain)
            if record is None or not record.ok:
                ok_everywhere = False
                break
        if ok_everywhere:
            keep.append(domain)
    return keep


def full_disallow_trend(
    series: SnapshotSeries,
    top5k_domains: Set[str],
    agents: Sequence[str] = tuple(AI_USER_AGENT_TOKENS),
    require_explicit: bool = True,
) -> List[Tuple[str, float, float]]:
    """Figure 2: % of sites fully disallowing >= 1 AI UA per snapshot.

    Returns rows ``(snapshot_id, pct_top5k, pct_other)`` in time order,
    percentages in [0, 100].
    """
    in_top = [d in top5k_domains for d in series.analysis_domains]
    n_top = sum(in_top)
    n_other = len(series.analysis_domains) - n_top
    cache = series.cache
    rows: List[Tuple[str, float, float]] = []
    with span(
        "measure.full_disallow_trend",
        n_sites=len(series.analysis_domains),
        n_agents=len(agents),
    ):
        for snapshot in series.snapshots:
            # Group domains by unique body within each tier, then
            # classify each distinct body once.
            tier_counts: Tuple[Dict[Optional[str], int], Dict[Optional[str], int]] = (
                {},
                {},
            )
            for body, is_top in zip(series.analysis_bodies(snapshot), in_top):
                counts = tier_counts[0] if is_top else tier_counts[1]
                counts[body] = counts.get(body, 0) + 1

            def tier_hits(counts: Dict[Optional[str], int]) -> int:
                return sum(
                    count
                    for body, count in counts.items()
                    if body is not None
                    and cache.fully_disallows_any(
                        body, agents, require_explicit=require_explicit
                    )
                )

            hits_top = tier_hits(tier_counts[0])
            hits_other = tier_hits(tier_counts[1])
            if metrics_enabled():
                month = snapshot.spec.month_index
                series_registry = shared_series()
                series_registry.add(
                    "measure.sites_full_disallow", month, hits_top, tier="top5k"
                )
                series_registry.add(
                    "measure.sites_full_disallow", month, hits_other, tier="other"
                )
            rows.append(
                (
                    snapshot.spec.snapshot_id,
                    100.0 * hits_top / n_top if n_top else 0.0,
                    100.0 * hits_other / n_other if n_other else 0.0,
                )
            )
    return rows


def per_agent_trend(
    series: SnapshotSeries,
    agents: Sequence[str] = tuple(FIGURE3_AGENTS),
) -> Dict[str, List[Tuple[str, float]]]:
    """Figure 3: per-agent % of sites partially or fully disallowing.

    Returns, per agent, rows ``(snapshot_id, pct)`` over the analysis
    set.
    """
    out: Dict[str, List[Tuple[str, float]]] = {agent: [] for agent in agents}
    population = series.analysis_domains
    cache = series.cache
    for snapshot in series.snapshots:
        groups = series.analysis_body_counts(snapshot)
        for agent in agents:
            hits = 0
            for body, count in groups:
                if body is None:
                    continue
                if cache.classification(body, agent).level.disallows:
                    hits += count
            if metrics_enabled():
                shared_series().add(
                    "measure.sites_disallowing",
                    snapshot.spec.month_index,
                    hits,
                    agent=agent,
                )
            pct = 100.0 * hits / len(population) if population else 0.0
            out[agent].append((snapshot.spec.snapshot_id, pct))
    return out


@dataclass
class AllowRemovalTrend:
    """Figure 4's two series plus per-domain detail.

    Attributes:
        explicit_allow_counts: ``(snapshot_id, count)`` of sites
            explicitly allowing >= 1 AI agent.
        removals_per_period: ``(snapshot_id, count)`` of sites that had
            an explicit full restriction on an agent in the previous
            snapshot and no restriction in this one.
        removal_domains: Domains that removed restrictions, with the
            snapshot where the removal was first observed.
    """

    explicit_allow_counts: List[Tuple[str, int]] = field(default_factory=list)
    removals_per_period: List[Tuple[str, int]] = field(default_factory=list)
    removal_domains: Dict[str, str] = field(default_factory=dict)


def allow_and_removal_trend(
    series: SnapshotSeries,
    agents: Sequence[str] = tuple(AI_USER_AGENT_TOKENS),
    removal_agent: str = "GPTBot",
) -> AllowRemovalTrend:
    """Figure 4: explicit allows over time and removals per period."""
    trend = AllowRemovalTrend()
    cache = series.cache

    previous_restricted: Set[str] = set()
    first = True
    for snapshot in series.snapshots:
        allows = 0
        restricted_now: Set[str] = set()
        removed_now = 0
        # Counting passes run over unique bodies; the restricted *set*
        # needs domain identities, so it walks the aligned body row.
        # Bodies repeat across snapshots (most sites never change), so
        # the any-agent sweep memoizes per distinct body inside the
        # series' cache -- persistently, when a store is attached.
        for body, count in series.analysis_body_counts(snapshot):
            if body is None:
                continue
            if cache.allows_any(body, agents):
                allows += count
        bodies = series.analysis_bodies(snapshot)
        for domain, body in zip(series.analysis_domains, bodies):
            if body is None:
                continue
            if cache.classification(body, removal_agent).level is RestrictionLevel.FULL:
                restricted_now.add(domain)
        if not first:
            for domain in series.analysis_domains:
                if domain in previous_restricted and domain not in restricted_now:
                    removed_now += 1
                    trend.removal_domains.setdefault(
                        domain, snapshot.spec.snapshot_id
                    )
        trend.explicit_allow_counts.append((snapshot.spec.snapshot_id, allows))
        trend.removals_per_period.append(
            (snapshot.spec.snapshot_id, 0 if first else removed_now)
        )
        previous_restricted = restricted_now
        first = False
    return trend


def first_allow_table(
    series: SnapshotSeries, agent: str = "GPTBot"
) -> List[Tuple[str, str]]:
    """Table 4: domains explicitly allowing *agent*, with the first
    snapshot where the allow was observed."""
    rows: List[Tuple[str, str]] = []
    seen: Set[str] = set()
    cache = series.cache
    for snapshot in series.snapshots:
        bodies = series.analysis_bodies(snapshot)
        for domain, body in zip(series.analysis_domains, bodies):
            if domain in seen:
                continue
            if body is not None and cache.explicitly_allows(body, agent):
                rows.append((domain, snapshot.spec.snapshot_id))
                seen.add(domain)
    return rows


def snapshot_coverage_table(series: SnapshotSeries) -> List[Tuple[str, str, int, int]]:
    """Table 3: per snapshot, sites present and sites with robots.txt.

    Returns rows ``(snapshot_id, label, n_sites, n_with_robots)``.
    """
    rows = []
    for snapshot in series.snapshots:
        n_sites = sum(
            1
            for domain in series.stable_domains
            if (record := snapshot.record_for(domain)) is not None
            and (record.ok or record.missing)
        )
        n_robots = sum(
            1
            for domain in series.stable_domains
            if (record := snapshot.record_for(domain)) is not None and record.ok
        )
        rows.append((snapshot.spec.snapshot_id, snapshot.spec.label, n_sites, n_robots))
    return rows
