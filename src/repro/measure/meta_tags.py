"""Section 2.2's NoAI meta-tag scan.

DeviantArt's ``noai`` / ``noimageai`` meta tags are an HTML-level
content-control signal.  The paper checks the Tranco top 10k (October
2024) and finds only 17 sites with ``noai`` and 16 with ``noimageai``.
This module scans rendered homepages for the tags over HTTP.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..agents.useragent import DEFAULT_BROWSER_UA
from ..net.errors import NetError
from ..net.http import Headers, Request
from ..net.transport import Network

__all__ = ["MetaTagScan", "extract_robots_meta", "page_has_noai", "scan_meta_tags"]

_META_RE = re.compile(
    r'<meta\s+name="robots"\s+content="([^"]*)"', re.IGNORECASE
)


def extract_robots_meta(html: str) -> List[str]:
    """Directives in ``<meta name="robots">`` tags, lowercased.

    >>> extract_robots_meta('<meta name="robots" content="noai, noimageai">')
    ['noai', 'noimageai']
    """
    directives: List[str] = []
    for content in _META_RE.findall(html):
        for part in content.split(","):
            part = part.strip().lower()
            if part:
                directives.append(part)
    return directives


def page_has_noai(html: str) -> bool:
    """Whether the page carries the ``noai`` directive."""
    return "noai" in extract_robots_meta(html)


@dataclass
class MetaTagScan:
    """Results of a NoAI tag sweep.

    Attributes:
        n_scanned: Sites whose homepage was retrieved.
        noai_hosts: Sites with a ``noai`` directive.
        noimageai_hosts: Sites with a ``noimageai`` directive.
        unreachable: Sites whose homepage could not be fetched.
    """

    n_scanned: int = 0
    noai_hosts: List[str] = field(default_factory=list)
    noimageai_hosts: List[str] = field(default_factory=list)
    unreachable: List[str] = field(default_factory=list)

    @property
    def n_noai(self) -> int:
        return len(self.noai_hosts)

    @property
    def n_noimageai(self) -> int:
        return len(self.noimageai_hosts)


def scan_meta_tags(
    network: Network,
    hosts: Sequence[str],
    user_agent: str = DEFAULT_BROWSER_UA,
) -> MetaTagScan:
    """Fetch each host's homepage and look for NoAI meta tags."""
    scan = MetaTagScan()
    for host in hosts:
        try:
            response = network.request(
                Request(host=host, path="/", headers=Headers({"User-Agent": user_agent}))
            )
        except NetError:
            scan.unreachable.append(host)
            continue
        if response.status != 200:
            scan.unreachable.append(host)
            continue
        scan.n_scanned += 1
        directives = extract_robots_meta(response.text)
        if "noai" in directives:
            scan.noai_hosts.append(host)
        if "noimageai" in directives:
            scan.noimageai_hosts.append(host)
    return scan
