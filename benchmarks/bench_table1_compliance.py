"""Table 1 / Section 5: AI crawler robots.txt compliance.

Regenerates the paper's compliance matrix -- which crawlers visited the
testbed, which fetched robots.txt, which respected it -- plus the
Section 5.2.2 third-party assistant breakdown (1 respects / 1 buggy /
1 intermittent / 20 never fetch), and checks the headline findings:

* nine crawlers visit unprompted;
* Bytespider fetches robots.txt but ignores it;
* both built-in assistants (ChatGPT, Meta) obey;
* most third-party assistant crawlers never fetch robots.txt.
"""

from conftest import save_artifact

from repro.report.experiments import run_table1_compliance


def test_table1_compliance(benchmark, artifact_dir):
    result = benchmark.pedantic(
        run_table1_compliance, kwargs={"seed": 42, "n_apps": 2000},
        rounds=1, iterations=1,
    )
    save_artifact(artifact_dir, result)
    print(result.text)

    metrics = result.metrics
    assert metrics["n_visited"] == 9
    assert metrics["bytespider_respects"] == 0
    assert metrics["builtin_respect"] == 2
    assert metrics["third_party_total"] == 23
    assert metrics["third_party_no_fetch"] == 20
    # Seven passive visitors respect + ChatGPT-User via active = 8 "Yes".
    assert metrics["n_respect_yes"] == 8
