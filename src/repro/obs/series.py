"""Labeled time series on the simulated-month logical clock.

The paper's operator-side question -- "how many GPTBot requests hit my
site in month 18, and how many were blocked?" -- is a *time-series*
question, not a totals question.  :class:`SeriesRegistry` answers it
natively: each :class:`Series` is keyed on ``(name, frozen label set)``
exactly like the instruments in :mod:`repro.obs.metrics`, but its value
is a mapping from the simulated-month index (the same logical clock
spans carry) to an accumulated amount.

Contract, mirroring the metrics layer:

* **Disabled fast path.**  :meth:`Series.add` checks the *metrics*
  module's one global bool first; ``set_metrics_enabled(False)``
  silences series and counters together, and the residual cost is one
  bool test (gated by ``benchmarks/bench_obs_overhead.py``).
* **Determinism.**  Series amounts on the instrumented paths are
  integer event counts, so per-month sums are exact and identical for
  serial / thread / fork scheduling -- ``tests/report/test_orchestrator.py``
  demands byte-identical ``SERIES.json`` across all three modes.
* **Worker shipping.**  :meth:`SeriesRegistry.snapshot` /
  :func:`snapshot_delta` / :meth:`SeriesRegistry.merge` compose exactly
  like the counter protocol: a fork worker snapshots at entry, ships
  the delta, and the parent merges by per-month addition.
* **Bounded cardinality.**  A registry refuses to materialize more than
  ``max_series_per_name`` labeled children per series name; overflowing
  label sets collapse into one reserved ``{overflow=true}`` bucket so a
  runaway label (e.g. raw user-agent strings) cannot exhaust memory.
  Instrumented call sites additionally normalize user agents through a
  fixed vocabulary (see :func:`repro.net.accesslog.agent_label`), so in
  practice the cap never triggers.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Optional, Tuple, Union

from . import metrics as _metrics
from .metrics import InstrumentKey, _make_key, render_key

__all__ = [
    "Series",
    "SeriesRegistry",
    "SERIES_SCHEMA_VERSION",
    "DEFAULT_MAX_SERIES_PER_NAME",
    "OVERFLOW_LABELS",
    "shared_series",
    "snapshot_delta",
    "export_series",
]

#: Schema version stamped into exported SERIES.json payloads.
SERIES_SCHEMA_VERSION = 1

#: Per-name cardinality ceiling; far above anything the bounded label
#: vocabularies (agent tokens, site categories, outcomes) can produce.
DEFAULT_MAX_SERIES_PER_NAME = 1024

#: Reserved label set that absorbs series beyond the cardinality cap.
OVERFLOW_LABELS: Tuple[Tuple[str, str], ...] = (("overflow", "true"),)

#: ``{key: {month: amount}}`` -- the picklable snapshot tree.
SeriesSnapshot = Dict[InstrumentKey, Dict[int, float]]


class Series:
    """One labeled time series: month index -> accumulated amount.

    Handles are cheap to hold; hot call sites fetch one from the
    registry once and call :meth:`add` directly, paying a bool check
    plus one lock per event.
    """

    __slots__ = ("key", "_lock", "_points")

    def __init__(self, key: InstrumentKey):
        self.key = key
        self._lock = threading.Lock()
        self._points: Dict[int, float] = {}

    def add(self, month: int, amount: float = 1) -> None:
        """Add *amount* at *month* (no-op while metrics are disabled).

        Zero amounts record nothing: a month with no events is absent
        from the series, not an explicit zero.  (Were zeros
        materialized, serial runs would carry them while fork workers'
        :func:`snapshot_delta` shipping would drop them, breaking the
        byte-identical SERIES.json contract.)
        """
        if not _metrics._ENABLED or amount == 0:
            return
        with self._lock:
            self._points[month] = self._points.get(month, 0) + amount

    def _merge(self, points: Dict[int, float]) -> None:
        with self._lock:
            for month, amount in points.items():
                self._points[month] = self._points.get(month, 0) + amount

    def _reset(self) -> None:
        with self._lock:
            self._points = {}

    def value_at(self, month: int) -> float:
        """Accumulated amount at *month* (0 when never recorded)."""
        return self._points.get(month, 0)

    @property
    def total(self) -> float:
        """Sum over all months."""
        with self._lock:
            return sum(self._points.values())

    def points(self) -> Dict[int, float]:
        """A detached month -> amount copy, in ascending month order."""
        with self._lock:
            return dict(sorted(self._points.items()))


class SeriesRegistry:
    """A thread-safe home for every time series in a process.

    >>> registry = SeriesRegistry()
    >>> registry.add("sim.requests", month=3, agent="GPTBot")
    >>> registry.series("sim.requests", agent="GPTBot").value_at(3)
    1
    """

    def __init__(self, max_series_per_name: int = DEFAULT_MAX_SERIES_PER_NAME):
        self._lock = threading.RLock()
        self._series: Dict[InstrumentKey, Series] = {}
        self._per_name: Dict[str, int] = {}
        self._max_per_name = max_series_per_name

    # -- series access --------------------------------------------------------

    def series(self, name: str, **labels: object) -> Series:
        """Get or create the series for ``(name, labels)``.

        Beyond ``max_series_per_name`` distinct label sets for one
        *name*, new label sets all resolve to the shared
        ``{overflow=true}`` bucket for that name.
        """
        key = _make_key(name, labels)
        with self._lock:
            instrument = self._series.get(key)
            if instrument is None:
                if labels and self._per_name.get(name, 0) >= self._max_per_name:
                    key = (name, OVERFLOW_LABELS)
                    instrument = self._series.get(key)
                    if instrument is not None:
                        return instrument
                instrument = Series(key)
                self._series[key] = instrument
                self._per_name[name] = self._per_name.get(name, 0) + 1
            return instrument

    def add(self, name: str, month: int, amount: float = 1, **labels: object) -> None:
        """Add to a series by name (creates it on first use)."""
        if not _metrics._ENABLED:
            return
        self.series(name, **labels).add(month, amount)

    def value_at(self, name: str, month: int, **labels: object) -> float:
        """Accumulated amount (0 when the series does not exist)."""
        instrument = self._series.get(_make_key(name, labels))
        return instrument.value_at(month) if instrument is not None else 0

    def series_count(self, name: Optional[str] = None) -> int:
        """Materialized series, overall or for one *name*."""
        with self._lock:
            if name is None:
                return len(self._series)
            return self._per_name.get(name, 0)

    # -- snapshot / merge -----------------------------------------------------

    def snapshot(self) -> SeriesSnapshot:
        """A picklable ``{key: {month: amount}}`` tree, detached."""
        with self._lock:
            instruments = dict(self._series)
        return {
            key: instrument.points()
            for key, instrument in instruments.items()
            if instrument._points
        }

    def merge(
        self, other: Union["SeriesRegistry", SeriesSnapshot]
    ) -> None:
        """Fold *other* (a registry or snapshot) into this registry.

        Per-month amounts add; series unseen locally are created.  Like
        counter merging, this works while metrics are disabled -- it
        ships already-recorded data rather than recording new data.
        """
        snapshot = other.snapshot() if isinstance(other, SeriesRegistry) else other
        for (name, labels), points in snapshot.items():
            if points:
                self.series(name, **dict(labels))._merge(points)

    def reset(self) -> None:
        """Zero every series **in place**; held handles stay valid."""
        with self._lock:
            instruments = list(self._series.values())
        for instrument in instruments:
            instrument._reset()

    # -- export ---------------------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        """A schema-versioned, JSON-able rendering.

        Months and values are parallel arrays in ascending month order
        (a JSON object keyed by month would sort ``"10" < "2"``), and
        the outer mapping uses rendered string keys, so dumping with
        ``sort_keys=True`` is byte-deterministic.
        """
        snapshot = self.snapshot()
        rendered: Dict[str, object] = {}
        for key, points in sorted(snapshot.items()):
            months = sorted(points)
            rendered[render_key(key)] = {
                "months": months,
                "values": [points[month] for month in months],
                "total": sum(points[month] for month in months),
            }
        return {"schema_version": SERIES_SCHEMA_VERSION, "series": rendered}


def snapshot_delta(after: SeriesSnapshot, before: SeriesSnapshot) -> SeriesSnapshot:
    """``after - before`` for two snapshots of the same registry.

    Per-month amounts subtract (zero months and empty series are
    dropped), so a forked worker ships only the activity it performed.
    """
    delta: SeriesSnapshot = {}
    for key, points in after.items():
        prior = before.get(key, {})
        diff = {
            month: amount - prior.get(month, 0)
            for month, amount in points.items()
            if amount != prior.get(month, 0)
        }
        if diff:
            delta[key] = diff
    return delta


def export_series(path, registry: Optional["SeriesRegistry"] = None) -> None:
    """Write *registry* (default: the shared one) as JSON to *path*."""
    registry = registry if registry is not None else shared_series()
    payload = registry.to_json()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


_SHARED_SERIES = SeriesRegistry()


def shared_series() -> SeriesRegistry:
    """The process-wide series registry instrumented layers report to."""
    return _SHARED_SERIES
