"""Extension: chi-square association tests over the survey.

The Section 4 narrative implies couplings the marginals alone cannot
show; these tests quantify them over the 203-respondent corpus.
"""

from conftest import save_artifact

from repro.report.experiments import run_survey_crosstabs


def test_ext_survey_crosstabs(benchmark, artifact_dir):
    result = benchmark.pedantic(
        run_survey_crosstabs, kwargs={"seed": 42}, rounds=1, iterations=1
    )
    save_artifact(artifact_dir, result)
    print(result.text)

    metrics = result.metrics
    # The tables exist and the tests ran with 1 dof each.
    for name in ("awareness-by-professional", "intent-by-familiarity",
                 "action-by-impact"):
        assert f"{name}_chi2" in metrics
        assert 0.0 <= metrics.get(f"{name}_p", 0.5) <= 1.0
