"""Small shared utilities.

Determinism in this project comes from *derived* seeds: every
stochastic component seeds its own ``random.Random`` from a tuple of
stable parts (experiment seed, domain, purpose).  ``random.Random``
itself only accepts hashable scalars with stable semantics for int/str/
bytes, so :func:`seeded_rng` canonicalizes arbitrary parts into a
stable string seed.  (Never use ``hash()`` for this: string hashing is
randomized per process.)
"""

from __future__ import annotations

import random
from typing import Any

__all__ = ["seeded_rng", "derive_seed"]


def derive_seed(*parts: Any) -> str:
    """A stable scalar seed derived from *parts*.

    >>> derive_seed(7, "example.com", "adoption")
    '7|example.com|adoption'
    """
    return "|".join(str(part) for part in parts)


def seeded_rng(*parts: Any) -> random.Random:
    """A ``random.Random`` deterministically seeded from *parts*.

    >>> seeded_rng(1, "x").random() == seeded_rng(1, "x").random()
    True
    """
    return random.Random(derive_seed(*parts))
