"""Section 3.1: cross-validation of the snapshot corpus.

Paper shape: comparing Common Crawl's robots.txt records against the
Internet Archive showed no disagreements, and against the authors' own
fresh crawl under 1% -- all attributable to sites changing robots.txt
between the two crawl times.
"""

from conftest import save_artifact

from repro.measure.validation import cross_validate_snapshot
from repro.report.experiments import ExperimentResult
from repro.report.tables import render_table


def test_sec31_cross_validation(benchmark, longitudinal_bundle, artifact_dir):
    population = longitudinal_bundle.population
    snapshot = longitudinal_bundle.series.snapshots[7]

    report = benchmark.pedantic(
        cross_validate_snapshot,
        args=(population, snapshot),
        kwargs={"p_lagged": 0.2, "seed": 42},
        rounds=1, iterations=1,
    )
    result = ExperimentResult(
        "sec31_validation",
        "Snapshot cross-validation (Section 3.1)",
        render_table(
            ["measurement", "value"],
            [
                ("sites compared", report.n_compared),
                ("agreeing", report.n_agree),
                ("disagreements explained by timing", report.n_timing_disagreements),
                ("unexplained disagreements", len(report.unexplained)),
                ("agreement rate", f"{100 * report.agreement_rate:.2f}%"),
            ],
            title=f"Validation of snapshot {snapshot.spec.snapshot_id}",
        ),
        {
            "agreement_pct": 100 * report.agreement_rate,
            "unexplained": float(len(report.unexplained)),
        },
    )
    save_artifact(artifact_dir, result)
    print(result.text)

    assert result.metrics["unexplained"] == 0
    assert result.metrics["agreement_pct"] > 98.0  # paper: >99%
