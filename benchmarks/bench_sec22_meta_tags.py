"""Section 2.2: NoAI meta-tag adoption.

Paper shape: adoption is tiny -- 17 sites with ``noai`` and 16 with
``noimageai`` among the top 10k (i.e. well under 0.5%).
"""

from conftest import save_artifact

from repro.report.experiments import run_sec22_meta_tags


def test_sec22_meta_tags(benchmark, audit_population, artifact_dir):
    result = benchmark.pedantic(
        run_sec22_meta_tags,
        kwargs={"population": audit_population},
        rounds=1, iterations=1,
    )
    save_artifact(artifact_dir, result)
    print(result.text)

    metrics = result.metrics
    assert metrics["noai_per_10k"] <= 60         # paper: 17 per 10k
    assert metrics["noimageai_per_10k"] <= metrics["noai_per_10k"]
