"""RFC 9309 robots.txt engine: parse, match, classify, lint, author.

This subpackage is the reproduction's equivalent of Google's
open-source robots.txt parser plus the classification wrapper the paper
builds on top of it (Section 3.1).  Public API:

* :func:`parse` / :class:`ParsedRobots` -- structural parsing.
* :class:`RobotsPolicy` -- per-agent allow/disallow queries.
* :func:`classify` / :class:`RestrictionLevel` -- the paper's four
  restriction categories.
* :class:`LegacyPolicy` -- the deliberately buggy comparison parser.
* :func:`lint` -- author-mistake detection.
* :class:`RobotsBuilder` and edit helpers -- programmatic authoring.
"""

from .aitxt import (
    AITXT_PATH,
    AiTxtPolicy,
    MediaCategory,
    MEDIA_EXTENSIONS,
    build_aitxt,
    category_for_path,
)
from .classify import (
    Classification,
    RestrictionLevel,
    classify,
    classify_rules,
    explicitly_allows,
    fully_disallows_any,
)
from .compiled import (
    CompiledPolicyCache,
    CompiledRobots,
    CompiledRuleSet,
    compile_rules,
    evaluate_compiled,
    shared_policy_cache,
)
from .diagnostics import Finding, Severity, has_mistakes, lint
from .legacy import LegacyPolicy, LegacyQuirks
from .lexer import Line, LineKind, tokenize
from .matcher import Rule, Verdict, evaluate, match_priority, normalize_path, pattern_matches
from .parser import Group, ParsedRobots, parse
from .policy import AgentRules, RobotsPolicy, extract_product_token
from .serialize import (
    RobotsBuilder,
    add_allow_group,
    add_disallow_group,
    agents_mentioned,
    remove_agent_rules,
)

__all__ = [
    "AITXT_PATH",
    "AiTxtPolicy",
    "MediaCategory",
    "MEDIA_EXTENSIONS",
    "build_aitxt",
    "category_for_path",
    "Classification",
    "RestrictionLevel",
    "classify",
    "classify_rules",
    "explicitly_allows",
    "fully_disallows_any",
    "CompiledPolicyCache",
    "CompiledRobots",
    "CompiledRuleSet",
    "compile_rules",
    "evaluate_compiled",
    "shared_policy_cache",
    "Finding",
    "Severity",
    "has_mistakes",
    "lint",
    "LegacyPolicy",
    "LegacyQuirks",
    "Line",
    "LineKind",
    "tokenize",
    "Rule",
    "Verdict",
    "evaluate",
    "match_priority",
    "normalize_path",
    "pattern_matches",
    "Group",
    "ParsedRobots",
    "parse",
    "AgentRules",
    "RobotsPolicy",
    "extract_product_token",
    "RobotsBuilder",
    "add_allow_group",
    "add_disallow_group",
    "agents_mentioned",
    "remove_agent_rules",
]
