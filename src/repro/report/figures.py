"""Text rendering of time series ("figures").

The paper's figures are line charts over Common Crawl snapshots.  In a
terminal-first reproduction the equivalent artifact is (a) the exact
data series as CSV, and (b) a quick-look ASCII chart so the shape --
surge, plateau, uptick -- is visible in bench output without plotting.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["series_to_csv", "ascii_chart"]

Number = float
Series = Sequence[Tuple[str, Number]]


def series_to_csv(series: Dict[str, Series]) -> str:
    """Render named series sharing an x-axis as CSV.

    Series are joined on x labels in first-series order; missing points
    render empty.

    >>> print(series_to_csv({"a": [("t0", 1.0), ("t1", 2.0)]}))
    x,a
    t0,1.0
    t1,2.0
    """
    names = list(series)
    x_labels: List[str] = []
    for name in names:
        for x, _ in series[name]:
            if x not in x_labels:
                x_labels.append(x)
    lookup = {
        name: {x: y for x, y in series[name]} for name in names
    }
    lines = ["x," + ",".join(names)]
    for x in x_labels:
        cells = [x]
        for name in names:
            value = lookup[name].get(x)
            cells.append("" if value is None else repr(float(value)))
        lines.append(",".join(cells))
    return "\n".join(lines)


def ascii_chart(
    series: Dict[str, Series],
    width: int = 50,
    label_width: int = 10,
) -> str:
    """A horizontal-bar ASCII chart, one row per (x, series) pair.

    >>> chart = ascii_chart({"pct": [("2023-01", 5.0), ("2023-02", 10.0)]})
    >>> "2023-02" in chart
    True
    """
    peak = 0.0
    for points in series.values():
        for _, y in points:
            peak = max(peak, float(y))
    if peak <= 0:
        peak = 1.0
    lines: List[str] = []
    markers = "#*o+x%@"
    for index, (name, points) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        lines.append(f"{name} [{marker}] (max {peak:.2f})")
        for x, y in points:
            bar = marker * int(round(width * float(y) / peak))
            lines.append(f"  {str(x)[:label_width].ljust(label_width)} |{bar} {float(y):.2f}")
    return "\n".join(lines)
