"""Figure 3: per-agent partial/full disallow trend.

Paper shape: GPTBot and CCBot are the most-restricted agents, followed
by ChatGPT-User; agents cannot be restricted before their announcement;
a secondary uptick follows the EU AI Act (August 2024).
"""

from conftest import save_artifact

from repro.report.experiments import run_figure3


def test_figure3_per_agent_trend(benchmark, longitudinal_bundle, artifact_dir):
    result = benchmark.pedantic(
        run_figure3, args=(longitudinal_bundle,), rounds=1, iterations=1
    )
    save_artifact(artifact_dir, result)
    print(result.text)

    metrics = result.metrics
    finals = {
        name[len("final_"):]: value
        for name, value in metrics.items()
        if name.startswith("final_")
    }
    ranked = sorted(finals, key=finals.get, reverse=True)
    assert set(ranked[:2]) == {"GPTBot", "CCBot"}
    assert finals["GPTBot"] > finals["ChatGPT-User"] > finals["PerplexityBot"]
    assert finals["anthropic-ai"] > finals["ClaudeBot"]
    # Everything is within plausible absolute range (paper: < 10%).
    for agent, value in finals.items():
        assert 0.0 <= value <= 14.0, agent
