"""Crawler source-address allocation.

Table 1 records, per user agent, whether the operating company
*publishes* the IP ranges its crawler uses.  That bit matters twice in
the paper: sites can IP-block crawlers with published ranges (a form of
active blocking the UA-based detector cannot see, Section 6.1), and
Cloudflare validates "verified bots" by checking that a request claiming
a verified UA comes from the published range (Appendix C.2).

All addresses here are synthetic, drawn from documentation/test blocks,
but the *structure* -- one stable range per crawler, published or not --
matches reality.  Every crawler gets a range; ``published`` controls
whether the rest of the system is allowed to rely on it.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["CrawlerRange", "CRAWLER_RANGES", "crawler_ip", "range_for", "ip_in_published_range"]


@dataclass(frozen=True)
class CrawlerRange:
    """The address block one crawler operates from.

    Attributes:
        token: Crawler user-agent token.
        network: CIDR block the crawler's requests originate from.
        published: Whether the operator documents this block publicly.
    """

    token: str
    network: str
    published: bool

    def contains(self, address: str) -> bool:
        """Whether *address* is inside this crawler's block."""
        try:
            return ipaddress.ip_address(address) in ipaddress.ip_network(self.network)
        except ValueError:
            return False

    def address(self, index: int = 0) -> str:
        """A deterministic host address from the block."""
        network = ipaddress.ip_network(self.network)
        hosts = network.num_addresses - 2
        if hosts < 1:
            hosts = network.num_addresses
        offset = 1 + (index % max(hosts, 1))
        return str(network.network_address + offset)


#: One /24 per crawler out of 100.64.0.0/10 (CGNAT space -- guaranteed
#: not to collide with the TEST-NET blocks used for ordinary clients).
_RANGE_SPECS = [
    # (token, third_octet, published)
    ("Amazonbot", 1, True),
    ("AI2Bot", 2, False),
    ("anthropic-ai", 3, False),
    ("Applebot", 4, True),
    ("Bytespider", 5, False),
    ("CCBot", 6, True),
    ("ChatGPT-User", 7, True),
    ("Claude-Web", 8, False),
    ("ClaudeBot", 9, False),
    ("cohere-ai", 10, False),
    ("Diffbot", 11, False),
    ("FacebookBot", 12, True),
    ("GPTBot", 13, True),
    ("Kangaroo Bot", 14, False),
    ("Meta-ExternalAgent", 15, True),
    ("Meta-ExternalFetcher", 16, True),
    ("OAI-SearchBot", 17, True),
    ("omgili", 18, False),
    ("PerplexityBot", 19, False),
    ("Timpibot", 20, False),
    ("YouBot", 21, False),
    ("Googlebot", 22, True),
    ("Bingbot", 23, True),
    ("DuckAssistbot", 24, True),
    ("ICC Crawler", 25, True),
]

CRAWLER_RANGES: Dict[str, CrawlerRange] = {
    token.lower(): CrawlerRange(token, f"100.64.{octet}.0/24", published)
    for token, octet, published in _RANGE_SPECS
}


def range_for(token: str) -> Optional[CrawlerRange]:
    """The address block for crawler *token*, or None when unassigned."""
    return CRAWLER_RANGES.get(token.lower())


def crawler_ip(token: str, index: int = 0) -> str:
    """A deterministic source IP for crawler *token*.

    Crawlers without an assigned block fall back to a shared scratch
    range so they still have stable, distinct addresses.
    """
    block = range_for(token)
    if block is not None:
        return block.address(index)
    digest = sum(ord(c) for c in token.lower()) % 250
    return f"100.127.{digest}.{1 + (index % 250)}"


def ip_in_published_range(token: str, address: str) -> bool:
    """Whether *address* is in the *published* range for *token*.

    Returns False when the crawler publishes no range -- verification is
    impossible, which is exactly why Cloudflare cannot verify e.g.
    ClaudeBot and why sites fall back to UA-based blocking for Anthropic
    (Section 6.1).
    """
    block = range_for(token)
    if block is None or not block.published:
        return False
    return block.contains(address)
