"""Build, export, reload, and re-analyze -- the replication workflow.

Run with::

    python examples/replication_package.py

The paper publishes its data and code; this example shows the
equivalent workflow here: build a world, crawl its snapshots, export
the three datasets (snapshot corpus, robots.txt schedules, survey
responses) as JSONL, reload them from disk, and verify the re-analysis
reproduces the original numbers exactly.  It also demonstrates the
semantic differ on a real deal-driven robots.txt change.
"""

import io
import pathlib

from repro.agents import AI_USER_AGENT_TOKENS
from repro.core.diff import classify_change, diff_robots
from repro.measure.longitudinal import collect_snapshots, full_disallow_trend
from repro.report.datasets import (
    dump_respondents,
    dump_schedules,
    dump_snapshots,
    load_respondents,
    load_snapshots,
)
from repro.survey import analyze, filter_valid, generate_respondents
from repro.web import PopulationConfig, build_web_population

OUT = pathlib.Path(__file__).resolve().parent.parent / "results"


def main() -> None:
    OUT.mkdir(exist_ok=True)
    config = PopulationConfig(
        universe_size=1200, list_size=800, top5k_cut=100, audit_size=200
    )
    print("building world and crawling snapshots...")
    population = build_web_population(config)
    series = collect_snapshots(population)

    # -- export --------------------------------------------------------------
    snap_path = OUT / "snapshots.jsonl"
    with snap_path.open("w") as sink:
        n = dump_snapshots(series.snapshots, sink)
    print(f"exported {n} snapshot records -> {snap_path}")

    sched_path = OUT / "schedules.jsonl"
    with sched_path.open("w") as sink:
        n = dump_schedules(population.stable, sink)
    print(f"exported {n} robots.txt schedules -> {sched_path}")

    survey_path = OUT / "survey.jsonl"
    respondents = filter_valid(generate_respondents())
    with survey_path.open("w") as sink:
        n = dump_respondents(respondents, sink)
    print(f"exported {n} survey responses -> {survey_path}")

    # -- reload and re-analyze -------------------------------------------------
    with snap_path.open() as source:
        reloaded = load_snapshots(source)
    top5k = {site.domain for site in population.stable_top5k}
    original = full_disallow_trend(series, top5k)

    from repro.measure.longitudinal import SnapshotSeries, stable_with_robots

    reseries = SnapshotSeries(
        snapshots=reloaded,
        stable_domains=series.stable_domains,
        analysis_domains=stable_with_robots(reloaded, series.stable_domains),
    )
    recomputed = full_disallow_trend(reseries, top5k)
    assert recomputed == original, "reloaded corpus must reproduce the trend"
    print("figure-2 trend reproduced exactly from the exported corpus")

    with survey_path.open() as source:
        survey_reloaded = load_respondents(source)
    assert (
        analyze(survey_reloaded).pct_never_heard
        == analyze(respondents).pct_never_heard
    )
    print("survey statistics reproduced exactly from the exported responses")

    # -- the differ on a real transition -----------------------------------------
    deal_publisher, domains = next(iter(population.deal_domains.items()))
    site = population.by_domain[domains[0]]
    months = [m for m in site.change_months() if m > 0]
    month = months[-1]
    before, after = site.robots_at(month - 1), site.robots_at(month)
    diff = diff_robots(before, after)
    kind = classify_change(before, after, AI_USER_AGENT_TOKENS)
    print(
        f"\n{site.domain} ({deal_publisher}) at month {month}: {kind.value}; "
        f"loosened={diff.loosened_agents()} removed={diff.agents_removed}"
    )


if __name__ == "__main__":
    main()
