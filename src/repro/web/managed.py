"""Managed robots.txt services (Section 2.2).

Dark Visitors, YoastSEO, and AIOSEO offer *managed* robots.txt: the
service maintains an up-to-date AI-agent list and rewrites the
customer's robots.txt automatically as new crawlers are announced.
:class:`ManagedRobotsService` models that product: it knows the agent
announcement timeline and produces, for any month, the customer's base
file plus a synced disallow group covering every announced AI agent.

The operator model uses this for its "managed" sites, and the service
is exposed directly so library users can generate synced files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.serialize import add_disallow_group, agents_mentioned
from .events import AGENT_ANNOUNCED

__all__ = ["ManagedRobotsService"]


@dataclass
class ManagedRobotsService:
    """A robots.txt manager synced to the AI-agent announcement feed.

    Args:
        name: Service name (rendered into the managed block's comment).
        announcements: Agent-to-announcement-month feed; defaults to the
            study's :data:`~repro.web.events.AGENT_ANNOUNCED` timeline.
        block_paths: Paths the managed group disallows (``/`` = full).
    """

    name: str = "agent-sync"
    announcements: Dict[str, int] = field(
        default_factory=lambda: dict(AGENT_ANNOUNCED)
    )
    block_paths: Tuple[str, ...] = ("/",)

    def known_agents(self, month: int) -> List[str]:
        """Agents announced by *month*, in (announcement, name) order."""
        pairs = [(m, token) for token, m in self.announcements.items() if m <= month]
        pairs.sort()
        return [token for _, token in pairs]

    def update_months(self, subscribed_month: int, through: int) -> List[int]:
        """Months in (subscribed, through] where the service pushes an update."""
        months = sorted(
            {
                m
                for m in self.announcements.values()
                if subscribed_month < m <= through
            }
        )
        return months

    def managed_text(self, base_text: str, month: int) -> str:
        """The customer's file at *month*: base + synced managed group.

        Agents the base file already names are left to the customer's
        own rules (the manager does not duplicate them).
        """
        already = set(agents_mentioned(base_text))
        agents = [
            token
            for token in self.known_agents(month)
            if token.lower() not in already
        ]
        if not agents:
            return base_text
        text = base_text
        if text and not text.endswith("\n"):
            text += "\n"
        text += f"# managed by {self.name}\n"
        return add_disallow_group(text, agents, paths=list(self.block_paths))

    def schedule(
        self, base_text: str, subscribed_month: int, through: int = 24
    ) -> List[Tuple[int, str]]:
        """The full (month, text) schedule from subscription onward."""
        months = [subscribed_month] + self.update_months(subscribed_month, through)
        return [(m, self.managed_text(base_text, m)) for m in months]
