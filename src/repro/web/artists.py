"""The artist-website population (Section 4.4).

Builds the 1,182 artist personal sites collected from the Concept Art
Association and Animation Union directories: each site is assigned a
hosting provider per Table 2's shares (with a long tail of small
providers, self-hosting, and social platforms), a robots.txt determined
by the provider's policy surface, DNS records matching the provider's
hosting style, and the provider's edge blocking behavior.

The key empirical inputs reproduced here:

* 17% of Squarespace artists enabled the AI-crawler toggle,
* zero Wix (Paid) artists edited their fully editable robots.txt,
* Carbonmade's default robots.txt blocks GPTBot and CCBot for everyone,
* Weebly UA-blocks ClaudeBot and Bytespider at the edge,
* ArtStation and Carbonmade challenge all automated requests.
"""

from __future__ import annotations

import random

from ..util import seeded_rng
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..net.dns import DnsZone
from ..net.server import Website, render_page
from ..net.transport import Handler, Network
from ..proxy.reverse_proxy import ReverseProxy
from ..proxy.rules import Action, BlockRule, RuleSet
from .domains import artist_domain
from .providers import TOP_PROVIDERS, HostingProvider, RobotsControl

__all__ = ["ArtistSite", "ArtistPopulation", "build_artist_population"]

#: Long-tail buckets for artists not on a Table 2 provider.
_LONG_TAIL = ["small-provider", "self-hosted", "social-platform"]

#: Fraction of Squarespace artists who enabled the AI toggle.
SQUARESPACE_TOGGLE_RATE = 0.17


@dataclass
class ArtistSite:
    """One artist's personal website.

    Attributes:
        index: Position in the member directory.
        host: The site's hostname (custom domain or provider subdomain).
        provider: The Table 2 provider, or None for the long tail.
        tail_kind: Long-tail bucket when provider is None.
        ai_toggle_on: For AI-toggle providers, whether the artist
            enabled AI-crawler blocking.
        robots_txt: The robots.txt the site serves (None = absent).
    """

    index: int
    host: str
    provider: Optional[HostingProvider]
    tail_kind: Optional[str] = None
    ai_toggle_on: bool = False
    robots_txt: Optional[str] = None

    def build_handler(self) -> Handler:
        """Materialize the site (with provider edge behavior) for serving."""
        origin = Website(self.host)
        origin.add_page(
            "/",
            render_page(
                f"Portfolio of artist {self.index}",
                paragraphs=["Original artwork."],
                links=["/gallery"],
                images=["/img/piece1.png"],
            ),
        )
        origin.add_page("/gallery", render_page("Gallery", images=["/img/piece2.png"]))
        origin.set_robots_txt(self.robots_txt)
        if self.provider is None:
            return origin
        rules = RuleSet()
        if self.provider.blocks_uas:
            rules.add(
                BlockRule(
                    Action.BLOCK,
                    ua_patterns=list(self.provider.blocks_uas),
                    label=f"{self.provider.name}-edge",
                )
            )
        if self.provider.blocks_uas or self.provider.challenges_automation:
            return ReverseProxy(
                origin,
                rules,
                service_name=self.provider.name,
                block_all_automation=self.provider.challenges_automation,
                automation_action=Action.CAPTCHA,
            )
        return origin


@dataclass
class ArtistPopulation:
    """All artist sites plus the DNS zone used for attribution."""

    sites: List[ArtistSite]
    zone: DnsZone
    providers: List[HostingProvider] = field(default_factory=lambda: list(TOP_PROVIDERS))

    def by_provider(self) -> Dict[str, List[ArtistSite]]:
        """Sites grouped by provider name (long tail under its bucket)."""
        groups: Dict[str, List[ArtistSite]] = {}
        for site in self.sites:
            key = site.provider.name if site.provider else (site.tail_kind or "other")
            groups.setdefault(key, []).append(site)
        return groups

    def materialize(self, network: Network) -> None:
        """Register every artist site's handler on *network*."""
        for site in self.sites:
            network.register(site.build_handler(), host=site.host)


def _assign_provider(rng: random.Random) -> Optional[HostingProvider]:
    roll = rng.random()
    acc = 0.0
    for provider in TOP_PROVIDERS:
        acc += provider.share
        if roll < acc:
            return provider
    return None


def build_artist_population(seed: int = 42, n_artists: int = 1182) -> ArtistPopulation:
    """Build the artist-site population with DNS records.

    Subdomain-hosting providers put the artist under the provider apex;
    the rest give the artist a custom domain whose DNS points at the
    provider (CNAME into infra, or an A record in the provider's
    range).  Long-tail sites resolve to unaffiliated addresses.
    """
    rng = seeded_rng(seed, "artists")
    zone = DnsZone()
    sites: List[ArtistSite] = []
    for index in range(n_artists):
        provider = _assign_provider(rng)
        custom = artist_domain(index)
        if provider is None:
            tail_kind = rng.choice(_LONG_TAIL)
            host = custom
            zone.add_a(host, f"203.0.113.{1 + index % 250}")
            robots = None if rng.random() < 0.5 else (
                "User-agent: *\nDisallow: /admin/\n"
            )
            sites.append(
                ArtistSite(
                    index=index,
                    host=host,
                    provider=None,
                    tail_kind=tail_kind,
                    robots_txt=robots,
                )
            )
            continue

        toggle_on = (
            provider.control == RobotsControl.AI_TOGGLE
            and rng.random() < SQUARESPACE_TOGGLE_RATE
        )
        if provider.subdomain_hosting:
            apex = provider.infra.apex_domains[0]
            host = f"{custom.split('.')[0]}.{apex}"
        else:
            host = custom
            infra_host = provider.infra.infra_domains[0]
            if rng.random() < 0.6:
                zone.add_cname(host, infra_host)
                zone.add_a(infra_host, provider.infra.ip_networks[0].split("/")[0].rsplit(".", 1)[0] + ".10")
            else:
                network_base = provider.infra.ip_networks[0].split("/")[0].rsplit(".", 1)[0]
                zone.add_a(host, f"{network_base}.{20 + index % 200}")

        sites.append(
            ArtistSite(
                index=index,
                host=host,
                provider=provider,
                ai_toggle_on=toggle_on,
                robots_txt=provider.default_robots_txt(ai_toggle_on=toggle_on),
            )
        )
    return ArtistPopulation(sites=sites, zone=zone)
