"""HTTP client over the in-memory network.

:class:`HttpClient` is the fetch primitive every crawler and measurement
tool in this project uses: it carries a user agent and a source IP,
optionally follows redirects, and returns the final
:class:`~repro.net.http.Response`.  Behavioral knobs mirror the clients
the paper describes -- Common Crawl's snapshotter does *not* follow
redirects (Appendix B.1), while the Selenium-style control client does.

Transient-failure handling follows production crawler practice: capped
exponential backoff between retries, with *deterministic* jitter (a
seeded hash of host/path/attempt rather than an RNG) so retry traffic
is desynchronized across hosts yet every run replays identically.
Backoff delays are charged to the network's **simulated** clock
(``network.now``), never to wall time, and an optional per-request
retry budget bounds how much simulated time one fetch may burn.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from ..obs.metrics import shared_registry
from .errors import ConnectionRefused, ConnectionReset, TooManyRedirects
from .http import Headers, Request, Response, split_url
from .transport import Network

__all__ = ["HttpClient"]


class HttpClient:
    """A simple, configurable HTTP client.

    Args:
        network: The in-memory network to send requests through.
        user_agent: Default ``User-Agent`` header.
        client_ip: Source IP presented to servers.
        follow_redirects: Whether :meth:`get` chases 3xx responses.
        max_redirects: Redirect budget before raising.
        retries: Transient-failure retries per request.
        backoff_base: First retry delay in simulated seconds; doubles
            each attempt.
        backoff_cap: Ceiling on a single backoff delay.
        backoff_jitter: Fractional jitter added on top of each delay
            (0.1 = up to +10%); deterministic per (seed, host, path,
            attempt).  Zero disables jitter.
        retry_time_budget: Maximum simulated seconds of backoff one
            request may consume before giving up (None = unlimited).
        jitter_seed: Seed folded into the jitter hash so distinct
            clients (or chaos campaigns) desynchronize differently.

    >>> # doctest setup elided; see tests/net/test_client.py
    """

    def __init__(
        self,
        network: Network,
        user_agent: str = "repro-client/1.0",
        client_ip: str = "198.51.100.1",
        follow_redirects: bool = True,
        max_redirects: int = 5,
        retries: int = 0,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        backoff_jitter: float = 0.1,
        retry_time_budget: Optional[float] = None,
        jitter_seed: int = 0,
    ):
        self.network = network
        self.user_agent = user_agent
        self.client_ip = client_ip
        self.follow_redirects = follow_redirects
        self.max_redirects = max_redirects
        #: Transient-failure retries per request (connection resets and
        #: refusals; DNS failures are permanent and never retried).
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.backoff_jitter = backoff_jitter
        self.retry_time_budget = retry_time_budget
        self.jitter_seed = jitter_seed
        #: Cumulative simulated seconds this client has spent backing
        #: off (also charged to ``network.now`` as delays happen).
        self.retry_seconds = 0.0
        self._retry_counter = shared_registry().counter("net.client_retries")

    def _build_request(
        self, url: str, method: str, user_agent: Optional[str]
    ) -> Request:
        scheme, host, path = split_url(url)
        return Request(
            host=host,
            path=path,
            method=method,
            headers=Headers({"User-Agent": user_agent or self.user_agent}),
            client_ip=self.client_ip,
            scheme=scheme,
        )

    def get(self, url: str, user_agent: Optional[str] = None) -> Response:
        """GET *url*, following redirects per configuration.

        Raises:
            NetError: On DNS failure, injected transport failures, or
                redirect-budget exhaustion.
        """
        return self._fetch(url, "GET", user_agent)

    def head(self, url: str, user_agent: Optional[str] = None) -> Response:
        """HEAD *url* (no redirect following beyond the GET rules)."""
        return self._fetch(url, "HEAD", user_agent)

    def backoff_delay(self, attempt: int, request: Request) -> float:
        """Simulated seconds to wait before retry *attempt* (1-based).

        ``base * 2**(attempt-1)`` capped at ``backoff_cap``, plus a
        deterministic jitter fraction derived from
        ``(jitter_seed, host, path, attempt)`` -- the same request
        retried in another run waits exactly as long.
        """
        delay = min(self.backoff_base * (2 ** (attempt - 1)), self.backoff_cap)
        if self.backoff_jitter:
            digest = hashlib.sha256(
                f"{self.jitter_seed}|{request.host}|{request.path}|{attempt}"
                .encode()
            ).digest()
            fraction = int.from_bytes(digest[:8], "big") / 2**64
            delay += delay * self.backoff_jitter * fraction
        return delay

    def _send(self, request: Request) -> Response:
        attempts = 0
        waited = 0.0
        while True:
            try:
                return self.network.request(request)
            except (ConnectionRefused, ConnectionReset):
                attempts += 1
                if attempts > self.retries:
                    raise
                delay = self.backoff_delay(attempts, request)
                if (
                    self.retry_time_budget is not None
                    and waited + delay > self.retry_time_budget
                ):
                    raise
                waited += delay
                self.retry_seconds += delay
                self.network.now += delay
                self._retry_counter.inc()

    def _fetch(self, url: str, method: str, user_agent: Optional[str]) -> Response:
        seen = 0
        current = url
        while True:
            request = self._build_request(current, method, user_agent)
            response = self._send(request)
            if not (self.follow_redirects and response.is_redirect):
                if not response.url:
                    response.url = request.url
                return response
            seen += 1
            if seen > self.max_redirects:
                raise TooManyRedirects(url, self.max_redirects)
            location = response.headers["Location"]
            if location.startswith("//"):
                # Protocol-relative: a network-path reference (RFC 3986
                # section 4.2) names a new authority, not a local path.
                current = f"{request.scheme}:{location}"
            elif location.startswith("/"):
                current = f"{request.scheme}://{request.host}{location}"
            else:
                current = location

    def get_robots_txt(self, host: str, user_agent: Optional[str] = None) -> Response:
        """Fetch ``https://host/robots.txt``."""
        return self.get(f"https://{host}/robots.txt", user_agent=user_agent)
