"""Content-addressed world store: one build, many experiments.

The paper's artifact is a battery of ~16 independent measurements all
run against the *same* simulated 2022-2024 web.  Building that world --
monthly rankings, operator-model robots.txt schedules, audit attributes,
fifteen crawled snapshots -- dominates wall-clock when every runner
rebuilds it from scratch.  Following Common Crawl's practice of building
one shared corpus that many analyses consume, this module turns the
world into a cached, immutable substrate:

* :func:`config_digest` derives a stable SHA-256 digest of a
  :class:`~repro.web.population.PopulationConfig` (seed and nested
  evolution parameters included) by canonicalizing the dataclass tree.
* :class:`WorldStore` memoizes :func:`build_web_population` and
  snapshot-series collection on that digest.  Canonical worlds are
  **frozen** (every :class:`~repro.web.site.SimSite` rejects mutation)
  so a cache hit can never observe another consumer's writes.
* :meth:`WorldStore.population_view` hands out **copy-on-write views**:
  per-site clones that share the heavy immutable payloads (robots.txt
  text, lookup caches, built handlers) until a field is rebound, at
  which point only the mutated clone detaches.  Runners that assign
  audit attributes or register handlers mutate their view, never the
  substrate.

Determinism: a world is a pure function of its config (every sampler is
seeded), so serving one build to many consumers is observationally
identical to rebuilding per consumer -- enforced bit-for-bit by
``tests/web/test_worldstore.py``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import threading
from typing import Dict, List, Optional, TYPE_CHECKING

from ..obs.metrics import MetricsRegistry, shared_registry
from .population import PopulationConfig, WebPopulation, build_web_population

if TYPE_CHECKING:  # pragma: no cover
    from ..measure.longitudinal import SnapshotSeries

__all__ = [
    "config_digest",
    "freeze_population",
    "clone_population",
    "WorldStore",
    "shared_world_store",
]


def _canonicalize(value: object) -> object:
    """A JSON-stable representation of a config value tree."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        payload: Dict[str, object] = {"__type__": type(value).__qualname__}
        for spec in dataclasses.fields(value):
            payload[spec.name] = _canonicalize(getattr(value, spec.name))
        return payload
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        # repr round-trips doubles exactly; JSON float emission may not.
        return {"__float__": repr(value)}
    if isinstance(value, (list, tuple)):
        return [_canonicalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted(json.dumps(_canonicalize(v)) for v in value)}
    if isinstance(value, dict):
        return {
            "__dict__": sorted(
                (json.dumps(_canonicalize(k)), _canonicalize(v))
                for k, v in value.items()
            )
        }
    return {"__repr__": repr(value)}


def config_digest(config: Optional[PopulationConfig] = None) -> str:
    """A stable content digest of *config* (None = the default config).

    Two configs digest equal iff every field -- including the seed and
    the nested :class:`~repro.web.evolution.EvolutionParams` -- is
    equal, so the digest is a sound cache key for built worlds.
    """
    canonical = _canonicalize(config or PopulationConfig())
    blob = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def freeze_population(population: WebPopulation) -> WebPopulation:
    """Freeze every site in *population* (see :meth:`SimSite.freeze`)."""
    for site in population.by_domain.values():
        site.freeze()
    return population


def clone_population(population: WebPopulation) -> WebPopulation:
    """A copy-on-write view of *population*.

    Every site is replaced by a :meth:`~repro.web.site.SimSite.clone`
    (mutable, shares immutable payloads and handler caches until it
    diverges); identity relations between ``stable``, ``stable_top5k``,
    ``audit_sites``, and ``by_domain`` are preserved through the clone
    map.  Container fields are fresh objects so list/dict-level edits
    do not leak either.
    """
    clones = {domain: site.clone() for domain, site in population.by_domain.items()}
    return WebPopulation(
        config=population.config,
        rankings={month: list(domains) for month, domains in population.rankings.items()},
        stable=[clones[s.domain] for s in population.stable],
        stable_top5k=[clones[s.domain] for s in population.stable_top5k],
        audit_sites=[clones[s.domain] for s in population.audit_sites],
        by_domain=clones,
        deal_domains={k: list(v) for k, v in population.deal_domains.items()},
        explicit_allow_domains=list(population.explicit_allow_domains),
    )


class WorldStore:
    """Memoized, frozen worlds keyed by config digest.

    >>> store = WorldStore()
    >>> a = store.population()
    >>> b = store.population()
    >>> a is b
    True
    """

    #: Deterministic per-process store ids for metric labels: the
    #: module-level shared store is always ``s0``.
    _ids = itertools.count()

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._lock = threading.RLock()
        self._populations: Dict[str, WebPopulation] = {}
        self._series: Dict[str, "SnapshotSeries"] = {}
        self._registry = registry if registry is not None else shared_registry()
        store_id = f"s{next(WorldStore._ids)}"
        # Hits AND misses are counted symmetrically (a miss is a build).
        self._population_hits = self._registry.counter(
            "worldstore.population", store=store_id, event="hit"
        )
        self._population_misses = self._registry.counter(
            "worldstore.population", store=store_id, event="miss"
        )
        self._series_hits = self._registry.counter(
            "worldstore.series", store=store_id, event="hit"
        )
        self._series_misses = self._registry.counter(
            "worldstore.series", store=store_id, event="miss"
        )
        self._archive_hits = self._registry.counter(
            "worldstore.archive", store=store_id, event="hit"
        )
        self._archive_misses = self._registry.counter(
            "worldstore.archive", store=store_id, event="miss"
        )

    # -- worlds ---------------------------------------------------------------

    def population(self, config: Optional[PopulationConfig] = None) -> WebPopulation:
        """The frozen canonical population for *config* (built once).

        The returned object is immutable; consumers that need to mutate
        site state must take a :meth:`population_view`.
        """
        key = config_digest(config)
        with self._lock:
            population = self._populations.get(key)
            if population is None:
                self._population_misses.inc()
                population = freeze_population(
                    build_web_population(config or PopulationConfig())
                )
                self._populations[key] = population
            else:
                self._population_hits.inc()
            return population

    def population_view(
        self, config: Optional[PopulationConfig] = None
    ) -> WebPopulation:
        """A fresh copy-on-write view of the canonical population."""
        return clone_population(self.population(config))

    def series(
        self,
        config: Optional[PopulationConfig] = None,
        workers: Optional[int] = None,
    ) -> "SnapshotSeries":
        """The crawled snapshot series over the canonical population.

        *workers* parallelizes the first build (any worker count yields
        a bit-identical series, so it is not part of the cache key).
        The series is shared read-only: its snapshots are immutable
        records and its internal memos are value-idempotent.
        """
        from ..measure.longitudinal import collect_snapshots

        key = config_digest(config)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                self._series_misses.inc()
                series = collect_snapshots(self.population(config), workers=workers)
                self._series[key] = series
            else:
                self._series_hits.inc()
            return series

    def stratum_population(
        self,
        stratum: str,
        base: Optional[PopulationConfig] = None,
    ) -> WebPopulation:
        """The canonical population for a named top-k *stratum*.

        Derives the stratum's scaled config with
        :func:`~repro.web.population.stratum_config` and serves it from
        the same digest-keyed cache as :meth:`population` -- a stratum
        and the equivalent explicit config share one build.
        """
        from .population import stratum_config

        return self.population(stratum_config(stratum, base))

    def archive(
        self,
        config: Optional[PopulationConfig],
        root,
        shards: int = 0,
        workers: Optional[int] = None,
        mode: str = "auto",
    ):
        """A columnar shard archive of *config*'s snapshot series.

        Opens an existing archive under *root* when its config digest
        matches (a crawl-free warm start -- the scale plane's analogue
        of a series cache hit); otherwise crawls the population straight
        into per-shard archives via
        :func:`~repro.measure.longitudinal.collect_shard_archives` and
        opens the result.  Returns an open
        :class:`~repro.web.archive.ArchiveSet` (caller closes).
        """
        from pathlib import Path

        from ..measure.longitudinal import collect_shard_archives
        from .archive import ArchiveError, ArchiveSet

        root = Path(root)
        digest = config_digest(config)
        try:
            existing = ArchiveSet.open(root)
            if existing.config_digest == digest:
                self._archive_hits.inc()
                return existing
            existing.close()
        except ArchiveError:
            pass
        self._archive_misses.inc()
        population = self.population(config)
        collect_shard_archives(
            population,
            root,
            shards=shards,
            workers=workers,
            mode=mode,
            config_digest=digest,
        )
        return ArchiveSet.open(root)

    # -- maintenance ----------------------------------------------------------

    def cached_digests(self) -> List[str]:
        """Digests of the populations currently held."""
        with self._lock:
            return sorted(self._populations)

    def clear(self) -> None:
        """Drop every cached world (frees the substrate memory)."""
        with self._lock:
            self._populations.clear()
            self._series.clear()


_SHARED_STORE = WorldStore()


def shared_world_store() -> WorldStore:
    """The process-wide store shared by the orchestrator, CLI, and
    benchmark fixtures."""
    return _SHARED_STORE
