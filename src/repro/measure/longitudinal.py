"""Section 3: longitudinal robots.txt analysis over snapshots.

Pipeline: take a web population, run the Common-Crawl-style snapshotter
over the 15 snapshot specs (optionally in parallel -- each spec builds
an independent network, so snapshots are embarrassingly parallel),
filter to the Stable-with-robots set (the paper's "Stable Top 100K":
ranked every month *and* a robots.txt in every snapshot), then compute
the statistics behind Figures 2-4 and Tables 3-4:

* per-snapshot % of sites fully disallowing >= 1 AI user agent, split
  by Top-5K tier (Figure 2),
* per-snapshot per-agent % partially-or-fully disallowing (Figure 3),
* explicit-allow counts and restriction removals per period (Figure 4),
* domains explicitly allowing GPTBot with first-allow snapshot
  (Table 4),
* snapshot coverage statistics (Table 3).

Performance architecture: robots.txt bodies are interned across the
series, every aggregation groups domains by **unique body** and
classifies each (body, agent) problem exactly once through the series'
content-addressed :class:`~repro.measure.cache.PolicyCache`, instead of
re-parsing identical text per domain per snapshot per figure.  All
outputs are bit-identical to the per-domain re-parsing formulation.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..agents.darkvisitors import AI_USER_AGENT_TOKENS
from ..core.classify import RestrictionLevel
from ..crawlers.commoncrawl import (
    SNAPSHOT_SPECS,
    Snapshot,
    SnapshotCrawler,
    SnapshotSpec,
    carry_forward_snapshot,
)
from ..net import chaos
from ..net.transport import Network
from ..obs.metrics import metrics_enabled
from ..obs.series import shared_series
from ..obs.trace import adopt_current_span, current_span, span
from ..web.population import WebPopulation
from .cache import PolicyCache

__all__ = [
    "SnapshotSeries",
    "collect_snapshots",
    "delta_fetch_plan",
    "stable_with_robots",
    "full_disallow_trend",
    "per_agent_trend",
    "allow_and_removal_trend",
    "first_allow_table",
    "snapshot_coverage_table",
]

#: Agents plotted individually in Figure 3.
FIGURE3_AGENTS = [
    "GPTBot",
    "CCBot",
    "ChatGPT-User",
    "anthropic-ai",
    "Google-Extended",
    "Bytespider",
    "ClaudeBot",
    "PerplexityBot",
]


@dataclass
class SnapshotSeries:
    """All snapshots for a population plus derived site sets.

    Attributes:
        snapshots: One :class:`Snapshot` per spec, in time order.
        stable_domains: Domains of the population's stable set.
        analysis_domains: Stable domains with a robots.txt in *every*
            snapshot -- the paper's Stable Top 100K analogue.
        cache: Content-addressed classification cache shared by every
            aggregation over this series.
    """

    snapshots: List[Snapshot]
    stable_domains: List[str]
    analysis_domains: List[str]
    cache: PolicyCache = field(default_factory=PolicyCache, repr=False, compare=False)
    _body_rows: Dict[str, List[Optional[str]]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def robots_for(self, domain: str, snapshot: Snapshot) -> Optional[str]:
        """robots.txt content for *domain* in *snapshot* (www fallback)."""
        record = snapshot.record_for(domain)
        if record is None or not record.ok:
            return None
        return record.robots_txt

    def analysis_bodies(self, snapshot: Snapshot) -> List[Optional[str]]:
        """Per-domain robots bodies aligned with ``analysis_domains``.

        Computed once per snapshot and memoized; bodies are interned, so
        the row is a list of shared references, not text copies.
        """
        key = snapshot.spec.snapshot_id
        row = self._body_rows.get(key)
        if row is None:
            row = [self.robots_for(d, snapshot) for d in self.analysis_domains]
            self._body_rows[key] = row
        return row

    def analysis_body_counts(
        self, snapshot: Snapshot
    ) -> List[Tuple[Optional[str], int]]:
        """``(unique body, domain count)`` groups over the analysis set.

        Aggregations that only need per-snapshot rates iterate these
        groups instead of per-domain rows: each distinct body is then
        classified once regardless of how many domains serve it.
        """
        counts: Dict[Optional[str], int] = {}
        for body in self.analysis_bodies(snapshot):
            counts[body] = counts.get(body, 0) + 1
        return list(counts.items())


def delta_fetch_plan(
    population: WebPopulation, specs: Sequence[SnapshotSpec]
) -> List[List["SimSite"]]:
    """Per-spec site subsets a delta crawl must actually refetch.

    The first spec always fetches the full stable set; every later spec
    fetches only the sites whose *served* robots state differs from the
    previous spec's month (see
    :meth:`~repro.web.site.SimSite.robots_changed_between`).  Records
    for every other site carry forward unchanged: their handlers are
    memoized per effective robots text and serving is
    response-stateless, so refetching would reproduce the same record
    byte for byte.  Blocking/proxy configuration is month-invariant in
    this world model (it is not keyed by month anywhere), so robots
    state is the only time-varying fetch input.

    The plan depends only on the population's evolution schedules --
    not on any fetched data -- so delta snapshots stay embarrassingly
    parallel.
    """
    sites = list(population.stable)
    plan: List[List[SimSite]] = []
    previous: Optional[SnapshotSpec] = None
    for spec in specs:
        if previous is None:
            plan.append(sites)
        else:
            plan.append(
                [
                    site
                    for site in sites
                    if site.robots_changed_between(
                        previous.month_index, spec.month_index
                    )
                ]
            )
        previous = spec
    return plan


def collect_snapshots(
    population: WebPopulation,
    specs: Sequence[SnapshotSpec] = tuple(SNAPSHOT_SPECS),
    workers: Optional[int] = None,
    delta: Optional[bool] = None,
) -> SnapshotSeries:
    """Run the snapshot crawler over the population's stable set.

    Each snapshot materializes the population at the snapshot's month
    and crawls every stable site's robots.txt with the CCBot client.

    Args:
        workers: Number of snapshots to crawl concurrently.  Each spec
            builds its own independent :class:`Network`, so snapshots
            parallelize without shared mutable state; results are
            assembled in spec order, making the output bit-identical
            for any worker count (``None``/``1`` = sequential).
        delta: Diff-aware collection: refetch only sites whose robots
            state changed since the previous spec and carry every other
            record forward (bit-identical output, O(changed) work).
            ``None`` (the default) enables delta whenever it is sound:
            more than one spec and no armed chaos plan.  An armed
            :class:`~repro.net.chaos.FaultPlan` forces a full crawl even
            when ``delta=True``, because injected faults break the
            purity argument that makes carry-forward safe.
    """
    domains = [site.domain for site in population.stable]
    specs = list(specs)
    # Chaos faults are month- and host-windowed at the *transport*
    # layer, invisible to the evolution model the delta plan reads, so
    # carried-forward records could mask injected errors.  Never delta
    # under an armed plan.
    use_delta = len(specs) > 1 and chaos.active_plan() is None
    if delta is not None:
        use_delta = use_delta and delta
    plan = (
        delta_fetch_plan(population, specs)
        if use_delta
        else [list(population.stable) for _ in specs]
    )

    def collect_one(task: Tuple[SnapshotSpec, List["SimSite"]]) -> Snapshot:
        spec, fetch_sites = task
        # The span carries both clocks: wall time plus the simulated
        # month the snapshot pertains to (the logical clock).
        with span(
            "collect_snapshot",
            logical=spec.month_index,
            snapshot=spec.snapshot_id,
            n_domains=len(fetch_sites),
        ):
            network = Network()
            population.materialize(network, month=spec.month_index, sites=fetch_sites)
            crawler = SnapshotCrawler(network)
            snapshot = crawler.snapshot(spec, [site.domain for site in fetch_sites])
            network.publish_request_histogram()
        if metrics_enabled():
            # In a full crawl every site counts as refetched, so the
            # series doubles as a live view of how much work delta
            # collection avoids month over month.
            shared_series().add(
                "delta.sites_refetched", spec.month_index, len(fetch_sites)
            )
        return snapshot

    tasks = list(zip(specs, plan))
    with span(
        "collect_snapshots",
        n_specs=len(specs),
        workers=workers or 1,
        delta=use_delta,
    ):
        if workers is None or workers <= 1 or len(specs) <= 1:
            snapshots = [collect_one(task) for task in tasks]
        else:
            with ThreadPoolExecutor(
                max_workers=min(workers, len(specs)),
                # Worker threads start with an empty span context;
                # adopt the collection span so per-snapshot spans stay
                # its children rather than becoming roots.
                initializer=adopt_current_span,
                initargs=(current_span(),),
            ) as pool:
                # executor.map preserves spec order regardless of
                # completion order, so parallelism cannot reorder the
                # series.
                snapshots = list(pool.map(collect_one, tasks))

    if use_delta:
        # Assemble full snapshots in spec order: each month's records
        # dict lays down every stable domain in canonical order, taking
        # the freshly fetched record when the site was in the plan and
        # the previous assembled month's record otherwise.  Insertion
        # order therefore matches a full crawl exactly.
        assembled: List[Snapshot] = [snapshots[0]]
        for fetched in snapshots[1:]:
            assembled.append(
                carry_forward_snapshot(fetched, assembled[-1], domains)
            )
        snapshots = assembled

    # Intern robots bodies across the whole series: fifteen snapshots of
    # a mostly-unchanged population collapse to one string per distinct
    # body, and downstream grouping hashes each body once.
    body_pool: Dict[str, str] = {}
    for snapshot in snapshots:
        snapshot.intern_bodies(body_pool)

    analysis = stable_with_robots(snapshots, domains)
    return SnapshotSeries(
        snapshots=snapshots, stable_domains=domains, analysis_domains=analysis
    )


def stable_with_robots(
    snapshots: Sequence[Snapshot], domains: Sequence[str]
) -> List[str]:
    """Domains with a successfully fetched robots.txt in every snapshot."""
    keep: List[str] = []
    for domain in domains:
        ok_everywhere = True
        for snapshot in snapshots:
            record = snapshot.record_for(domain)
            if record is None or not record.ok:
                ok_everywhere = False
                break
        if ok_everywhere:
            keep.append(domain)
    return keep


def full_disallow_trend(
    series: SnapshotSeries,
    top5k_domains: Set[str],
    agents: Sequence[str] = tuple(AI_USER_AGENT_TOKENS),
    require_explicit: bool = True,
) -> List[Tuple[str, float, float]]:
    """Figure 2: % of sites fully disallowing >= 1 AI UA per snapshot.

    Returns rows ``(snapshot_id, pct_top5k, pct_other)`` in time order,
    percentages in [0, 100].
    """
    in_top = [d in top5k_domains for d in series.analysis_domains]
    n_top = sum(in_top)
    n_other = len(series.analysis_domains) - n_top
    cache = series.cache
    rows: List[Tuple[str, float, float]] = []
    with span(
        "measure.full_disallow_trend",
        n_sites=len(series.analysis_domains),
        n_agents=len(agents),
    ):
        for snapshot in series.snapshots:
            # Group domains by unique body within each tier, then
            # classify each distinct body once.
            tier_counts: Tuple[Dict[Optional[str], int], Dict[Optional[str], int]] = (
                {},
                {},
            )
            for body, is_top in zip(series.analysis_bodies(snapshot), in_top):
                counts = tier_counts[0] if is_top else tier_counts[1]
                counts[body] = counts.get(body, 0) + 1

            def tier_hits(counts: Dict[Optional[str], int]) -> int:
                return sum(
                    count
                    for body, count in counts.items()
                    if body is not None
                    and cache.fully_disallows_any(
                        body, agents, require_explicit=require_explicit
                    )
                )

            hits_top = tier_hits(tier_counts[0])
            hits_other = tier_hits(tier_counts[1])
            if metrics_enabled():
                month = snapshot.spec.month_index
                series_registry = shared_series()
                series_registry.add(
                    "measure.sites_full_disallow", month, hits_top, tier="top5k"
                )
                series_registry.add(
                    "measure.sites_full_disallow", month, hits_other, tier="other"
                )
            rows.append(
                (
                    snapshot.spec.snapshot_id,
                    100.0 * hits_top / n_top if n_top else 0.0,
                    100.0 * hits_other / n_other if n_other else 0.0,
                )
            )
    return rows


def per_agent_trend(
    series: SnapshotSeries,
    agents: Sequence[str] = tuple(FIGURE3_AGENTS),
) -> Dict[str, List[Tuple[str, float]]]:
    """Figure 3: per-agent % of sites partially or fully disallowing.

    Returns, per agent, rows ``(snapshot_id, pct)`` over the analysis
    set.
    """
    out: Dict[str, List[Tuple[str, float]]] = {agent: [] for agent in agents}
    population = series.analysis_domains
    cache = series.cache
    for snapshot in series.snapshots:
        groups = series.analysis_body_counts(snapshot)
        for agent in agents:
            hits = 0
            for body, count in groups:
                if body is None:
                    continue
                if cache.classification(body, agent).level.disallows:
                    hits += count
            if metrics_enabled():
                shared_series().add(
                    "measure.sites_disallowing",
                    snapshot.spec.month_index,
                    hits,
                    agent=agent,
                )
            pct = 100.0 * hits / len(population) if population else 0.0
            out[agent].append((snapshot.spec.snapshot_id, pct))
    return out


@dataclass
class AllowRemovalTrend:
    """Figure 4's two series plus per-domain detail.

    Attributes:
        explicit_allow_counts: ``(snapshot_id, count)`` of sites
            explicitly allowing >= 1 AI agent.
        removals_per_period: ``(snapshot_id, count)`` of sites that had
            an explicit full restriction on an agent in the previous
            snapshot and no restriction in this one.
        removal_domains: Domains that removed restrictions, with the
            snapshot where the removal was first observed.
    """

    explicit_allow_counts: List[Tuple[str, int]] = field(default_factory=list)
    removals_per_period: List[Tuple[str, int]] = field(default_factory=list)
    removal_domains: Dict[str, str] = field(default_factory=dict)


def allow_and_removal_trend(
    series: SnapshotSeries,
    agents: Sequence[str] = tuple(AI_USER_AGENT_TOKENS),
    removal_agent: str = "GPTBot",
) -> AllowRemovalTrend:
    """Figure 4: explicit allows over time and removals per period."""
    trend = AllowRemovalTrend()
    cache = series.cache

    previous_restricted: Set[str] = set()
    first = True
    for snapshot in series.snapshots:
        allows = 0
        restricted_now: Set[str] = set()
        removed_now = 0
        # Counting passes run over unique bodies; the restricted *set*
        # needs domain identities, so it walks the aligned body row.
        # Bodies repeat across snapshots (most sites never change), so
        # the any-agent sweep memoizes per distinct body inside the
        # series' cache -- persistently, when a store is attached.
        for body, count in series.analysis_body_counts(snapshot):
            if body is None:
                continue
            if cache.allows_any(body, agents):
                allows += count
        bodies = series.analysis_bodies(snapshot)
        for domain, body in zip(series.analysis_domains, bodies):
            if body is None:
                continue
            if cache.classification(body, removal_agent).level is RestrictionLevel.FULL:
                restricted_now.add(domain)
        if not first:
            for domain in series.analysis_domains:
                if domain in previous_restricted and domain not in restricted_now:
                    removed_now += 1
                    trend.removal_domains.setdefault(
                        domain, snapshot.spec.snapshot_id
                    )
        trend.explicit_allow_counts.append((snapshot.spec.snapshot_id, allows))
        trend.removals_per_period.append(
            (snapshot.spec.snapshot_id, 0 if first else removed_now)
        )
        previous_restricted = restricted_now
        first = False
    return trend


def first_allow_table(
    series: SnapshotSeries, agent: str = "GPTBot"
) -> List[Tuple[str, str]]:
    """Table 4: domains explicitly allowing *agent*, with the first
    snapshot where the allow was observed."""
    rows: List[Tuple[str, str]] = []
    seen: Set[str] = set()
    cache = series.cache
    for snapshot in series.snapshots:
        bodies = series.analysis_bodies(snapshot)
        for domain, body in zip(series.analysis_domains, bodies):
            if domain in seen:
                continue
            if body is not None and cache.explicitly_allows(body, agent):
                rows.append((domain, snapshot.spec.snapshot_id))
                seen.add(domain)
    return rows


def snapshot_coverage_table(series: SnapshotSeries) -> List[Tuple[str, str, int, int]]:
    """Table 3: per snapshot, sites present and sites with robots.txt.

    Returns rows ``(snapshot_id, label, n_sites, n_with_robots)``.
    """
    rows = []
    for snapshot in series.snapshots:
        n_sites = sum(
            1
            for domain in series.stable_domains
            if (record := snapshot.record_for(domain)) is not None
            and (record.ok or record.missing)
        )
        n_robots = sum(
            1
            for domain in series.stable_domains
            if (record := snapshot.record_for(domain)) is not None and record.ok
        )
        rows.append((snapshot.spec.snapshot_id, snapshot.spec.label, n_sites, n_robots))
    return rows
