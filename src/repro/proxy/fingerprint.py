"""Automation fingerprinting.

Beyond user-agent matching, anti-bot services detect automation from
browser fingerprints (Section 2.2; Azad et al. [5], Vastel et al.
[111]).  In this simulation a headless-browser client advertises its
nature through an ``X-Automation`` header -- the stand-in for signals
like ``navigator.webdriver``, missing plugins, and canvas anomalies
that a real fingerprinting stack reads.  The paper's control crawls use
exactly such a client, which is why 15% of top-10k sites block the
measurement tool regardless of user agent (Section 6.1's "Control
case"); the fingerprint detector here is what those sites run.
"""

from __future__ import annotations

from typing import List

from ..agents.useragent import looks_like_browser
from ..net.http import Request

__all__ = [
    "AUTOMATION_HEADER",
    "automation_signals",
    "is_automated",
    "is_library_client",
]

#: Header through which simulated headless browsers leak automation
#: markers (comma-separated), e.g. ``"webdriver,headless"``.
AUTOMATION_HEADER = "X-Automation"

#: UA substrings of HTTP libraries and automation tools: clients that do
#: not even pretend to be a browser.
_LIBRARY_MARKERS = [
    "python-requests", "python-urllib", "curl", "wget", "aiohttp",
    "httpx", "go-http-client", "node-fetch", "axios", "scrapy",
    "libwww-perl", "apache-httpclient", "java/", "okhttp",
    "headlesschrome", "phantomjs", "selenium", "puppeteer", "playwright",
]


def automation_signals(request: Request) -> List[str]:
    """The automation markers present on *request*, possibly empty."""
    raw = request.headers.get(AUTOMATION_HEADER, "")
    return [part.strip() for part in raw.split(",") if part.strip()]


def is_library_client(user_agent: str) -> bool:
    """Whether the UA is a raw HTTP library or automation tool."""
    low = user_agent.lower()
    return any(marker in low for marker in _LIBRARY_MARKERS)


def is_automated(request: Request) -> bool:
    """Fingerprint verdict: is this request from automation?

    True when the client leaks automation signals, uses a library UA,
    or presents no user agent at all.  A browser-like UA with no
    automation signals passes -- fingerprinting is what separates a real
    Chrome from a Selenium-driven one, and that difference is carried by
    the signals, not the UA string.
    """
    if automation_signals(request):
        return True
    ua = request.user_agent
    if not ua:
        return True
    if is_library_client(ua):
        return True
    # Self-identified crawlers are automation by definition, even
    # polite ones with browser-style UAs.
    return not looks_like_browser(ua)
