"""Tests for the survey subsystem: instrument, coding, generation, analysis."""

import pytest

from repro.survey.analysis import analyze
from repro.survey.coding import (
    ACTIONS_CODEBOOK,
    DISTRUST_CODEBOOK,
    ENABLE_CODEBOOK,
    NO_ADOPT_CODEBOOK,
    code_response,
)
from repro.survey.instrument import SURVEY, QuestionType, question
from repro.survey.respondents import filter_valid, generate_respondents


@pytest.fixture(scope="module")
def valid_pool():
    pool = generate_respondents(seed=42)
    return filter_valid(pool)


@pytest.fixture(scope="module")
def analysis(valid_pool):
    return analyze(valid_pool)


class TestInstrument:
    def test_question_lookup(self):
        assert question("Q24").qtype is QuestionType.SINGLE_CHOICE
        with pytest.raises(KeyError):
            question("Q99")

    def test_conditional_display(self):
        q26 = question("Q26")
        assert q26.is_shown({"Q24": "No"})
        assert not q26.is_shown({"Q24": "Yes"})

    def test_q3_requires_income(self):
        q3 = question("Q3")
        assert not q3.is_shown({"Q2": "I haven't made any money from my art"})
        assert q3.is_shown({"Q2": "My art is my main source of income"})

    def test_all_qids_unique(self):
        qids = [q.qid for q in SURVEY]
        assert len(qids) == len(set(qids))


class TestCodebooks:
    def test_four_codebooks_have_paper_theme_counts(self):
        assert len(ACTIONS_CODEBOOK.themes) == 6
        assert len(NO_ADOPT_CODEBOOK.themes) == 5
        assert len(ENABLE_CODEBOOK.themes) == 6
        assert len(DISTRUST_CODEBOOK.themes) == 7

    def test_code_response_matches_examples(self):
        for codebook in (ACTIONS_CODEBOOK, NO_ADOPT_CODEBOOK, ENABLE_CODEBOOK,
                         DISTRUST_CODEBOOK):
            for theme in codebook.themes:
                sample = f"{theme.example} ({theme.keywords[0]})"
                assert theme.name in code_response(sample, codebook), (
                    codebook.name, theme.name
                )

    def test_multi_label(self):
        text = "They have money interests and will find a loophole to get around it"
        codes = code_response(text, DISTRUST_CODEBOOK)
        assert "profit" in codes and "loophole" in codes

    def test_uncoded_returns_empty(self):
        assert code_response("zzz", NO_ADOPT_CODEBOOK) == []


class TestGenerationAndFiltering:
    def test_filter_recovers_exactly_the_valid_pool(self, valid_pool):
        assert len(valid_pool) == 203
        assert all(not r.low_quality for r in valid_pool)

    def test_junk_detected_without_ground_truth(self):
        pool = generate_respondents(seed=1)
        valid = filter_valid(pool)
        dropped = [r for r in pool if r not in valid]
        assert dropped
        assert all(r.low_quality for r in dropped)

    def test_deterministic(self):
        a = generate_respondents(seed=9)
        b = generate_respondents(seed=9)
        assert [r.answers.get("Q5") for r in a] == [r.answers.get("Q5") for r in b]


class TestHeadlineStatistics:
    def test_professional_share(self, analysis):
        assert analysis.n_professional == 136

    def test_make_money_share(self, analysis):
        assert 84 < analysis.pct_make_money < 90  # paper: 87%

    def test_never_heard_rate(self, analysis):
        assert analysis.n_never_heard == 119
        assert 57 < analysis.pct_never_heard < 61  # paper: 59%

    def test_blocking_willingness(self, analysis):
        assert analysis.pct_would_enable_blocking > 93   # paper: >97%
        assert analysis.pct_very_likely_blocking > 85    # paper: 93% (185/203)

    def test_impact_concern(self, analysis):
        assert analysis.pct_impact_moderate_plus > 70    # paper: 79%
        assert analysis.pct_impact_significant_plus > 45 # paper: 54%

    def test_actions(self, analysis):
        assert analysis.n_took_action == 169
        assert 60 < analysis.pct_glaze_among_actors < 82  # paper: 71%

    def test_explainer_comprehension_and_adoption(self, analysis):
        assert 105 <= analysis.n_understood_explainer <= 119  # paper: 113
        assert 60 < analysis.pct_would_adopt_after_explainer < 90  # paper: 75%

    def test_distrust(self, analysis):
        assert 68 < analysis.pct_distrust_among_never_heard < 86  # paper: 77%

    def test_interest_despite_distrust(self, analysis):
        assert 30 < analysis.pct_interested_despite_distrust < 65  # paper: 47%

    def test_site_owner_crosstabs(self, analysis):
        assert analysis.n_aware_site_owners == 38
        assert analysis.n_aware_site_owners_not_using == 27
        assert 4 <= analysis.n_aware_no_control <= 9  # paper: 9


class TestDemographicTables:
    def test_table5_duration(self, analysis):
        counts = analysis.duration_counts
        assert counts["Less than 1 year"] == 17
        assert counts["1-5 years"] == 68
        assert counts["5-10 years"] == 44
        assert counts["10 years or more"] == 47
        assert sum(counts.values()) == 176

    def test_table6_continents(self, analysis):
        counts = analysis.continent_counts
        assert counts["North America"] == 109
        assert counts["Europe"] == 52
        assert counts["Asia"] == 21
        assert counts["South America"] == 18
        assert counts["Africa"] == 2
        assert counts["Oceania"] == 1

    def test_table7_top_art_type_is_illustration(self, analysis):
        counts = analysis.art_type_counts
        assert max(counts, key=counts.get) == "Illustration"
        assert counts["Illustration"] > counts["Digital 2D"]
        assert counts["Digital 2D"] > counts["Concept Art"]

    def test_table8_familiarity_ordering(self, analysis):
        means = analysis.familiarity_means
        assert means["Website"] > means["Search engine"] > means["Generative AI"]
        assert means["Generative AI"] > means["Robots.txt"]
        assert means["Robots.txt"] > means["Nearest diffusion tree"]

    def test_table8_values_near_paper(self, analysis):
        means = analysis.familiarity_means
        assert abs(means["Website"] - 4.60) < 0.25
        assert abs(means["Robots.txt"] - 1.99) < 0.35
        assert abs(means["Nearest diffusion tree"] - 1.56) < 0.35


class TestThemeCounts:
    def test_distrust_themes_populated(self, analysis):
        assert sum(analysis.distrust_theme_counts.values()) > 0
        assert "profit" in analysis.distrust_theme_counts or analysis.distrust_theme_counts

    def test_enable_themes_populated(self, analysis):
        assert analysis.enable_theme_counts.get("protection", 0) > 0


class TestFullInstrument:
    def test_all_appendix_d1_questions_present(self):
        qids = {q.qid for q in SURVEY}
        expected = {f"Q{i}" for i in list(range(1, 14)) + list(range(15, 32))} - {
            "Q14",  # AI-in-process question intentionally summarized out
        }
        # The instrument covers Q1-Q13, Q15-Q32 (Q14 folded into Q13).
        for qid in ("Q10", "Q11", "Q12", "Q19", "Q20", "Q21", "Q28", "Q30", "Q32"):
            assert qid in qids, qid

    def test_q19_conditional_on_scraping_action(self):
        q19 = question("Q19")
        assert q19.is_shown({"Q18": ("Preventing my websites from being scraped",)})
        assert not q19.is_shown({"Q18": ("Using Glaze to protect my art before posting",)})

    def test_q30_requires_awareness_and_site(self):
        q30 = question("Q30")
        assert q30.is_shown({"Q24": "Yes", "Q8": ("Personal Website",)})
        assert not q30.is_shown({"Q24": "No", "Q8": ("Personal Website",)})
        assert not q30.is_shown({"Q24": "Yes", "Q8": ("Social Media",)})
