"""Table 2 / Section 4.4: artist website hosting providers.

Paper shape: Squarespace and ArtStation host ~20% of artist sites each;
only Wix (Paid) exposes full robots.txt editing (and 0% of artists use
it); only Squarespace offers an AI toggle (17% enabled); Carbonmade's
default robots.txt blocks AI crawlers for 100% of its sites; every
other provider sits at 0%.
"""

from conftest import save_artifact

from repro.report.experiments import run_table2_artists


def test_table2_artist_providers(benchmark, artifact_dir):
    result = benchmark.pedantic(
        run_table2_artists, kwargs={"seed": 42, "n_artists": 1182},
        rounds=1, iterations=1,
    )
    save_artifact(artifact_dir, result)
    print(result.text)

    metrics = result.metrics
    assert 10.0 <= metrics["squarespace_pct_disallow"] <= 25.0  # paper: 17%
    assert metrics["carbonmade_pct_disallow"] == 100.0
    assert metrics["wix_paid_pct_disallow"] == 0.0
    assert 55.0 <= metrics["top8_share_pct"] <= 75.0
