"""Delta-aware snapshot collection must be invisible in the output.

The contract: ``collect_snapshots(..., delta=True)`` refetches only
sites whose served robots state changed since the previous spec, yet
every snapshot -- records, insertion order, derived analysis sets --
is bit-identical to a full crawl.  Chaos plans force full crawls
because injected transport faults break the carry-forward purity
argument.
"""

import pytest

from repro.crawlers.commoncrawl import SNAPSHOT_SPECS, carry_forward_snapshot
from repro.measure.longitudinal import collect_snapshots, delta_fetch_plan
from repro.net import chaos
from repro.net.chaos import FaultPlan, FaultRule
from repro.obs.series import shared_series
from repro.web.population import PopulationConfig, build_web_population

CONFIG = PopulationConfig(
    universe_size=260, list_size=170, top5k_cut=30, audit_size=40, seed=11
)

SPECS = list(SNAPSHOT_SPECS)


@pytest.fixture(scope="module")
def population():
    return build_web_population(CONFIG)


def _series_equal(a, b):
    assert [s.spec.snapshot_id for s in a.snapshots] == [
        s.spec.snapshot_id for s in b.snapshots
    ]
    for full, delta in zip(a.snapshots, b.snapshots):
        # Same records, same canonical insertion order.
        assert list(full.records) == list(delta.records)
        assert full.records == delta.records
    assert a.stable_domains == b.stable_domains
    assert a.analysis_domains == b.analysis_domains


class TestDeltaEquivalence:
    def test_delta_matches_full_crawl(self, population):
        full = collect_snapshots(population, SPECS, delta=False)
        delta = collect_snapshots(population, SPECS, delta=True)
        _series_equal(full, delta)

    def test_delta_is_the_default(self, population):
        # Auto mode (delta=None) must produce the same series as an
        # explicit full crawl.
        auto = collect_snapshots(population, SPECS)
        full = collect_snapshots(population, SPECS, delta=False)
        _series_equal(full, auto)

    def test_workers_do_not_change_delta_results(self, population):
        serial = collect_snapshots(population, SPECS, delta=True)
        parallel = collect_snapshots(population, SPECS, workers=4, delta=True)
        _series_equal(serial, parallel)

    def test_single_spec_never_deltas(self, population):
        single = collect_snapshots(population, SPECS[:1])
        assert len(single.snapshots) == 1
        assert set(single.snapshots[0].records) == set(single.stable_domains)


class TestFetchPlan:
    def test_first_spec_fetches_everything(self, population):
        plan = delta_fetch_plan(population, SPECS)
        assert plan[0] == list(population.stable)

    def test_later_specs_fetch_strict_subsets(self, population):
        # The simulated web barely moves month over month; the plan
        # must reflect that or delta collection buys nothing.
        plan = delta_fetch_plan(population, SPECS)
        total_later = sum(len(subset) for subset in plan[1:])
        full_later = len(population.stable) * (len(SPECS) - 1)
        assert total_later < full_later * 0.5

    def test_plan_entries_changed_robots(self, population):
        plan = delta_fetch_plan(population, SPECS)
        for prev, spec, subset in zip(SPECS, SPECS[1:], plan[1:]):
            for site in subset:
                assert site.robots_at(prev.month_index) != site.robots_at(
                    spec.month_index
                )

    def test_refetched_series_recorded(self, population):
        registry = shared_series()
        registry.reset()
        collect_snapshots(population, SPECS, delta=True)
        by_month = registry.series("delta.sites_refetched").points()
        assert by_month[SPECS[0].month_index] == len(population.stable)
        later = [
            by_month.get(spec.month_index, 0) for spec in SPECS[1:]
        ]
        assert all(n < len(population.stable) for n in later)


class TestChaosForcesFullCrawl:
    def test_armed_plan_disables_delta(self, population):
        plan = FaultPlan(
            "delta-test",
            (FaultRule(kind="reset", rate=0.2, months=(2, 3)),),
        )
        registry = shared_series()
        chaos.activate(plan, seed=3)
        try:
            registry.reset()
            collect_snapshots(population, SPECS, delta=True)
            points = registry.series("delta.sites_refetched").points()
        finally:
            chaos.deactivate()
        # Every month refetched the full stable set: delta was off.
        n = len(population.stable)
        assert all(amount == n for amount in points.values())
        assert len(points) == len(SPECS)


class TestCarryForwardAssembly:
    def test_assembled_records_follow_domain_order(self, population):
        full = collect_snapshots(population, SPECS[:2], delta=False)
        first, second = full.snapshots
        domains = full.stable_domains
        # Rebuild month 2 from an artificially sparse "fetched" delta.
        sparse = type(second)(
            spec=second.spec,
            records={d: second.records[d] for d in domains[:5]},
            error_budget=second.error_budget,
        )
        assembled = carry_forward_snapshot(sparse, first, domains)
        assert list(assembled.records) == list(domains)
        for domain in domains[:5]:
            assert assembled.records[domain] is sparse.records[domain]
        for domain in domains[5:]:
            assert assembled.records[domain] is first.records[domain]
