"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value: Any) -> str:
    """Format one cell: floats get two decimals, the rest ``str()``.

    >>> format_cell(3.14159)
    '3.14'
    >>> format_cell("x")
    'x'
    """
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render an ASCII table with padded columns.

    >>> print(render_table(["a", "b"], [[1, 2]]))
    a | b
    --+--
    1 | 2
    """
    text_rows: List[List[str]] = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        padded = [
            cell.ljust(widths[index]) for index, cell in enumerate(cells)
        ]
        return " | ".join(padded).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(fmt_row(row))
    return "\n".join(lines)
